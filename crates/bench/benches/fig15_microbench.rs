//! Criterion companion to Figure 15: PJH vs PCJ per data type and op.

use criterion::{criterion_group, criterion_main, Criterion};
use espresso_bench::micro::{run_pcj_micro, run_pjh_micro, DataType, MicroOp};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    let n = 500;
    for dtype in [DataType::Tuple, DataType::Primitive, DataType::Hashmap] {
        for op in MicroOp::ALL {
            g.bench_function(format!("pjh/{}/{}", dtype.name(), op.name()), |b| {
                b.iter(|| run_pjh_micro(dtype, op, n));
            });
            g.bench_function(format!("pcj/{}/{}", dtype.name(), op.name()), |b| {
                b.iter(|| run_pcj_micro(dtype, op, n));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
