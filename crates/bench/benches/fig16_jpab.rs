//! Criterion companion to Figure 16: JPAB CRUD cycles under both
//! providers.

use criterion::{criterion_group, criterion_main, Criterion};
use espresso_bench::jpab::{provider_pair, run_jpab, JpabTest};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for test in [JpabTest::Basic, JpabTest::Node] {
        g.bench_function(format!("jpa/{}", test.name()), |b| {
            b.iter(|| {
                let (mut jpa, _) = provider_pair();
                run_jpab(&mut jpa, test, 50)
            });
        });
        g.bench_function(format!("pjo/{}", test.name()), |b| {
            b.iter(|| {
                let (_, mut pjo) = provider_pair();
                run_jpab(&mut pjo, test, 50)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
