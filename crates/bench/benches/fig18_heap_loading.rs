//! Criterion companion to Figure 18: loadHeap under both safety levels.

use criterion::{criterion_group, criterion_main, Criterion};
use espresso::heap::SafetyLevel;
use espresso_bench::micro::{build_loading_image, measure_load};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for objects in [2_000usize, 10_000] {
        let image = build_loading_image(objects, 20);
        g.bench_function(format!("load/ug/{objects}"), |b| {
            b.iter(|| measure_load(&image, SafetyLevel::UserGuaranteed));
        });
        g.bench_function(format!("load/zeroing/{objects}"), |b| {
            b.iter(|| measure_load(&image, SafetyLevel::Zeroing));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
