//! Criterion companion to §6.4: recoverable vs flush-free GC pauses.

use criterion::{criterion_group, criterion_main, Criterion};
use espresso_bench::micro::measure_gc_pause;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gcpause");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    g.bench_function("recoverable", |b| {
        b.iter(|| measure_gc_pause(400, 1600, true))
    });
    g.bench_function("no_flush", |b| {
        b.iter(|| measure_gc_pause(400, 1600, false))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
