//! Records a machine-readable benchmark baseline covering Figure 15
//! (PJH vs PCJ micro-ops) and Figure 18 (heap loading under both safety
//! levels) at CI-safe workload sizes.
//!
//! The committed `BENCH_baseline.json` at the repository root is produced by:
//!
//! ```text
//! cargo run --release -p espresso-bench --bin bench_baseline -- --out BENCH_baseline.json
//! ```
//!
//! Flags: `--n15 <ops>` (fig15 ops per cell, default 2000), `--n18 <objects>`
//! (fig18 max object count, default 50000), `--nshard <ops>` (shard-scaling
//! ops per cell, default `max(n15, 4000)` — the shard cell needs enough ops
//! to amortize per-worker fixed costs now that commit seals are
//! delta-proportional), `--nread <ops>` (reader-scaling reads per reader,
//! default 100000 — retention ratios need enough reads to swamp setup
//! and scheduler noise), `--nserver <ops>` (server-throughput ops per
//! cell over real TCP, default 8000), `--nwl <ops>` (workload-replay
//! trace length, default 4000), `--nchurn <ops>` (allocator-churn
//! allocations per cell, default 50000 — reuse needs enough GC cycles
//! for the free lists to reach steady state), `--nindex <objects>`
//! (index-scan object count, default 100000 — the indexed-range-vs-
//! full-walk speedup is gated at this size and also measured at a tenth
//! of it), `--out <path>` (default stdout).
//! Absolute times vary by machine; the *shape* (speedup ratios, shard
//! throughput ratios, UG-vs-zeroing growth) is what future PRs compare
//! against.

use espresso::heap::SafetyLevel;
use espresso_bench::idx::run_index_scan;
use espresso_bench::micro::{
    build_loading_image, measure_load, run_alloc_churn, run_pcj_micro, run_pjh_micro,
    run_reader_scaling, run_shard_scaling, DataType, MicroOp,
};
use espresso_bench::srv::run_server_throughput;
use espresso_bench::wl::{bench_trace, run_workload_replay};
use espresso_workload::BackendKind;
use std::fmt::Write as _;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let n15: usize = flag("--n15").and_then(|v| v.parse().ok()).unwrap_or(2_000);
    let n18: usize = flag("--n18")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n  \"mode\": \"ci-safe\",\n");
    let _ = writeln!(json, "  \"fig15\": {{");
    let _ = writeln!(json, "    \"ops_per_cell\": {n15},");
    let _ = writeln!(json, "    \"pjh_speedup_over_pcj\": {{");
    let mut cells = Vec::new();
    for dtype in DataType::ALL {
        for op in MicroOp::ALL {
            // Best-of-3 per system: at CI-safe op counts a single stall
            // (scheduler, allocator) can skew a whole cell, and the
            // regression gate needs stable ratios.
            let best = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::MAX, f64::min);
            let pcj = best(&|| run_pcj_micro(dtype, op, n15).as_secs_f64());
            let pjh = best(&|| run_pjh_micro(dtype, op, n15).as_secs_f64());
            let speedup = pcj / pjh.max(f64::MIN_POSITIVE);
            cells.push(format!(
                "      \"{}/{}\": {:.2}",
                dtype.name(),
                op.name(),
                speedup
            ));
        }
    }
    json.push_str(&cells.join(",\n"));
    json.push_str("\n    }\n  },\n");

    // Shard scaling: a fixed total op count and heap budget served by one
    // worker thread per shard with periodic per-shard commit points; the
    // gated number is single-shard time over N-shard time (throughput
    // ratio, >1.0 when sharding pays — targeted commits over 1/N-sized
    // persistence domains, plus worker parallelism on multi-core hosts).
    // Ratios, not absolute times, so the gate transfers across machines
    // like fig15.
    let n_shard: usize = flag("--nshard")
        .and_then(|v| v.parse().ok())
        .unwrap_or(n15.max(4000));
    let best_shard = |shards: usize| {
        (0..3)
            .map(|_| run_shard_scaling(shards, n_shard).as_secs_f64())
            .fold(f64::MAX, f64::min)
    };
    let t1 = best_shard(1);
    let _ = writeln!(json, "  \"shard_scaling\": {{");
    let _ = writeln!(json, "    \"ops_per_cell\": {n_shard},");
    let _ = writeln!(json, "    \"throughput_vs_one_shard\": {{");
    let mut shard_cells = Vec::new();
    for shards in [2usize, 4] {
        let tn = best_shard(shards);
        shard_cells.push(format!(
            "      \"shards/{}\": {:.2}",
            shards,
            t1 / tn.max(f64::MIN_POSITIVE)
        ));
    }
    json.push_str(&shard_cells.join(",\n"));
    json.push_str("\n    }\n  },\n");

    // Reader scaling: lock-free read-session throughput retention under
    // one continuously committing writer — quiet time over contended
    // time at the same reader count (1.0 = the writer costs the readers
    // nothing; readers share only the device with it, never a lock).
    // A ratio like fig15/shard_scaling, so it transfers across machines.
    let n_read: usize = flag("--nread")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let best_read = |readers: usize, with_writer: bool| {
        (0..3)
            .map(|_| run_reader_scaling(readers, n_read, with_writer).as_secs_f64())
            .fold(f64::MAX, f64::min)
    };
    let _ = writeln!(json, "  \"reader_scaling\": {{");
    let _ = writeln!(json, "    \"ops_per_reader\": {n_read},");
    let _ = writeln!(json, "    \"reader_retention_vs_quiet\": {{");
    let mut reader_cells = Vec::new();
    for readers in [1usize, 4] {
        let quiet = best_read(readers, false);
        let contended = best_read(readers, true);
        reader_cells.push(format!(
            "      \"readers/{}\": {:.2}",
            readers,
            quiet / contended.max(f64::MIN_POSITIVE)
        ));
    }
    json.push_str(&reader_cells.join(",\n"));
    json.push_str("\n    }\n  },\n");

    // Server throughput: the networked front end at 1 vs 8 connections
    // against a fresh 4-shard server (50/50 mix, zipfian keys). The
    // gated cell is the ops/s ratio — cross-connection group commit
    // amortizes epoch seals across concurrent writers, so it must beat
    // a lone connection paying a full seal per write. Latencies are
    // recorded for context only (absolute µs are machine-dependent).
    let n_srv: usize = flag("--nserver")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);
    let best_srv = |conns: usize| {
        (0..3)
            .map(|_| run_server_throughput(conns, n_srv))
            .max_by(|a, b| a.ops_per_sec().total_cmp(&b.ops_per_sec()))
            .expect("three runs")
    };
    let srv1 = best_srv(1);
    let srv8 = best_srv(8);
    let _ = writeln!(json, "  \"server_throughput\": {{");
    let _ = writeln!(json, "    \"ops_per_cell\": {n_srv},");
    let _ = writeln!(json, "    \"throughput_vs_one_conn\": {{");
    let _ = writeln!(
        json,
        "      \"conns/8\": {:.2}",
        srv8.ops_per_sec() / srv1.ops_per_sec().max(f64::MIN_POSITIVE)
    );
    json.push_str("    },\n");
    let _ = writeln!(json, "    \"server_latency_us\": {{");
    let _ = writeln!(json, "      \"p50/1\": {},", srv1.p50_us);
    let _ = writeln!(json, "      \"p99/1\": {},", srv1.p99_us);
    let _ = writeln!(json, "      \"p50/8\": {},", srv8.p50_us);
    let _ = writeln!(json, "      \"p99/8\": {}", srv8.p99_us);
    json.push_str("    }\n  },\n");

    // Workload replay: one recorded mixed trace through the workload
    // harness's backend adapters. The gated cells are raw-replay time
    // over each backend's time on the same trace — the typed/sharded/
    // minidb overheads relative to the raw word API under a realistic
    // op stream. Ratios, so the gate transfers across machines; the
    // server backend is excluded (TCP latency would swamp the cell).
    let n_wl: u64 = flag("--nwl").and_then(|v| v.parse().ok()).unwrap_or(4_000);
    let trace = bench_trace(n_wl);
    let best_wl = |kind: BackendKind| {
        (0..3)
            .map(|_| run_workload_replay(kind, &trace).as_secs_f64())
            .fold(f64::MAX, f64::min)
    };
    let raw_t = best_wl(BackendKind::Raw);
    let _ = writeln!(json, "  \"workload_replay\": {{");
    let _ = writeln!(json, "    \"ops_per_cell\": {n_wl},");
    let _ = writeln!(json, "    \"replay_vs_raw\": {{");
    let mut wl_cells = Vec::new();
    for kind in [
        BackendKind::Typed,
        BackendKind::Sharded,
        BackendKind::Minidb,
    ] {
        let t = best_wl(kind);
        wl_cells.push(format!(
            "      \"{}/raw\": {:.2}",
            kind.name(),
            raw_t / t.max(f64::MIN_POSITIVE)
        ));
    }
    json.push_str(&wl_cells.join(",\n"));
    json.push_str("\n    }\n  },\n");

    // Allocator churn: a del-heavy hot/cold allocation mix on one raw
    // heap at a fixed budget, free-list reuse on vs off. Both gated
    // cells are higher-is-better ratios: `reuse_vs_bump` (bump-only
    // time over reuse time — the wall-clock cost of the 3-flush reuse
    // commit protocol, well below 1.0 by design) and
    // `hw_bump_over_reuse` (bump-only heap high-water regions over
    // reuse high-water — the bounded-footprint win that is the point of
    // v3 allocation, far above 1.0). Raw times, high-water marks, and
    // reuse counts ride in the non-gated `churn_info` map.
    let n_churn: usize = flag("--nchurn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let best_churn = |reuse: bool| {
        (0..3)
            .map(|_| run_alloc_churn(n_churn, reuse))
            .min_by_key(|r| r.elapsed)
            .expect("three runs")
    };
    let churn_reuse = best_churn(true);
    let churn_bump = best_churn(false);
    let _ = writeln!(json, "  \"alloc_churn\": {{");
    let _ = writeln!(json, "    \"ops_per_cell\": {n_churn},");
    let _ = writeln!(json, "    \"churn_ratios\": {{");
    let _ = writeln!(
        json,
        "      \"reuse_vs_bump\": {:.2},",
        churn_bump.elapsed.as_secs_f64() / churn_reuse.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(
        json,
        "      \"hw_bump_over_reuse\": {:.2}",
        churn_bump.high_water_regions as f64 / (churn_reuse.high_water_regions.max(1)) as f64
    );
    json.push_str("    },\n");
    let _ = writeln!(json, "    \"churn_info\": {{");
    let _ = writeln!(
        json,
        "      \"reuse_ms\": {:.3},",
        churn_reuse.elapsed.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "      \"bump_ms\": {:.3},",
        churn_bump.elapsed.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "      \"reuse_hw_regions\": {},",
        churn_reuse.high_water_regions
    );
    let _ = writeln!(
        json,
        "      \"bump_hw_regions\": {},",
        churn_bump.high_water_regions
    );
    let _ = writeln!(json, "      \"reused_slots\": {}", churn_reuse.reused);
    json.push_str("    }\n  },\n");

    // Index scan: the secondary-index range query against the full heap
    // walk it replaces, at a tenth of the gated size and at the gated
    // size. `scan_speedup/<N>` is full-walk time over indexed-range time
    // for a fixed 100-key window — the gated cells (the big one also has
    // an absolute floor in bench_diff: an index that stops beating the
    // walk by a wide margin has lost its reason to exist).
    // `insert_plain_vs_indexed` is plain-chain build time over indexed
    // build time (below 1.0 — the cost of same-transaction tree
    // maintenance), gated only against baseline drift.
    let n_index: usize = flag("--nindex")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let _ = writeln!(json, "  \"index_scan\": {{");
    let _ = writeln!(json, "    \"objects\": {n_index},");
    let mut idx_cells = Vec::new();
    let mut idx_info = Vec::new();
    for objects in [n_index / 10, n_index] {
        let r = run_index_scan(objects);
        idx_cells.push(format!(
            "      \"scan_speedup/{objects}\": {:.2}",
            r.full_scan.as_secs_f64() / r.indexed_scan.as_secs_f64().max(f64::MIN_POSITIVE)
        ));
        if objects == n_index {
            idx_cells.push(format!(
                "      \"insert_plain_vs_indexed/{objects}\": {:.2}",
                r.plain_build.as_secs_f64() / r.indexed_build.as_secs_f64().max(f64::MIN_POSITIVE)
            ));
        }
        idx_info.push(format!(
            "      \"indexed_build_ms/{objects}\": {:.3},\n      \
             \"plain_build_ms/{objects}\": {:.3},\n      \
             \"indexed_scan_us/{objects}\": {:.1},\n      \
             \"full_scan_us/{objects}\": {:.1}",
            r.indexed_build.as_secs_f64() * 1e3,
            r.plain_build.as_secs_f64() * 1e3,
            r.indexed_scan.as_secs_f64() * 1e6,
            r.full_scan.as_secs_f64() * 1e6,
        ));
    }
    let _ = writeln!(json, "    \"index_ratios\": {{");
    json.push_str(&idx_cells.join(",\n"));
    json.push_str("\n    },\n");
    let _ = writeln!(json, "    \"index_info\": {{");
    json.push_str(&idx_info.join(",\n"));
    json.push_str("\n    }\n  },\n");

    let _ = writeln!(json, "  \"fig18\": {{");
    let _ = writeln!(json, "    \"klasses\": 20,");
    let _ = writeln!(json, "    \"load_ms\": {{");
    let mut points = Vec::new();
    for objects in [n18 / 2, n18] {
        let image = build_loading_image(objects, 20);
        let ug = measure_load(&image, SafetyLevel::UserGuaranteed).as_secs_f64() * 1e3;
        let zero = measure_load(&image, SafetyLevel::Zeroing).as_secs_f64() * 1e3;
        points.push(format!(
            "      \"ug/{objects}\": {ug:.3},\n      \"zeroing/{objects}\": {zero:.3}"
        ));
    }
    json.push_str(&points.join(",\n"));
    json.push_str("\n    }\n  }\n}\n");

    match flag("--out") {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("baseline written to {path}");
        }
        None => print!("{json}"),
    }
}
