//! CI bench-regression gate: compares a fresh `bench_baseline` run
//! against the committed `BENCH_baseline.json` and fails (exit code 1)
//! when any fig15 PJH-over-PCJ speedup ratio regresses by more than the
//! tolerance.
//!
//! ```text
//! cargo run --release -p espresso-bench --bin bench_diff -- \
//!     --baseline BENCH_baseline.json --current /tmp/bench_ci.json \
//!     [--tolerance 0.20]
//! ```
//!
//! The tolerance is a fraction of the baseline ratio (default `0.20`,
//! i.e. a cell may lose up to 20% before the gate trips); it can also be
//! set via the `BENCH_DIFF_TOLERANCE` environment variable, with the
//! flag taking precedence. The `shard_scaling` throughput ratios
//! (single-shard time over N-shard time at a fixed total op count and
//! heap budget) gate with the same rule, so shard-scaling regressions
//! fail CI; `--shard4-floor <ratio>` (default `1.0`) additionally
//! enforces an **absolute** floor on the current 4-shard cell — sharding
//! must never fall below break-even with one shard, whatever the
//! baseline says. The `reader_scaling` retention ratios (quiet time over
//! contended time for N epoch-pinned read sessions under one committing
//! writer) gate the same way, and `--readers-floor <ratio>` (default
//! `0.0`, i.e. off unless passed) enforces an absolute floor on the
//! `readers/4` cell — the lock-free read guarantee itself. The
//! `server_throughput` ratio (8-connection over 1-connection ops/s
//! against a 4-shard networked server) gates the same way, and
//! `--server8-floor <ratio>` (default `1.2`) enforces an absolute floor
//! on the `conns/8` cell — cross-connection group commit must keep
//! concurrent clients meaningfully ahead of a lone connection. The
//! `workload_replay` ratios (raw-word replay time over each richer
//! backend's time on one recorded trace) gate the same way — a
//! typed-session, sharded, or minidb slowdown on a realistic op stream
//! trips it. The `alloc_churn` ratios (bump-only time over reuse time,
//! and bump-only heap high-water over reuse high-water, on a del-heavy
//! hot/cold mix) gate the same way, and `--churn-floor <ratio>`
//! (default `0.0`, i.e. off unless passed) enforces an absolute floor
//! on the `reuse_vs_bump` cell — the free-list commit protocol may cost
//! wall clock for its footprint win, but never more than this bound.
//! The `index_scan` ratios (full-heap-walk time over indexed-range time
//! for a fixed window, plus the plain-over-indexed build ratio) are
//! printed against the baseline but gate only through `--index-floor
//! <ratio>` (default `5.0`), an absolute floor on the largest
//! `scan_speedup/<N>` cell: an indexed range completes in microseconds,
//! so its run-to-run jitter swamps a relative tolerance, while the
//! floor — the index must beat the walk it replaces by a wide margin at
//! the gated size — holds on any machine.
//! fig18 load times, server latencies, and the churn_info raw numbers
//! are printed for context but never gate (absolute milliseconds/µs are
//! too machine-dependent).

use espresso_bench::diff::{diff_ratio_cells, diff_speedups, parse_map_section, CellDiff};
use espresso_bench::report::print_table;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let baseline_path = flag("--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let current_path = flag("--current").unwrap_or_else(|| {
        eprintln!("bench_diff: --current <path> is required (a fresh bench_baseline output)");
        std::process::exit(2);
    });
    let tolerance: f64 = flag("--tolerance")
        .or_else(|| std::env::var("BENCH_DIFF_TOLERANCE").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);

    let diffs = diff_speedups(&baseline, &current, tolerance);
    if diffs.is_empty() {
        eprintln!("bench_diff: no fig15 speedup cells found in {baseline_path}");
        std::process::exit(2);
    }

    let floor = 1.0 - tolerance;
    let ratio_rows = |diffs: &[CellDiff]| -> Vec<Vec<String>> {
        diffs
            .iter()
            .map(|d| {
                vec![
                    d.name.clone(),
                    format!("{:.2}", d.baseline),
                    d.current.map_or("missing".into(), |c| format!("{c:.2}")),
                    format!("{:.2}", d.baseline * floor),
                    if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
                ]
            })
            .collect()
    };
    print_table(
        &format!("fig15 speedup gate (tolerance {:.0}%)", tolerance * 100.0),
        &["cell", "baseline", "current", "floor", "status"],
        &ratio_rows(&diffs),
    );

    // Shard-scaling gate: throughput ratios vs one shard, same
    // lower-bound rule as fig15. Absent in pre-shard baselines — then the
    // section is skipped rather than failed.
    let shard_diffs = diff_ratio_cells(&baseline, &current, "throughput_vs_one_shard", tolerance);
    if !shard_diffs.is_empty() {
        print_table(
            &format!(
                "shard_scaling throughput gate (tolerance {:.0}%)",
                tolerance * 100.0
            ),
            &["cell", "baseline", "current", "floor", "status"],
            &ratio_rows(&shard_diffs),
        );
    } else {
        eprintln!("bench_diff: no shard_scaling cells in {baseline_path}; skipping that gate");
    }

    // Reader-scaling gate: read-session throughput retention under a
    // concurrent writer, same lower-bound rule. Absent in baselines from
    // before sessions were lock-free — skipped, not failed.
    let reader_diffs =
        diff_ratio_cells(&baseline, &current, "reader_retention_vs_quiet", tolerance);
    if !reader_diffs.is_empty() {
        print_table(
            &format!(
                "reader_scaling retention gate (tolerance {:.0}%)",
                tolerance * 100.0
            ),
            &["cell", "baseline", "current", "floor", "status"],
            &ratio_rows(&reader_diffs),
        );
    } else {
        eprintln!("bench_diff: no reader_scaling cells in {baseline_path}; skipping that gate");
    }

    // Server-throughput gate: N-connection over 1-connection ops/s on
    // the networked front end, same lower-bound rule. Absent in
    // baselines from before the server existed — skipped, not failed.
    let server_diffs = diff_ratio_cells(&baseline, &current, "throughput_vs_one_conn", tolerance);
    if !server_diffs.is_empty() {
        print_table(
            &format!(
                "server_throughput gate (tolerance {:.0}%)",
                tolerance * 100.0
            ),
            &["cell", "baseline", "current", "floor", "status"],
            &ratio_rows(&server_diffs),
        );
    } else {
        eprintln!("bench_diff: no server_throughput cells in {baseline_path}; skipping that gate");
    }

    // Workload-replay gate: raw-replay time over each backend's time on
    // one recorded trace, same lower-bound rule. Absent in baselines
    // from before the workload harness existed — skipped, not failed.
    let wl_diffs = diff_ratio_cells(&baseline, &current, "replay_vs_raw", tolerance);
    if !wl_diffs.is_empty() {
        print_table(
            &format!("workload_replay gate (tolerance {:.0}%)", tolerance * 100.0),
            &["cell", "baseline", "current", "floor", "status"],
            &ratio_rows(&wl_diffs),
        );
    } else {
        eprintln!("bench_diff: no workload_replay cells in {baseline_path}; skipping that gate");
    }

    // Allocator-churn gate: reuse-vs-bump wall-clock ratio and the
    // bump-over-reuse heap high-water ratio, same lower-bound rule.
    // Absent in baselines from before v3 allocation — skipped, not
    // failed.
    let churn_diffs = diff_ratio_cells(&baseline, &current, "churn_ratios", tolerance);
    if !churn_diffs.is_empty() {
        print_table(
            &format!("alloc_churn gate (tolerance {:.0}%)", tolerance * 100.0),
            &["cell", "baseline", "current", "floor", "status"],
            &ratio_rows(&churn_diffs),
        );
    } else {
        eprintln!("bench_diff: no alloc_churn cells in {baseline_path}; skipping that gate");
    }

    // Index-scan drift: indexed-range-vs-full-walk speedups and the
    // insert-overhead ratio, printed against the baseline for context
    // but never gated relatively — the indexed range completes in
    // microseconds, so its jitter swamps the tolerance. The absolute
    // `--index-floor` below is the gate. Absent in baselines from
    // before the index subsystem — skipped.
    let index_diffs = diff_ratio_cells(&baseline, &current, "index_ratios", tolerance);
    if !index_diffs.is_empty() {
        let rows: Vec<Vec<String>> = index_diffs
            .iter()
            .map(|d| {
                vec![
                    d.name.clone(),
                    format!("{:.2}", d.baseline),
                    d.current.map_or("-".to_string(), |c| format!("{c:.2}")),
                ]
            })
            .collect();
        print_table(
            "index_scan drift (informational; gated by --index-floor)",
            &["cell", "baseline", "current"],
            &rows,
        );
    } else {
        eprintln!("bench_diff: no index_scan cells in {baseline_path}; nothing to print there");
    }

    // Absolute readers/4 floor, independent of the committed baseline:
    // four pinned readers under one committing writer must retain at
    // least this fraction of their quiet throughput — the lock-free
    // guarantee itself, not a relative drift bound (a writer-held RwLock
    // collapses this toward zero).
    let readers_floor: f64 = flag("--readers-floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let mut readers_failed = false;
    if let Some(&(_, current4)) = parse_map_section(&current, "reader_retention_vs_quiet")
        .iter()
        .find(|(n, _)| n == "readers/4")
    {
        if current4 < readers_floor {
            eprintln!(
                "bench_diff: readers/4 retention {current4:.2}x is below the absolute floor {readers_floor:.2}x"
            );
            readers_failed = true;
        } else if readers_floor > 0.0 {
            println!("readers/4 absolute floor: {current4:.2}x >= {readers_floor:.2}x ok");
        }
    }

    // Absolute 4-shard floor, independent of the committed baseline.
    let shard4_floor: f64 = flag("--shard4-floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let mut shard4_failed = false;
    if let Some(&(_, current4)) = parse_map_section(&current, "throughput_vs_one_shard")
        .iter()
        .find(|(n, _)| n == "shards/4")
    {
        if current4 < shard4_floor {
            eprintln!(
                "bench_diff: shards/4 throughput {current4:.2}x is below the absolute floor {shard4_floor:.2}x"
            );
            shard4_failed = true;
        } else {
            println!("shards/4 absolute floor: {current4:.2}x >= {shard4_floor:.2}x ok");
        }
    }

    // Absolute conns/8 floor, independent of the committed baseline:
    // eight connections against a 4-shard server must beat one
    // connection by this margin — the whole point of cross-connection
    // group commit (a per-write full seal would pin this near 1.0).
    let server8_floor: f64 = flag("--server8-floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let mut server8_failed = false;
    if let Some(&(_, current8)) = parse_map_section(&current, "throughput_vs_one_conn")
        .iter()
        .find(|(n, _)| n == "conns/8")
    {
        if current8 < server8_floor {
            eprintln!(
                "bench_diff: conns/8 throughput {current8:.2}x is below the absolute floor {server8_floor:.2}x"
            );
            server8_failed = true;
        } else {
            println!("conns/8 absolute floor: {current8:.2}x >= {server8_floor:.2}x ok");
        }
    }

    // Absolute reuse_vs_bump floor, independent of the committed
    // baseline: the free-list path trades wall clock for a bounded
    // footprint, but an unbounded slowdown (say, a reuse protocol that
    // grew extra flushes) must fail even if the baseline drifted with
    // it.
    let churn_floor: f64 = flag("--churn-floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let mut churn_failed = false;
    if let Some(&(_, current_ratio)) = parse_map_section(&current, "churn_ratios")
        .iter()
        .find(|(n, _)| n == "reuse_vs_bump")
    {
        if current_ratio < churn_floor {
            eprintln!(
                "bench_diff: reuse_vs_bump throughput {current_ratio:.2}x is below the absolute floor {churn_floor:.2}x"
            );
            churn_failed = true;
        } else if churn_floor > 0.0 {
            println!("reuse_vs_bump absolute floor: {current_ratio:.2}x >= {churn_floor:.2}x ok");
        }
    }

    // Absolute index-scan floor, independent of the committed baseline:
    // at the gated (largest-N) size, the indexed range must beat the
    // full heap walk by this factor — O(log n + hits) vs O(heap) is the
    // subsystem's contract, not a relative drift bound.
    let index_floor: f64 = flag("--index-floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let mut index_failed = false;
    if let Some((name, speedup)) = parse_map_section(&current, "index_ratios")
        .into_iter()
        .filter_map(|(n, v)| {
            let objects: u64 = n.strip_prefix("scan_speedup/")?.parse().ok()?;
            Some((n, v, objects))
        })
        .max_by_key(|&(_, _, objects)| objects)
        .map(|(n, v, _)| (n, v))
    {
        if speedup < index_floor {
            eprintln!(
                "bench_diff: {name} {speedup:.2}x is below the absolute floor {index_floor:.2}x"
            );
            index_failed = true;
        } else if index_floor > 0.0 {
            println!("{name} absolute floor: {speedup:.2}x >= {index_floor:.2}x ok");
        }
    }

    let fig18_base = parse_map_section(&baseline, "load_ms");
    let fig18_cur = parse_map_section(&current, "load_ms");
    if !fig18_cur.is_empty() {
        let rows: Vec<Vec<String>> = fig18_cur
            .iter()
            .map(|(name, c)| {
                let b = fig18_base
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or("-".to_string(), |&(_, v)| format!("{v:.3}"));
                vec![name.clone(), b, format!("{c:.3}")]
            })
            .collect();
        print_table(
            "fig18 load_ms (informational, not gated)",
            &["point", "baseline", "current"],
            &rows,
        );
    }

    let churn_base = parse_map_section(&baseline, "churn_info");
    let churn_cur = parse_map_section(&current, "churn_info");
    if !churn_cur.is_empty() {
        let rows: Vec<Vec<String>> = churn_cur
            .iter()
            .map(|(name, c)| {
                let b = churn_base
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or("-".to_string(), |&(_, v)| format!("{v:.3}"));
                vec![name.clone(), b, format!("{c:.3}")]
            })
            .collect();
        print_table(
            "churn_info (informational, not gated)",
            &["cell", "baseline", "current"],
            &rows,
        );
    }

    let lat_base = parse_map_section(&baseline, "server_latency_us");
    let lat_cur = parse_map_section(&current, "server_latency_us");
    if !lat_cur.is_empty() {
        let rows: Vec<Vec<String>> = lat_cur
            .iter()
            .map(|(name, c)| {
                let b = lat_base
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or("-".to_string(), |&(_, v)| format!("{v:.0}"));
                vec![name.clone(), b, format!("{c:.0}")]
            })
            .collect();
        print_table(
            "server_latency_us (informational, not gated)",
            &["cell", "baseline", "current"],
            &rows,
        );
    }

    let regressions = diffs
        .iter()
        .chain(shard_diffs.iter())
        .chain(reader_diffs.iter())
        .chain(server_diffs.iter())
        .chain(wl_diffs.iter())
        .chain(churn_diffs.iter())
        .filter(|d| d.regressed)
        .count();
    if regressions > 0
        || shard4_failed
        || readers_failed
        || server8_failed
        || churn_failed
        || index_failed
    {
        eprintln!("bench_diff: {regressions} gated cell(s) regressed beyond {tolerance:.2}");
        std::process::exit(1);
    }
    println!(
        "\nbench_diff: all {} gated cells within tolerance",
        diffs.len()
            + shard_diffs.len()
            + reader_diffs.len()
            + server_diffs.len()
            + wl_diffs.len()
            + churn_diffs.len()
    );
}
