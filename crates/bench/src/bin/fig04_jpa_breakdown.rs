//! Figure 4: breakdown of the DataNucleus (JPA) commit phase on NVM.
//!
//! Paper shape: user-oriented database work ~24%, object-to-SQL
//! transformation ~42%, other ~34%.

use espresso::jpa::EntityManager;
use espresso::minidb::{Database, Value};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso_bench::jpab::{jpab_meta, make_entity, mutate_entity, JpabTest};
use espresso_bench::report::{pct, print_table};
use std::time::Instant;

fn main() {
    let n = espresso_bench::scale_arg(2000);
    let db = Database::create(NvmDevice::new(NvmConfig::with_size(64 << 20))).expect("db");
    let mut em = EntityManager::new(db.connect());
    let metas = jpab_meta(JpabTest::Basic);
    let meta = metas.last().unwrap().clone();
    em.create_schema(&[&meta]).expect("schema");

    // Populate, then measure commit-heavy update transactions like the
    // paper's retrieve-then-commit JPAB run.
    em.begin();
    for id in 0..n {
        em.persist(make_entity(JpabTest::Basic, &meta, id as i64, n as i64));
    }
    em.commit().expect("commit");

    em.reset_stats();
    db.reset_stats();
    let t0 = Instant::now();
    for chunk in (0..n).step_by(100) {
        em.begin();
        for id in chunk..(chunk + 100).min(n) {
            let mut obj = em
                .find(&meta, &Value::Int(id as i64))
                .expect("find")
                .expect("hit");
            mutate_entity(JpabTest::Basic, &mut obj);
            em.merge(obj);
        }
        em.commit().expect("commit");
    }
    let total = t0.elapsed().as_nanos() as f64;

    let jpa = em.stats();
    let dbs = db.stats();
    let database = (dbs.exec_ns + dbs.wal_ns) as f64;
    let transformation = (jpa.transformation_ns + dbs.parse_ns) as f64;
    let other = (total - database - transformation).max(0.0);

    print_table(
        &format!("Figure 4: JPA commit-phase breakdown ({n} entities)"),
        &["Phase", "Share"],
        &[
            vec!["Database".into(), pct(database / total)],
            vec!["Transformation".into(), pct(transformation / total)],
            vec!["Other".into(), pct(other / total)],
        ],
    );
    println!("\npaper shape: Database ~24%, Transformation ~42% (dominant), Other remainder");
}
