//! Figure 6: breakdown of PCJ create operations.
//!
//! Paper shape: real data manipulation ~1.8%; metadata (type-information
//! memorization) ~36.8%; GC (refcounting) ~14.8%; transactions and
//! allocation take most of the rest.

use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::pcj::{PcjLong, PcjStore, Phase};
use espresso_bench::report::{pct, print_table};

fn main() {
    // Paper creates 200,000 PersistentLong objects.
    let n = espresso_bench::scale_arg(200_000);
    let mut store =
        PcjStore::format(NvmDevice::new(NvmConfig::with_size(512 << 20))).expect("store");
    for i in 0..n {
        PcjLong::create(&mut store, i as u64).expect("create");
    }
    let breakdown = store.timers();
    let rows: Vec<Vec<String>> = breakdown
        .fractions()
        .into_iter()
        .map(|(phase, f)| vec![phase.to_string(), pct(f)])
        .collect();
    print_table(
        &format!("Figure 6: PCJ create breakdown ({n} PersistentLong objects)"),
        &["Phase", "Share"],
        &rows,
    );
    let data = breakdown.get(Phase::Data).as_secs_f64() / breakdown.total().as_secs_f64();
    println!("\npaper shape: Data tiny (~2%), Metadata dominant (~37%), GC ~15%");
    assert!(data < 0.5, "data phase should not dominate");
}
