//! Figure 15: normalized speedup of PJH collections over PCJ for five
//! data types x create/set/get.
//!
//! Paper shape: 1-2 orders of magnitude on create/set (peak 256.3x on
//! tuple set), >= ~6x on get.

use espresso_bench::micro::{run_pcj_micro, run_pjh_micro, DataType, MicroOp};
use espresso_bench::report::print_table;

fn main() {
    let n = espresso_bench::scale_arg(20_000);
    let mut rows = Vec::new();
    let mut min_get = f64::MAX;
    let mut max_speedup: (f64, String) = (0.0, String::new());
    for dtype in DataType::ALL {
        let mut row = vec![dtype.name().to_string()];
        for op in MicroOp::ALL {
            let pcj = run_pcj_micro(dtype, op, n).as_secs_f64();
            let pjh = run_pjh_micro(dtype, op, n).as_secs_f64();
            let speedup = pcj / pjh.max(f64::MIN_POSITIVE);
            row.push(format!("{speedup:8.1}x"));
            if op == MicroOp::Get {
                min_get = min_get.min(speedup);
            }
            if speedup > max_speedup.0 {
                max_speedup = (speedup, format!("{} {}", dtype.name(), op.name()));
            }
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 15: PJH speedup over PCJ ({n} ops per cell)"),
        &["Data type", "Create", "Set", "Get"],
        &rows,
    );
    println!("\npeak speedup: {:.1}x on {}", max_speedup.0, max_speedup.1);
    println!("minimum get speedup: {min_get:.1}x");
    println!("paper shape: create/set 10-256x, get >= 6x");
}
