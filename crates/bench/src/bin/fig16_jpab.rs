//! Figure 16 (a-d): JPAB throughput, H2-JPA vs H2-PJO for the four test
//! cases x retrieve/update/delete/create.
//!
//! Paper shape: PJO wins every cell, up to 3.24x.

use espresso_bench::jpab::{provider_pair, run_jpab, JpabTest};
use espresso_bench::report::print_table;

fn main() {
    let n = espresso_bench::scale_arg(500);
    for test in JpabTest::ALL {
        let (mut jpa, mut pjo) = provider_pair();
        let tj = run_jpab(&mut jpa, test, n);
        let tp = run_jpab(&mut pjo, test, n);
        let mut rows = Vec::new();
        for ((op, dj), (_, dp)) in tj.rows().iter().zip(tp.rows().iter()) {
            // Throughput = ops/sec; also report the speedup.
            let thr_j = n as f64 / dj.as_secs_f64();
            let thr_p = n as f64 / dp.as_secs_f64();
            rows.push(vec![
                op.to_string(),
                format!("{thr_j:10.0}"),
                format!("{thr_p:10.0}"),
                format!("{:5.2}x", thr_p / thr_j),
            ]);
        }
        print_table(
            &format!("Figure 16: {} ({n} entities, ops/sec)", test.name()),
            &["Operation", "H2-JPA", "H2-PJO", "PJO speedup"],
            &rows,
        );
    }
    println!("\npaper shape: H2-PJO above H2-JPA in every cell, up to 3.24x");
}
