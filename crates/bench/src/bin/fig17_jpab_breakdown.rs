//! Figure 17: BasicTest time breakdown (execution / transformation /
//! other) for H2-JPA vs H2-PJO, per CRUD operation.
//!
//! Paper shape: the transformation share collapses under PJO, and H2
//! execution time also drops for most operations.

use espresso::heap::{Pjh, PjhConfig};
use espresso::jpa::EntityManager;
use espresso::minidb::{Database, Value};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::pjo::PjoEntityManager;
use espresso_bench::jpab::{jpab_meta, make_entity, mutate_entity, JpabTest, Provider};
use espresso_bench::report::print_table;
use std::time::Instant;

struct PhaseRow {
    op: &'static str,
    provider: &'static str,
    execution_ms: f64,
    transformation_ms: f64,
    other_ms: f64,
}

fn run(provider: &mut Provider, db: &Database, n: usize) -> Vec<PhaseRow> {
    let metas = jpab_meta(JpabTest::Basic);
    let meta = metas.last().unwrap().clone();
    match provider {
        Provider::Jpa(em) => em.create_schema(&[&meta]).unwrap(),
        Provider::Pjo(em) => em.create_schema(&[&meta]).unwrap(),
    }
    let mut rows = Vec::new();
    let mut phase = |op: &'static str,
                     provider: &mut Provider,
                     db: &Database,
                     f: &mut dyn FnMut(&mut Provider)| {
        db.reset_stats();
        match provider {
            Provider::Jpa(em) => em.reset_stats(),
            Provider::Pjo(em) => em.reset_stats(),
        }
        let t0 = Instant::now();
        f(provider);
        let total = t0.elapsed().as_nanos() as f64;
        let dbs = db.stats();
        let (label, transformation) = match provider {
            Provider::Jpa(em) => (
                "H2-JPA",
                (em.stats().transformation_ns + dbs.parse_ns) as f64,
            ),
            Provider::Pjo(em) => ("H2-PJO", em.stats().ship_ns as f64),
        };
        let execution = (dbs.exec_ns + dbs.wal_ns) as f64;
        rows.push(PhaseRow {
            op,
            provider: label,
            execution_ms: execution / 1e6,
            transformation_ms: transformation / 1e6,
            other_ms: (total - execution - transformation).max(0.0) / 1e6,
        });
    };

    let meta_c = meta.clone();
    phase("Create", provider, db, &mut |p| {
        for chunk in (0..n).step_by(50) {
            p_begin(p);
            for id in chunk..(chunk + 50).min(n) {
                p_persist(
                    p,
                    make_entity(JpabTest::Basic, &meta_c, id as i64, n as i64),
                );
            }
            p_commit(p);
        }
    });
    let meta_r = meta.clone();
    phase("Retrieve", provider, db, &mut |p| {
        for id in 0..n {
            let _ = p_find(p, &meta_r, id as i64);
        }
    });
    let meta_u = meta.clone();
    phase("Update", provider, db, &mut |p| {
        for chunk in (0..n).step_by(50) {
            p_begin(p);
            for id in chunk..(chunk + 50).min(n) {
                let mut obj = p_find(p, &meta_u, id as i64).expect("present");
                mutate_entity(JpabTest::Basic, &mut obj);
                p_merge(p, obj);
            }
            p_commit(p);
        }
    });
    let meta_d = meta.clone();
    phase("Delete", provider, db, &mut |p| {
        for chunk in (0..n).step_by(50) {
            p_begin(p);
            for id in chunk..(chunk + 50).min(n) {
                p_remove(p, &meta_d, id as i64);
            }
            p_commit(p);
        }
    });
    rows
}

fn p_begin(p: &mut Provider) {
    match p {
        Provider::Jpa(em) => em.begin(),
        Provider::Pjo(em) => em.begin(),
    }
}
fn p_commit(p: &mut Provider) {
    match p {
        Provider::Jpa(em) => em.commit().unwrap(),
        Provider::Pjo(em) => em.commit().unwrap(),
    }
}
fn p_persist(p: &mut Provider, o: espresso::jpa::EntityObject) {
    match p {
        Provider::Jpa(em) => em.persist(o),
        Provider::Pjo(em) => em.persist(o),
    }
}
fn p_merge(p: &mut Provider, o: espresso::jpa::EntityObject) {
    match p {
        Provider::Jpa(em) => em.merge(o),
        Provider::Pjo(em) => em.merge(o),
    }
}
fn p_remove(p: &mut Provider, m: &espresso::jpa::EntityMeta, id: i64) {
    match p {
        Provider::Jpa(em) => em.remove(m, Value::Int(id)),
        Provider::Pjo(em) => em.remove(m, Value::Int(id)),
    }
}
fn p_find(
    p: &mut Provider,
    m: &espresso::jpa::EntityMeta,
    id: i64,
) -> Option<espresso::jpa::EntityObject> {
    match p {
        Provider::Jpa(em) => em.find(m, &Value::Int(id)).unwrap(),
        Provider::Pjo(em) => em.find(m, &Value::Int(id)).unwrap(),
    }
}

fn main() {
    let n = espresso_bench::scale_arg(1000);

    let jpa_db = Database::create(NvmDevice::new(NvmConfig::with_size(64 << 20))).unwrap();
    let mut jpa = Provider::Jpa(EntityManager::new(jpa_db.connect()));
    let jpa_rows = run(&mut jpa, &jpa_db, n);

    let pjo_db = Database::create(NvmDevice::new(NvmConfig::with_size(64 << 20))).unwrap();
    let pjh = Pjh::create(
        NvmDevice::new(NvmConfig::with_size(128 << 20)),
        PjhConfig::default(),
    )
    .unwrap();
    let mut pjo = Provider::Pjo(PjoEntityManager::new(pjo_db.connect(), pjh));
    let pjo_rows = run(&mut pjo, &pjo_db, n);

    let mut rows = Vec::new();
    for r in jpa_rows.iter().chain(pjo_rows.iter()) {
        rows.push(vec![
            r.op.to_string(),
            r.provider.to_string(),
            format!("{:9.2}", r.execution_ms),
            format!("{:9.2}", r.transformation_ms),
            format!("{:9.2}", r.other_ms),
        ]);
    }
    print_table(
        &format!("Figure 17: BasicTest breakdown ({n} entities, milliseconds)"),
        &[
            "Operation",
            "Provider",
            "Execution",
            "Transformation",
            "Other",
        ],
        &rows,
    );
    println!("\npaper shape: PJO eliminates the transformation share; execution shrinks too");
}
