//! Figure 18: heap loading time vs object count under user-guaranteed
//! (UG) and zeroing safety.
//!
//! Paper shape: UG flat in the number of objects (it only reinitializes
//! Klasses); zeroing linear (whole-heap scan); ~73ms at 2M objects on
//! their hardware.

use espresso::heap::SafetyLevel;
use espresso_bench::micro::{build_loading_image, measure_load};
use espresso_bench::report::print_table;

fn main() {
    // Paper sweeps 0.2M..2M objects of 20 klasses; default scaled down.
    let max = espresso_bench::scale_arg(200_000);
    let steps = 5;
    let mut rows = Vec::new();
    let mut ug_times = Vec::new();
    let mut zero_times = Vec::new();
    for step in 1..=steps {
        let objects = max * step / steps;
        let image = build_loading_image(objects, 20);
        let ug = measure_load(&image, SafetyLevel::UserGuaranteed);
        let zero = measure_load(&image, SafetyLevel::Zeroing);
        ug_times.push(ug.as_secs_f64());
        zero_times.push(zero.as_secs_f64());
        rows.push(vec![
            format!("{objects}"),
            format!("{:9.3}", ug.as_secs_f64() * 1e3),
            format!("{:9.3}", zero.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        "Figure 18: heap loading time (ms), 20 klasses",
        &["Objects", "UG (ms)", "Zero (ms)"],
        &rows,
    );
    let ug_growth = ug_times.last().unwrap() / ug_times.first().unwrap().max(1e-9);
    let zero_growth = zero_times.last().unwrap() / zero_times.first().unwrap().max(1e-9);
    println!("\nUG growth over the sweep: {ug_growth:.2}x (paper: ~flat)");
    println!("Zeroing growth over the sweep: {zero_growth:.2}x (paper: ~linear, ~{steps}x)");
}
