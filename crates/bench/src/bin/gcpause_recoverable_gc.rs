//! §6.4: the cost of the recoverable GC — pause time with the
//! crash-consistency flushes vs the same collection with all clflush
//! removed.
//!
//! Paper shape: flushes add ~17.8% to the pause.

use espresso_bench::micro::measure_gc_pause;
use espresso_bench::report::print_table;

fn main() {
    let n = espresso_bench::scale_arg(20_000);
    let live = n / 5;
    let garbage = n - live;
    // Wall time, best of 5, is the paper's comparator (the pause is
    // dominated by mark/summary/copy CPU work; flushes add on top).
    // Simulated device time is reported alongside: it charges each flush
    // the full NVM media cost and so bounds the overhead from above.
    let mut with = measure_gc_pause(live, garbage, true);
    let mut without = measure_gc_pause(live, garbage, false);
    for _ in 0..4 {
        let w = measure_gc_pause(live, garbage, true);
        if w.wall < with.wall {
            with = w;
        }
        let wo = measure_gc_pause(live, garbage, false);
        if wo.wall < without.wall {
            without = wo;
        }
    }
    let overhead = with.wall.as_secs_f64() / without.wall.as_secs_f64() - 1.0;
    let sim_overhead = with.sim_ns as f64 / without.sim_ns.max(1) as f64 - 1.0;
    print_table(
        &format!("Recoverable GC pause ({live} live / {garbage} garbage objects)"),
        &["Mode", "Simulated ns", "Flushes", "Wall ms"],
        &[
            vec![
                "crash-consistent".into(),
                format!("{}", with.sim_ns),
                format!("{}", with.flushes),
                format!("{:.2}", with.wall.as_secs_f64() * 1e3),
            ],
            vec![
                "no-flush baseline".into(),
                format!("{}", without.sim_ns),
                format!("{}", without.flushes),
                format!("{:.2}", without.wall.as_secs_f64() * 1e3),
            ],
        ],
    );
    println!(
        "\nflush overhead on the pause: {:.1}% wall / {:.1}% simulated-device upper bound (paper: 17.8%)",
        overhead * 100.0,
        sim_overhead * 100.0
    );
}
