//! Baseline comparison for the CI bench-regression gate (`bench_diff`).
//!
//! Parses the flat `"key": number` maps inside `bench_baseline`'s JSON
//! output (no external JSON dependency; the schema is ours) and flags
//! fig15 speedup cells that regressed beyond a tolerance.

/// One compared fig15 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Cell name, e.g. `ArrayList/Create`.
    pub name: String,
    /// Speedup recorded in the committed baseline.
    pub baseline: f64,
    /// Speedup measured by the current run (`None` if the cell vanished).
    pub current: Option<f64>,
    /// Whether the cell regressed beyond the tolerance (or vanished).
    pub regressed: bool,
}

/// Extracts the `"key": number` pairs of the object named `section`.
///
/// Returns an empty vector when the section is missing — callers treat
/// that as a hard failure for fig15.
pub fn parse_map_section(json: &str, section: &str) -> Vec<(String, f64)> {
    let needle = format!("\"{section}\"");
    let Some(at) = json.find(&needle) else {
        return Vec::new();
    };
    let rest = &json[at + needle.len()..];
    let Some(open) = rest.find('{') else {
        return Vec::new();
    };
    let body = &rest[open + 1..];
    let end = body.find('}').unwrap_or(body.len());
    let mut out = Vec::new();
    for pair in body[..end].split(',') {
        let Some((key, value)) = pair.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Compares fig15 speedups: a cell regresses when the current speedup
/// falls below `baseline * (1 - tolerance)`, or is missing entirely.
pub fn diff_speedups(baseline: &str, current: &str, tolerance: f64) -> Vec<CellDiff> {
    diff_ratio_cells(baseline, current, "pjh_speedup_over_pcj", tolerance)
}

/// Compares any higher-is-better ratio section (fig15 speedups, shard
/// throughput ratios): a cell regresses when the current value falls
/// below `baseline * (1 - tolerance)`, or is missing entirely.
pub fn diff_ratio_cells(
    baseline: &str,
    current: &str,
    section: &str,
    tolerance: f64,
) -> Vec<CellDiff> {
    let base = parse_map_section(baseline, section);
    let cur = parse_map_section(current, section);
    base.into_iter()
        .map(|(name, b)| {
            let c = cur.iter().find(|(n, _)| *n == name).map(|&(_, v)| v);
            let regressed = match c {
                Some(v) => v < b * (1.0 - tolerance),
                None => true,
            };
            CellDiff {
                name,
                baseline: b,
                current: c,
                regressed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "fig15": {
    "pjh_speedup_over_pcj": {
      "A/Create": 4.00,
      "A/Set": 10.00
    }
  },
  "fig18": { "load_ms": { "ug/100": 0.5 } }
}"#;

    #[test]
    fn parses_sections() {
        let cells = parse_map_section(BASE, "pjh_speedup_over_pcj");
        assert_eq!(
            cells,
            vec![("A/Create".to_string(), 4.0), ("A/Set".to_string(), 10.0)]
        );
        assert_eq!(
            parse_map_section(BASE, "load_ms"),
            vec![("ug/100".to_string(), 0.5)]
        );
        assert!(parse_map_section(BASE, "missing").is_empty());
    }

    #[test]
    fn within_tolerance_passes() {
        let current = BASE.replace("4.00", "3.30").replace("10.00", "12.00");
        let diffs = diff_speedups(BASE, &current, 0.20);
        assert!(diffs.iter().all(|d| !d.regressed), "{diffs:?}");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let current = BASE.replace("4.00", "3.10");
        let diffs = diff_speedups(BASE, &current, 0.20);
        let a = diffs.iter().find(|d| d.name == "A/Create").unwrap();
        assert!(a.regressed);
        assert!(!diffs.iter().find(|d| d.name == "A/Set").unwrap().regressed);
    }

    #[test]
    fn missing_cell_fails() {
        let current = BASE.replace("\"A/Set\": 10.00", "\"B/Set\": 10.00");
        let diffs = diff_speedups(BASE, &current, 0.20);
        assert!(diffs.iter().find(|d| d.name == "A/Set").unwrap().regressed);
    }

    #[test]
    fn improvements_never_fail_even_at_zero_tolerance() {
        let current = BASE.replace("4.00", "9.99");
        let diffs = diff_speedups(BASE, &current, 0.0);
        assert!(diffs.iter().all(|d| !d.regressed));
    }
}
