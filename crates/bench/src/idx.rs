//! Index-scan cell: the secondary-index access path against the full
//! heap walk it replaces, at matched object counts.
//!
//! Two heaps are built with the same `objects` entries (u64 keys, a
//! permutation of `0..objects` inserted in scrambled order):
//!
//! * an **indexed** heap whose entries are reachable through a
//!   [`Index`] on the key field (insertion pays the CoW B-tree
//!   maintenance inside the same transaction), and
//! * a **plain** heap whose entries hang off a root via a `next`-ref
//!   chain (the typed layer's only native access path), found by
//!   [`scan_filter`] — a live-set walk over the whole heap.
//!
//! The gated number is `full_scan / indexed_scan` for a fixed 100-key
//! window: the point of the index subsystem is that a range query must
//! not pay O(heap). Build times ride along as the insert-overhead cell
//! (plain build over indexed build — below 1.0, since indexed inserts
//! also write the tree path).

use std::time::{Duration, Instant};

use espresso::heap::{HeapHandle, HeapManager, HeapTxn, PjhConfig, PjhError};
use espresso_index::{scan_filter, Index, Key};
use espresso_object::{PObject, PRef, Schema};

struct Entry;

impl PObject for Entry {
    const CLASS_NAME: &'static str = "bench.IdxEntry";
    fn schema() -> Schema {
        Schema::builder(Self::CLASS_NAME)
            .u64_field("k")
            .ref_field::<Entry>("next")
            .build()
    }
}

/// What [`run_index_scan`] measured.
#[derive(Debug, Clone, Copy)]
pub struct IndexScanResult {
    /// Wall time to insert every entry with index maintenance.
    pub indexed_build: Duration,
    /// Wall time to insert every entry onto the plain ref chain.
    pub plain_build: Duration,
    /// Best-of-N time for the 100-key window via `Index::range`.
    pub indexed_scan: Duration,
    /// Best-of-N time for the same window via `scan_filter` (full walk).
    pub full_scan: Duration,
    /// Window hits (identical on both paths, asserted).
    pub hits: usize,
}

/// Inserts per transaction: 4 logged stores per indexed insert (key
/// field, chain ref, and the index's two) must stay under the undo log's
/// fixed entry budget.
const BATCH: usize = 32;

/// Scan repetitions per cell; the minimum is reported (scans are
/// read-only, so the best run is the least-perturbed one).
const SCAN_REPS: usize = 5;

/// Collect every this many batches during the indexed build. CoW index
/// maintenance sheds a tree path per insert; collecting while free
/// regions still exist lets the GC evacuate sparse regions, whereas a
/// heap run to exhaustion leaves live entries pinning every region
/// in place and only exact-size slots reusable.
const GC_EVERY_BATCHES: usize = 256;

/// Runs `f` as one transaction, retrying once after a full GC when the
/// heap fills — CoW index maintenance sheds dead tree paths that only a
/// collection reclaims.
fn txn_retry<R>(handle: &HeapHandle, f: impl Fn(&mut HeapTxn<'_>) -> Result<R, PjhError>) -> R {
    match handle.txn(&f) {
        Ok(r) => r,
        Err(PjhError::HeapFull { .. }) => {
            handle.with_mut(|h| h.gc_full(&[])).expect("bench gc");
            handle.txn(&f).expect("bench txn after gc")
        }
        Err(e) => panic!("bench txn: {e}"),
    }
}

/// The scrambled insertion order: an odd-prime stride is a bijection on
/// `0..objects` whenever the prime does not divide `objects`, so keys
/// arrive shuffled but every key in the range exists exactly once.
fn key_at(i: usize, objects: usize) -> u64 {
    ((i as u64).wrapping_mul(1_000_003)) % objects as u64
}

fn heap_bytes(objects: usize) -> usize {
    // Live entries plus tree nodes plus CoW slack; the GC-retry path
    // absorbs estimation error.
    (64 << 20) + objects * 512
}

/// Builds both heaps at `objects` entries and times the window scan on
/// each access path.
///
/// # Panics
///
/// On any heap error, and if the two paths disagree on the window's
/// contents — a timing cell over a wrong answer would be meaningless.
pub fn run_index_scan(objects: usize) -> IndexScanResult {
    assert!(objects >= 256, "window needs room");
    let lo = (objects / 2) as u64;
    let hi = lo + 100;

    let mgr = HeapManager::temp().expect("temp manager");

    // Indexed heap: entries reachable through the index itself.
    let indexed = mgr
        .create("idx_bench", heap_bytes(objects), PjhConfig::default())
        .expect("indexed heap");
    let (class, idx) = indexed
        .with_mut(|h| {
            let class = h.register::<Entry>()?;
            let idx = Index::<Entry>::create(h, "bench.by_k", "k")?;
            Ok::<_, PjhError>((class, idx))
        })
        .expect("create index");
    let fk = class.field::<u64>("k").expect("k field");

    let started = Instant::now();
    for batch in (0..objects).step_by(BATCH) {
        let end = (batch + BATCH).min(objects);
        txn_retry(&indexed, |t| {
            for i in batch..end {
                let k = key_at(i, objects);
                let obj = t.alloc::<Entry>()?;
                t.set(obj, fk, k);
                idx.insert(t, &Key::U64(k), obj)?;
            }
            Ok(())
        });
        if (batch / BATCH + 1).is_multiple_of(GC_EVERY_BATCHES) {
            indexed.with_mut(|h| h.gc_full(&[])).expect("periodic gc");
        }
    }
    let indexed_build = started.elapsed();

    // Plain heap: the same entries on a root-anchored ref chain, the
    // access path a heap without indexes actually has.
    let plain = mgr
        .create("plain_bench", heap_bytes(objects), PjhConfig::default())
        .expect("plain heap");
    let (pclass, fnext) = plain
        .with_mut(|h| {
            let class = h.register::<Entry>()?;
            let next = class.ref_field::<Entry>("next")?;
            Ok::<_, PjhError>((class, next))
        })
        .expect("register plain");
    let pk = pclass.field::<u64>("k").expect("k field");

    let started = Instant::now();
    let mut head: Option<PRef<Entry>> = None;
    for batch in (0..objects).step_by(BATCH) {
        let end = (batch + BATCH).min(objects);
        let prev = head;
        head = Some(txn_retry(&plain, |t| {
            let mut link = prev;
            for i in batch..end {
                let obj = t.alloc::<Entry>()?;
                t.set(obj, pk, key_at(i, objects));
                if let Some(n) = link {
                    t.set_ref(obj, fnext, Some(n))?;
                }
                link = Some(obj);
            }
            Ok(link.expect("non-empty batch"))
        }));
        // Republish the chain head so every batch stays GC-reachable.
        plain
            .set_root_typed("bench.chain", head.expect("head"))
            .expect("set root");
    }
    let plain_build = started.elapsed();

    // The window, both ways. Scans are read-only: best-of-N.
    let mut indexed_scan = Duration::MAX;
    let mut indexed_hits = Vec::new();
    for _ in 0..SCAN_REPS {
        let session = indexed.read();
        let t = Instant::now();
        let hits: Vec<u64> = idx
            .range(&session, Key::U64(lo)..Key::U64(hi))
            .expect("range")
            .map(|(k, _)| match k {
                Key::U64(v) => v,
                other => panic!("non-u64 key {other:?}"),
            })
            .collect();
        indexed_scan = indexed_scan.min(t.elapsed());
        indexed_hits = hits;
    }

    let mut full_scan = Duration::MAX;
    let mut full_hits = Vec::new();
    for _ in 0..SCAN_REPS {
        let t = Instant::now();
        let hits: Vec<u64> = plain.with(|h| {
            scan_filter::<Entry>(h, |h, p| {
                let v = h.get(p, pk);
                v >= lo && v < hi
            })
            .into_iter()
            .map(|p| h.get(p, pk))
            .collect()
        });
        full_scan = full_scan.min(t.elapsed());
        full_hits = hits;
    }

    indexed_hits.sort_unstable();
    full_hits.sort_unstable();
    assert_eq!(
        indexed_hits, full_hits,
        "index window disagrees with the full walk"
    );

    IndexScanResult {
        indexed_build,
        plain_build,
        indexed_scan,
        full_scan,
        hits: indexed_hits.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small end-to-end run: both paths agree on the window, the
    /// window is exactly 100 keys (the key set is a permutation of
    /// `0..objects`), and the cell's numbers are well-formed.
    #[test]
    fn index_scan_cell_agrees_across_paths() {
        let r = run_index_scan(2_000);
        assert_eq!(r.hits, 100);
        assert!(r.indexed_build > Duration::ZERO);
        assert!(r.plain_build > Duration::ZERO);
        assert!(r.indexed_scan > Duration::ZERO);
        assert!(r.full_scan > Duration::ZERO);
    }

    #[test]
    fn key_stride_is_a_permutation() {
        let n = 4_096;
        let mut seen = vec![false; n];
        for i in 0..n {
            seen[key_at(i, n) as usize] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }
}
