//! JPAB-style workloads (Table 2) and a provider-generic CRUD driver for
//! Figures 16 and 17.

use std::time::{Duration, Instant};

use espresso::jpa::{EntityManager, EntityMeta, EntityObject};
use espresso::minidb::{ColType, Value};
use espresso::pjo::PjoEntityManager;

/// The four JPAB test cases (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JpabTest {
    /// Basic user-defined classes.
    Basic,
    /// Classes with inheritance relationships.
    Ext,
    /// Classes containing collection members.
    Collection,
    /// Classes with foreign-key-like references.
    Node,
}

impl JpabTest {
    /// All four tests in paper order.
    pub const ALL: [JpabTest; 4] = [
        JpabTest::Basic,
        JpabTest::Ext,
        JpabTest::Collection,
        JpabTest::Node,
    ];

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            JpabTest::Basic => "BasicTest",
            JpabTest::Ext => "ExtTest",
            JpabTest::Collection => "CollectionTest",
            JpabTest::Node => "NodeTest",
        }
    }
}

/// Builds the entity metadata for a test case. The last element is the
/// entity the driver instantiates.
pub fn jpab_meta(test: JpabTest) -> Vec<EntityMeta> {
    match test {
        JpabTest::Basic => vec![EntityMeta::builder("basic_person")
            .pk_field("id", ColType::Int)
            .field("first_name", ColType::Text)
            .field("last_name", ColType::Text)
            .field("age", ColType::Int)
            .build()],
        JpabTest::Ext => {
            let base = EntityMeta::builder("ext_person")
                .pk_field("id", ColType::Int)
                .field("name", ColType::Text)
                .build();
            let derived = EntityMeta::builder("ext_employee")
                .field("department", ColType::Text)
                .field("salary", ColType::Int)
                .extends(&base)
                .build();
            vec![derived]
        }
        JpabTest::Collection => vec![EntityMeta::builder("coll_owner")
            .pk_field("id", ColType::Int)
            .field("label", ColType::Text)
            .collection("elements")
            .build()],
        JpabTest::Node => vec![EntityMeta::builder("node")
            .pk_field("id", ColType::Int)
            .field("payload", ColType::Text)
            .field("next_id", ColType::Int)
            .build()],
    }
}

/// Instantiates entity `id` for a test case.
pub fn make_entity(test: JpabTest, meta: &EntityMeta, id: i64, n: i64) -> EntityObject {
    let mut o = meta.instantiate();
    match test {
        JpabTest::Basic => {
            o.set(0, Value::Int(id));
            o.set(1, Value::Str(format!("First{id}")));
            o.set(2, Value::Str(format!("Last{id}")));
            o.set(3, Value::Int(20 + id % 60));
        }
        JpabTest::Ext => {
            o.set(0, Value::Int(id));
            o.set(1, Value::Str(format!("Emp{id}")));
            o.set(2, Value::Str(format!("Dept{}", id % 10)));
            o.set(3, Value::Int(50_000 + id));
        }
        JpabTest::Collection => {
            o.set(0, Value::Int(id));
            o.set(1, Value::Str(format!("Owner{id}")));
            o.set_collection(0, (0..5).map(|i| id * 10 + i).collect());
        }
        JpabTest::Node => {
            o.set(0, Value::Int(id));
            o.set(1, Value::Str(format!("Node{id}")));
            o.set(2, Value::Int((id + 1) % n));
        }
    }
    o
}

/// Mutates entity fields the way JPAB's update phase does.
pub fn mutate_entity(test: JpabTest, obj: &mut EntityObject) {
    match test {
        JpabTest::Basic => obj.set(3, Value::Int(99)),
        JpabTest::Ext => obj.set(3, Value::Int(60_000)),
        JpabTest::Collection => {
            let mut items = obj.collection(0).to_vec();
            items.push(777);
            obj.set_collection(0, items);
        }
        JpabTest::Node => obj.set(1, Value::Str("updated".into())),
    }
}

/// One provider under test — JPA over SQL text, or PJO over the direct
/// interface. Both expose identical JPA-style calls, so the driver is
/// provider-blind exactly like an application written against JPA (§5's
/// backward compatibility).
// Bench-only handle; the size skew between the two managers is harmless.
#[allow(clippy::large_enum_variant)]
pub enum Provider {
    /// The H2-JPA baseline.
    Jpa(EntityManager),
    /// The H2-PJO system.
    Pjo(PjoEntityManager),
}

impl Provider {
    /// Provider label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Provider::Jpa(_) => "H2-JPA",
            Provider::Pjo(_) => "H2-PJO",
        }
    }

    fn create_schema(&mut self, metas: &[&EntityMeta]) {
        match self {
            Provider::Jpa(em) => em.create_schema(metas).expect("schema"),
            Provider::Pjo(em) => em.create_schema(metas).expect("schema"),
        }
    }

    fn begin(&mut self) {
        match self {
            Provider::Jpa(em) => em.begin(),
            Provider::Pjo(em) => em.begin(),
        }
    }

    fn persist(&mut self, obj: EntityObject) {
        match self {
            Provider::Jpa(em) => em.persist(obj),
            Provider::Pjo(em) => em.persist(obj),
        }
    }

    fn merge(&mut self, obj: EntityObject) {
        match self {
            Provider::Jpa(em) => em.merge(obj),
            Provider::Pjo(em) => em.merge(obj),
        }
    }

    fn remove(&mut self, meta: &EntityMeta, key: Value) {
        match self {
            Provider::Jpa(em) => em.remove(meta, key),
            Provider::Pjo(em) => em.remove(meta, key),
        }
    }

    fn find(&mut self, meta: &EntityMeta, key: &Value) -> Option<EntityObject> {
        match self {
            Provider::Jpa(em) => em.find(meta, key).expect("find"),
            Provider::Pjo(em) => em.find(meta, key).expect("find"),
        }
    }

    fn commit(&mut self) {
        match self {
            Provider::Jpa(em) => em.commit().expect("commit"),
            Provider::Pjo(em) => em.commit().expect("commit"),
        }
    }
}

/// Wall time per CRUD phase over `n` entities.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrudTiming {
    /// Persist phase.
    pub create: Duration,
    /// Find phase.
    pub retrieve: Duration,
    /// Merge phase.
    pub update: Duration,
    /// Remove phase.
    pub delete: Duration,
}

impl CrudTiming {
    /// `(label, duration)` rows in the paper's x-axis order.
    pub fn rows(&self) -> [(&'static str, Duration); 4] {
        [
            ("Retrieve", self.retrieve),
            ("Update", self.update),
            ("Delete", self.delete),
            ("Create", self.create),
        ]
    }
}

const BATCH: usize = 50;

/// Runs the JPAB CRUD cycle for one test case: create `n`, retrieve `n`,
/// update `n`, delete `n`, committing in batches.
pub fn run_jpab(provider: &mut Provider, test: JpabTest, n: usize) -> CrudTiming {
    let metas = jpab_meta(test);
    let meta = metas.last().expect("at least one meta").clone();
    provider.create_schema(&metas.iter().collect::<Vec<_>>());
    let n_i = n as i64;

    let mut timing = CrudTiming::default();

    // Create.
    let t0 = Instant::now();
    for chunk_start in (0..n).step_by(BATCH) {
        provider.begin();
        for id in chunk_start..(chunk_start + BATCH).min(n) {
            provider.persist(make_entity(test, &meta, id as i64, n_i));
        }
        provider.commit();
    }
    timing.create = t0.elapsed();

    // Retrieve.
    let t0 = Instant::now();
    for id in 0..n {
        let found = provider.find(&meta, &Value::Int(id as i64));
        assert!(found.is_some(), "{} lost entity {id}", provider.label());
    }
    timing.retrieve = t0.elapsed();

    // Update.
    let t0 = Instant::now();
    for chunk_start in (0..n).step_by(BATCH) {
        provider.begin();
        for id in chunk_start..(chunk_start + BATCH).min(n) {
            let mut obj = provider
                .find(&meta, &Value::Int(id as i64))
                .expect("present");
            mutate_entity(test, &mut obj);
            provider.merge(obj);
        }
        provider.commit();
    }
    timing.update = t0.elapsed();

    // Delete.
    let t0 = Instant::now();
    for chunk_start in (0..n).step_by(BATCH) {
        provider.begin();
        for id in chunk_start..(chunk_start + BATCH).min(n) {
            provider.remove(&meta, Value::Int(id as i64));
        }
        provider.commit();
    }
    timing.delete = t0.elapsed();

    timing
}

/// Builds a fresh provider pair (same workload, two pipelines).
pub fn provider_pair() -> (Provider, Provider) {
    use espresso::heap::{Pjh, PjhConfig};
    use espresso::minidb::Database;
    use espresso::nvm::{NvmConfig, NvmDevice};

    let jpa_db = Database::create(NvmDevice::new(NvmConfig::with_size(32 << 20))).expect("db");
    let pjo_db = Database::create(NvmDevice::new(NvmConfig::with_size(32 << 20))).expect("db");
    let pjh = Pjh::create(
        NvmDevice::new(NvmConfig::with_size(64 << 20)),
        PjhConfig::default(),
    )
    .expect("pjh");
    (
        Provider::Jpa(EntityManager::new(jpa_db.connect())),
        Provider::Pjo(PjoEntityManager::new(pjo_db.connect(), pjh)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tests_run_on_both_providers() {
        for test in JpabTest::ALL {
            let (mut jpa, mut pjo) = provider_pair();
            let tj = run_jpab(&mut jpa, test, 60);
            let tp = run_jpab(&mut pjo, test, 60);
            for t in [tj, tp] {
                for (_, d) in t.rows() {
                    assert!(d > Duration::ZERO);
                }
            }
        }
    }

    #[test]
    fn entities_match_their_shapes() {
        let metas = jpab_meta(JpabTest::Ext);
        assert_eq!(metas[0].fields().len(), 4, "inherited + own fields");
        let metas = jpab_meta(JpabTest::Collection);
        assert_eq!(metas[0].collections().len(), 1);
        let e = make_entity(JpabTest::Collection, &metas[0], 3, 10);
        assert_eq!(e.collection(0).len(), 5);
    }
}
