//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded results.
//!
//! Each figure has a runnable binary under `src/bin/` that prints the same
//! rows/series the paper reports, plus a Criterion bench under `benches/`
//! for statistically robust timing of the hot paths.
//!
//! Workload sizes follow the paper's shapes but default to laptop-friendly
//! counts; every binary accepts a scale argument (`--n <count>`).

pub mod diff;
pub mod idx;
pub mod jpab;
pub mod micro;
pub mod report;
pub mod srv;
pub mod wl;

/// Parses `--n <count>` from argv, falling back to `default`.
pub fn scale_arg(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
