//! Microbenchmark drivers: PJH vs PCJ (Figure 15), the PCJ create
//! breakdown (Figure 6), heap loading (Figure 18), and the recoverable-GC
//! pause cost (§6.4).

use std::time::{Duration, Instant};

use espresso::collections::{PArray, PArrayList, PHashMap, PLong, PStore, PTuple};
use espresso::heap::{LoadOptions, Pjh, PjhConfig, SafetyLevel};
use espresso::nvm::{LatencyModel, NvmConfig, NvmDevice};
use espresso::object::FieldDesc;
use espresso::pcj::{PcjArray, PcjArrayList, PcjHashMap, PcjLong, PcjStore, PcjTuple};

/// The five data-type columns of Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// Growable list.
    ArrayList,
    /// Generic object array.
    Generic,
    /// Fixed-arity tuple.
    Tuple,
    /// Boxed primitive.
    Primitive,
    /// Hash map.
    Hashmap,
}

impl DataType {
    /// All five in paper order.
    pub const ALL: [DataType; 5] = [
        DataType::ArrayList,
        DataType::Generic,
        DataType::Tuple,
        DataType::Primitive,
        DataType::Hashmap,
    ];

    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            DataType::ArrayList => "ArrayList",
            DataType::Generic => "Generic",
            DataType::Tuple => "Tuple",
            DataType::Primitive => "Primitive",
            DataType::Hashmap => "Hashmap",
        }
    }
}

/// The three operations of Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Allocate fresh structures.
    Create,
    /// Overwrite slots of one structure.
    Set,
    /// Read slots of one structure.
    Get,
}

impl MicroOp {
    /// All three in paper order.
    pub const ALL: [MicroOp; 3] = [MicroOp::Create, MicroOp::Set, MicroOp::Get];

    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            MicroOp::Create => "Create",
            MicroOp::Set => "Set",
            MicroOp::Get => "Get",
        }
    }
}

const TUPLE_ARITY: usize = 4;
const ARRAY_LEN: usize = 16;

fn pjh_store(bytes: usize) -> PStore {
    let dev = NvmDevice::new(NvmConfig::with_size(bytes));
    PStore::new(Pjh::create(dev, PjhConfig::default()).expect("pjh")).expect("store")
}

/// Runs `n` operations of `(dtype, op)` on the PJH collections; returns
/// elapsed wall time.
pub fn run_pjh_micro(dtype: DataType, op: MicroOp, n: usize) -> Duration {
    let mut s = pjh_store(256 << 20);
    let mut acc = 0u64;
    let t = match (dtype, op) {
        (DataType::ArrayList, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PArrayList::pnew(&mut s, 4).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::ArrayList, MicroOp::Set) => {
            let l = PArrayList::pnew(&mut s, ARRAY_LEN).expect("alloc");
            for i in 0..ARRAY_LEN {
                l.push(&mut s, i as u64).expect("push");
            }
            let t0 = Instant::now();
            for i in 0..n {
                l.set(&mut s, i % ARRAY_LEN, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::ArrayList, MicroOp::Get) => {
            let l = PArrayList::pnew(&mut s, ARRAY_LEN).expect("alloc");
            for i in 0..ARRAY_LEN {
                l.push(&mut s, i as u64).expect("push");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(l.get(&s, i % ARRAY_LEN).unwrap_or(0));
            }
            t0.elapsed()
        }
        (DataType::Generic, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PArray::pnew(&mut s, "espresso.PLong", 4).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Generic, MicroOp::Set) => {
            let a = PArray::pnew(&mut s, "espresso.PLong", ARRAY_LEN).expect("alloc");
            let b = PLong::pnew(&mut s, 0).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                a.set(&mut s, i % ARRAY_LEN, b.as_ref()).expect("set");
            }
            t0.elapsed()
        }
        (DataType::Generic, MicroOp::Get) => {
            let a = PArray::pnew(&mut s, "espresso.PLong", ARRAY_LEN).expect("alloc");
            for i in 0..ARRAY_LEN {
                let b = PLong::pnew(&mut s, i as u64).expect("alloc");
                a.set(&mut s, i, b.as_ref()).expect("set");
            }
            let t0 = Instant::now();
            for i in 0..n {
                let b = PLong::from_ref(a.get(&s, i % ARRAY_LEN));
                acc = acc.wrapping_add(b.value(&s));
            }
            t0.elapsed()
        }
        (DataType::Tuple, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PTuple::pnew(&mut s, TUPLE_ARITY).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Tuple, MicroOp::Set) => {
            let t = PTuple::pnew(&mut s, TUPLE_ARITY).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                t.set(&mut s, i % TUPLE_ARITY, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::Tuple, MicroOp::Get) => {
            let t = PTuple::pnew(&mut s, TUPLE_ARITY).expect("alloc");
            for i in 0..TUPLE_ARITY {
                t.set(&mut s, i, i as u64).expect("set");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(t.get(&s, i % TUPLE_ARITY));
            }
            t0.elapsed()
        }
        (DataType::Primitive, MicroOp::Create) => {
            let t0 = Instant::now();
            for i in 0..n {
                PLong::pnew(&mut s, i as u64).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Primitive, MicroOp::Set) => {
            let b = PLong::pnew(&mut s, 0).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                b.set(&mut s, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::Primitive, MicroOp::Get) => {
            let b = PLong::pnew(&mut s, 9).expect("alloc");
            let t0 = Instant::now();
            for _ in 0..n {
                acc = acc.wrapping_add(b.value(&s));
            }
            t0.elapsed()
        }
        (DataType::Hashmap, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PHashMap::pnew(&mut s, 4).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Hashmap, MicroOp::Set) => {
            let m = PHashMap::pnew(&mut s, 64).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                m.put(&mut s, (i % 64) as u64, i as u64).expect("put");
            }
            t0.elapsed()
        }
        (DataType::Hashmap, MicroOp::Get) => {
            let m = PHashMap::pnew(&mut s, 64).expect("alloc");
            for i in 0..64 {
                m.put(&mut s, i, i).expect("put");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(m.get(&s, (i % 64) as u64).unwrap_or(0));
            }
            t0.elapsed()
        }
    };
    std::hint::black_box(acc);
    t
}

/// Runs `n` operations of `(dtype, op)` on the PCJ baseline; returns
/// elapsed wall time.
pub fn run_pcj_micro(dtype: DataType, op: MicroOp, n: usize) -> Duration {
    let mut s = PcjStore::format(NvmDevice::new(NvmConfig::with_size(256 << 20))).expect("store");
    let mut acc = 0u64;
    let t = match (dtype, op) {
        (DataType::ArrayList, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PcjArrayList::create(&mut s, 4).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::ArrayList, MicroOp::Set) => {
            let l = PcjArrayList::create(&mut s, ARRAY_LEN).expect("alloc");
            for i in 0..ARRAY_LEN {
                l.push(&mut s, i as u64).expect("push");
            }
            let t0 = Instant::now();
            for i in 0..n {
                l.set(&mut s, i % ARRAY_LEN, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::ArrayList, MicroOp::Get) => {
            let l = PcjArrayList::create(&mut s, ARRAY_LEN).expect("alloc");
            for i in 0..ARRAY_LEN {
                l.push(&mut s, i as u64).expect("push");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(l.get(&mut s, i % ARRAY_LEN).unwrap_or(0));
            }
            t0.elapsed()
        }
        (DataType::Generic, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PcjArray::create(&mut s, 4).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Generic, MicroOp::Set) => {
            let a = PcjArray::create(&mut s, ARRAY_LEN).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                a.set(&mut s, i % ARRAY_LEN, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::Generic, MicroOp::Get) => {
            let a = PcjArray::create(&mut s, ARRAY_LEN).expect("alloc");
            for i in 0..ARRAY_LEN {
                a.set(&mut s, i, i as u64).expect("set");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(a.get(&mut s, i % ARRAY_LEN).unwrap_or(0));
            }
            t0.elapsed()
        }
        (DataType::Tuple, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PcjTuple::create(&mut s, TUPLE_ARITY).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Tuple, MicroOp::Set) => {
            let t = PcjTuple::create(&mut s, TUPLE_ARITY).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                t.set(&mut s, i % TUPLE_ARITY, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::Tuple, MicroOp::Get) => {
            let t = PcjTuple::create(&mut s, TUPLE_ARITY).expect("alloc");
            for i in 0..TUPLE_ARITY {
                t.set(&mut s, i, i as u64).expect("set");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(t.get(&mut s, i % TUPLE_ARITY).unwrap_or(0));
            }
            t0.elapsed()
        }
        (DataType::Primitive, MicroOp::Create) => {
            let t0 = Instant::now();
            for i in 0..n {
                PcjLong::create(&mut s, i as u64).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Primitive, MicroOp::Set) => {
            let b = PcjLong::create(&mut s, 0).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                b.set(&mut s, i as u64).expect("set");
            }
            t0.elapsed()
        }
        (DataType::Primitive, MicroOp::Get) => {
            let b = PcjLong::create(&mut s, 9).expect("alloc");
            let t0 = Instant::now();
            for _ in 0..n {
                acc = acc.wrapping_add(b.value(&mut s));
            }
            t0.elapsed()
        }
        (DataType::Hashmap, MicroOp::Create) => {
            let t0 = Instant::now();
            for _ in 0..n {
                PcjHashMap::create(&mut s, 4).expect("alloc");
            }
            t0.elapsed()
        }
        (DataType::Hashmap, MicroOp::Set) => {
            let m = PcjHashMap::create(&mut s, 64).expect("alloc");
            let t0 = Instant::now();
            for i in 0..n {
                m.put(&mut s, (i % 64) as u64, i as u64).expect("put");
            }
            t0.elapsed()
        }
        (DataType::Hashmap, MicroOp::Get) => {
            let m = PcjHashMap::create(&mut s, 64).expect("alloc");
            for i in 0..64 {
                m.put(&mut s, i, i).expect("put");
            }
            let t0 = Instant::now();
            for i in 0..n {
                acc = acc.wrapping_add(m.get(&mut s, (i % 64) as u64).unwrap_or(0));
            }
            t0.elapsed()
        }
    };
    std::hint::black_box(acc);
    t
}

// ---- shard scaling under concurrent committed serving ----

/// Total heap budget of the shard-scaling cell, split evenly across the
/// shards (strong scaling: N shards never get more memory than one).
const SHARD_TOTAL_BYTES: usize = 32 << 20;
/// Serving cadence: each worker takes a commit point on *its* shard every
/// this many of its ops (async seal; the final commit is the sync barrier).
const SHARD_COMMIT_EVERY: usize = 64;
/// Root-publish cadence. Roots share the fixed-capacity name table, so
/// this bounds the cell's maximum op count (`cadence × capacity` on one
/// shard); 64 keeps op counts up to ~16k legal while still exercising
/// the root path continuously.
const SHARD_ROOT_EVERY: usize = 64;

/// The `shard_scaling` cell of the CI bench gate: committed serving
/// throughput of an `espresso::heap::ShardedHeap` at a fixed total op
/// count and a fixed total heap budget, driven by **one worker thread per
/// shard**. Each worker serves its shard's keys (alloc + field store +
/// flush, every 16th op a shard-local txn) and takes a
/// commit point on its own shard every `SHARD_COMMIT_EVERY` of its ops
/// (sealed asynchronously on the shard's flush pipeline), ending in a
/// per-shard `commit_sync` durability barrier. Roots are published every
/// `SHARD_ROOT_EVERY` ops (the name table bounds how many fit).
///
/// Sharding wins on two real axes, and the cell observes both: commits
/// are **targeted** — a commit point covers only the 1/N-sized
/// persistence domain the worker touched, instead of dragging the whole
/// heap through every sync — and on multi-core hosts the per-shard
/// workers (and their pipelined image applies) run in parallel. Key
/// routing happens before the clock starts, so the timed region is heap
/// and commit work, not `format!` traffic.
pub fn run_shard_scaling(shards: usize, ops: usize) -> Duration {
    use espresso::heap::{HeapManager, ShardedHeap};
    let mgr = HeapManager::temp().expect("temp manager");
    let sh = ShardedHeap::create(
        &mgr,
        "scale",
        shards,
        SHARD_TOTAL_BYTES / shards,
        PjhConfig::default(),
    )
    .expect("sharded heap");
    let k = sh
        .register_instance(
            "Rec",
            vec![FieldDesc::prim("a"), FieldDesc::reference("next")],
        )
        .expect("klass");
    // Route the key space up front: worker i owns exactly the keys that
    // hash to shard i.
    let mut keys: Vec<Vec<String>> = vec![Vec::new(); shards];
    for i in 0..ops {
        let key = format!("k{i}");
        keys[sh.shard_of(&key)].push(key);
    }
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (shard, shard_keys) in keys.iter().enumerate() {
            let sh = &sh;
            let k = &k;
            scope.spawn(move || {
                let handle = sh.handle(shard);
                for (n, key) in shard_keys.iter().enumerate() {
                    let r = sh.alloc_instance(key, k).expect("alloc");
                    sh.set_field(r, 0, n as u64);
                    sh.flush_object(r);
                    if n % 16 == 0 {
                        sh.txn(key, |t| {
                            t.set_field(r.r, 0, (n as u64) << 1);
                            Ok(())
                        })
                        .expect("txn");
                    }
                    if n % SHARD_ROOT_EVERY == 0 {
                        sh.set_root(key, r).expect("root");
                    }
                    if (n + 1) % SHARD_COMMIT_EVERY == 0 {
                        // Seal an epoch on this worker's shard only; the
                        // image sync overlaps the next ops.
                        drop(handle.commit().expect("commit"));
                    }
                }
                handle.commit_sync().expect("final commit");
            });
        }
    });
    t0.elapsed()
}

// ---- Reader scaling: lock-free read sessions under a writer ----

/// Heap budget for the reader-scaling cell.
const READER_HEAP_BYTES: usize = 8 << 20;
/// Objects the readers cycle over (captured once, before the clock).
const READER_OBJS: usize = 256;
/// Readers reopen their session every this many reads, so the pin/unpin
/// hot path is part of the measured work, not just the field loads.
const READER_SESSION_EVERY: usize = 64;
/// The writer seals a commit epoch every this many stores.
const READER_COMMIT_EVERY: usize = 256;

/// The `reader_scaling` cell of the CI bench gate: wall time for
/// `readers` threads to each complete `ops` field reads through
/// epoch-pinned [`ReadSession`s](espresso::heap::ReadSession), optionally
/// with one writer thread continuously storing, flushing, and sealing
/// commit epochs on the same heap until the readers finish.
///
/// The gated number is the **retention ratio** — quiet time over
/// contended time for the same reader count — computed by the caller
/// from two runs of this function. Read sessions take no lock (they pin
/// an epoch and borrow the published replica), so the only contention a
/// writer can inflict is on the shared device; before sessions were
/// lock-free, the writer's held `RwLock` serialized every read behind
/// every write section and the ratio collapsed toward zero.
pub fn run_reader_scaling(readers: usize, ops: usize, with_writer: bool) -> Duration {
    use espresso::heap::{HeapManager, PjhError};
    use std::sync::atomic::{AtomicBool, Ordering};
    let mgr = HeapManager::temp().expect("temp manager");
    let h = mgr
        .create("readers", READER_HEAP_BYTES, PjhConfig::default())
        .expect("heap");
    let (refs, own) = h
        .with_mut(|p| {
            let k = p.register_instance(
                "Rec",
                vec![FieldDesc::prim("a"), FieldDesc::reference("next")],
            )?;
            let mut refs = Vec::with_capacity(READER_OBJS);
            for i in 0..READER_OBJS {
                let r = p.alloc_instance(k)?;
                p.set_field(r, 0, i as u64);
                p.flush_object(r);
                if i % 8 == 0 {
                    p.set_root(&format!("k{i}"), r)?;
                }
                refs.push(r);
            }
            // The writer's private working set: stores go here, so the
            // values the readers check stay fixed.
            let own: Vec<_> = (0..64)
                .map(|_| p.alloc_instance(k))
                .collect::<Result<_, _>>()?;
            Ok::<_, PjhError>((refs, own))
        })
        .expect("setup");
    let stop = AtomicBool::new(false);
    let mut elapsed = Duration::ZERO;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        if with_writer {
            let h = h.clone();
            let stop = &stop;
            let own = &own;
            scope.spawn(move || {
                let mut n = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    h.with_mut(|p| {
                        let r = own[n % own.len()];
                        p.set_field(r, 0, n as u64);
                        p.flush_object(r);
                    });
                    n += 1;
                    if n.is_multiple_of(READER_COMMIT_EVERY) {
                        drop(h.commit().expect("commit"));
                    }
                }
                h.commit_sync().expect("final commit");
            });
        }
        let workers: Vec<_> = (0..readers)
            .map(|t| {
                let h = h.clone();
                let refs = &refs;
                scope.spawn(move || {
                    let mut sum = 0u64;
                    let mut done = 0usize;
                    while done < ops {
                        let session = h.read();
                        let batch = READER_SESSION_EVERY.min(ops - done);
                        for i in 0..batch {
                            let r = refs[(t + done + i) % refs.len()];
                            sum = sum.wrapping_add(session.field(r, 0));
                        }
                        done += batch;
                    }
                    std::hint::black_box(sum);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("reader thread");
        }
        elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
    });
    elapsed
}

// ---- alloc churn: free-list reuse vs the bump-only baseline ----

/// Heap bytes for the churn cell — small enough that a bump-only
/// allocator must repeatedly compact, while the reuse path recycles the
/// same dead slots and stops growing.
const CHURN_HEAP_BYTES: usize = 2 << 20;
/// Hot window: each op kills the object `CHURN_HOT` ops older.
const CHURN_HOT: usize = 256;
/// Cold set: one in [`CHURN_COLD_EVERY`] ops allocates a long-lived
/// object instead, cycling through `CHURN_COLD` slots. The survivors
/// sprinkle every region with live objects, so wholesale region
/// reclamation cannot fire and the dead hot slots around them are
/// exactly what the per-size-class free lists exist to recycle.
const CHURN_COLD: usize = 2048;
const CHURN_COLD_EVERY: usize = 16;
/// Collection cadence — the safepoint-driven incremental GC that feeds
/// the free lists. Identical for both modes, so the measured difference
/// is the reuse policy alone.
const CHURN_GC_EVERY: usize = 2048;

/// Result of one [`run_alloc_churn`] measurement.
#[derive(Debug, Clone, Copy)]
pub struct ChurnResult {
    /// Wall time for the whole churn loop.
    pub elapsed: Duration,
    /// Maximum simultaneously non-free regions observed (the heap's
    /// high-water footprint).
    pub high_water_regions: usize,
    /// Full (stop-the-world) collections the run needed.
    pub gc_full: u64,
    /// Allocations served from the free lists.
    pub reused: u64,
}

/// The `alloc_churn` cell: del-heavy steady-state churn on one raw
/// `Pjh`. Every op allocates a small instance into a fixed-size hot
/// window, killing the object it displaces; every `CHURN_COLD_EVERY`th
/// op allocates into the long-lived cold set instead, so each region
/// keeps a sprinkling of survivors and can never be reclaimed
/// wholesale. An incremental collection runs every `CHURN_GC_EVERY`
/// ops. With `reuse` the allocator serves the next
/// hot generation out of the per-size-class free lists the GC just
/// harvested, so the bump top — and with it the region footprint —
/// stops growing; bump-only keeps consuming fresh regions and must
/// full-compact the whole heap to continue once they run out.
pub fn run_alloc_churn(ops: usize, reuse: bool) -> ChurnResult {
    use espresso::heap::PjhError;
    use espresso::object::{Ref, Space};
    let dev = NvmDevice::new(NvmConfig::with_size(CHURN_HEAP_BYTES));
    let config = PjhConfig {
        alloc_reuse: reuse,
        ..PjhConfig::default()
    };
    let mut heap = Pjh::create(dev, config).expect("pjh");
    let kid = heap
        .register_instance(
            "Churn",
            vec![FieldDesc::prim("a"), FieldDesc::reference("next")],
        )
        .expect("klass");
    let mut hot = vec![Ref::NULL; CHURN_HOT];
    let mut cold = vec![Ref::NULL; CHURN_COLD];
    // Collect with both live sets as extra roots, then remap the refs a
    // compacting cycle moved (incremental cycles never move anything).
    let collect = |heap: &mut Pjh, hot: &mut [Ref], cold: &mut [Ref]| {
        let roots: Vec<_> = hot
            .iter()
            .chain(cold.iter())
            .copied()
            .filter(|r| !r.is_null())
            .collect();
        let report = heap.gc(&roots).expect("gc");
        if !report.relocations.is_empty() {
            for w in hot.iter_mut().chain(cold.iter_mut()) {
                if let Some(&to) = report.relocations.get(&w.addr()) {
                    *w = Ref::new(Space::Persistent, to);
                }
            }
        }
    };
    let mut high_water = 0usize;
    let t0 = Instant::now();
    for i in 0..ops {
        if i % CHURN_GC_EVERY == CHURN_GC_EVERY - 1 {
            collect(&mut heap, &mut hot, &mut cold);
        }
        let o = loop {
            match heap.alloc_instance(kid) {
                Ok(o) => break o,
                Err(PjhError::HeapFull { .. }) => collect(&mut heap, &mut hot, &mut cold),
                Err(e) => panic!("churn alloc: {e}"),
            }
        };
        heap.set_field(o, 0, i as u64);
        heap.flush_object(o);
        if i % CHURN_COLD_EVERY == 0 {
            cold[(i / CHURN_COLD_EVERY) % CHURN_COLD] = o;
        } else {
            hot[i % CHURN_HOT] = o;
        }
        if i % 64 == 0 {
            let s = heap.heap_stats();
            high_water = high_water.max(s.total_regions - s.free_regions);
        }
    }
    let elapsed = t0.elapsed();
    let s = heap.heap_stats();
    high_water = high_water.max(s.total_regions - s.free_regions);
    ChurnResult {
        elapsed,
        high_water_regions: high_water,
        gc_full: s.gc_full_count,
        reused: s.reused_slots,
    }
}

// ---- Figure 18: heap loading ----

/// Builds a heap image with `objects` instances spread over `klasses`
/// classes, returning the persisted image bytes.
pub fn build_loading_image(objects: usize, klasses: usize) -> Vec<u8> {
    let bytes = (objects * 48 + (8 << 20)).next_power_of_two();
    let dev = NvmDevice::new(NvmConfig::with_size(bytes));
    let mut heap = Pjh::create(dev.clone(), PjhConfig::default()).expect("pjh");
    let kids: Vec<_> = (0..klasses.max(1))
        .map(|k| {
            heap.register_instance(
                &format!("LoadTest{k}"),
                vec![FieldDesc::prim("a"), FieldDesc::reference("b")],
            )
            .expect("klass")
        })
        .collect();
    let mut prev = espresso::object::Ref::NULL;
    for i in 0..objects {
        let o = heap.alloc_instance(kids[i % kids.len()]).expect("alloc");
        heap.set_field(o, 0, i as u64);
        heap.set_field_ref(o, 1, prev).expect("safety off");
        heap.flush_object(o);
        prev = o;
    }
    heap.set_root("chain", prev).expect("root");
    dev.snapshot_persisted()
}

/// Loads an image under the given safety level, returning the load time.
pub fn measure_load(image: &[u8], safety: SafetyLevel) -> Duration {
    let dev = NvmDevice::new(NvmConfig::with_size(image.len()));
    dev.write_bytes(0, image);
    dev.persist(0, image.len());
    let t0 = Instant::now();
    let (_heap, _report) = Pjh::load(
        dev,
        LoadOptions {
            safety,
            ..LoadOptions::default()
        },
    )
    .expect("load");
    t0.elapsed()
}

// ---- §6.4: recoverable-GC pause ----

/// Result of one GC-pause measurement.
#[derive(Debug, Clone, Copy)]
pub struct GcPause {
    /// Wall-clock pause.
    pub wall: Duration,
    /// Simulated NVM time (includes flush/fence costs).
    pub sim_ns: u64,
    /// Cache-line flushes issued by the collection.
    pub flushes: u64,
}

/// Populates a heap with `live` live objects and `garbage` dead ones, then
/// collects it, with crash-consistency flushes on or off.
///
/// Wall time is the paper's comparator (their pause includes all the CPU
/// work of marking/summarizing/copying, which dwarfs individual
/// `clflush`es); simulated time charges the full NVM latency model and so
/// over-weights flushes. The figure binary reports both.
pub fn measure_gc_pause(live: usize, garbage: usize, recoverable: bool) -> GcPause {
    let bytes = ((live + garbage) * 64 + (16 << 20)).next_power_of_two();
    let dev = NvmDevice::new(NvmConfig {
        size: bytes,
        latency: LatencyModel::nvm(),
    });
    let config = PjhConfig {
        recoverable_gc: recoverable,
        ..PjhConfig::default()
    };
    let mut heap = Pjh::create(dev.clone(), config).expect("pjh");
    let kid = heap
        .register_instance(
            "PauseTest",
            vec![FieldDesc::prim("a"), FieldDesc::reference("next")],
        )
        .expect("klass");
    let mut head = espresso::object::Ref::NULL;
    for i in 0..(live + garbage) {
        let o = heap.alloc_instance(kid).expect("alloc");
        if i % (live + garbage).div_ceil(live.max(1)) == 0 {
            heap.set_field_ref(o, 1, head).expect("safety off");
            head = o;
        }
    }
    heap.set_root("live", head).expect("root");
    dev.reset_stats();
    let t0 = Instant::now();
    let report = heap.gc(&[]).expect("gc");
    GcPause {
        wall: t0.elapsed(),
        sim_ns: report.pause_sim_ns,
        flushes: report.pause_flushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_micro_cell_runs_on_both_systems() {
        for dtype in DataType::ALL {
            for op in MicroOp::ALL {
                let a = run_pjh_micro(dtype, op, 50);
                let b = run_pcj_micro(dtype, op, 50);
                assert!(a > Duration::ZERO && b > Duration::ZERO, "{dtype:?}/{op:?}");
            }
        }
    }

    #[test]
    fn loading_image_roundtrips() {
        let image = build_loading_image(500, 10);
        let ug = measure_load(&image, SafetyLevel::UserGuaranteed);
        let zero = measure_load(&image, SafetyLevel::Zeroing);
        assert!(ug > Duration::ZERO && zero > Duration::ZERO);
    }

    #[test]
    fn shard_scaling_runs_at_every_width() {
        for shards in [1, 2, 4] {
            assert!(run_shard_scaling(shards, 64) > Duration::ZERO);
        }
    }

    #[test]
    fn churn_reuse_bounds_the_heap_footprint() {
        let reuse = run_alloc_churn(6000, true);
        let bump = run_alloc_churn(6000, false);
        assert!(reuse.reused > 0, "reuse run never touched the free lists");
        assert_eq!(bump.reused, 0, "bump-only run must not reuse");
        assert!(
            reuse.high_water_regions <= bump.high_water_regions,
            "reuse footprint {} exceeded bump-only {}",
            reuse.high_water_regions,
            bump.high_water_regions
        );
    }

    #[test]
    fn gc_pause_measures_flushes() {
        let with = measure_gc_pause(200, 800, true);
        let without = measure_gc_pause(200, 800, false);
        assert!(with.flushes > without.flushes);
    }
}
