//! Plain-text table rendering for the figure binaries.

/// Prints an aligned table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", render(&headers));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(f: f64) -> String {
    format!("{:5.1}%", f * 100.0)
}

/// Formats a speedup ratio.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_ratio_format() {
        assert_eq!(pct(0.4192), " 41.9%");
        assert_eq!(ratio(10.0, 4.0), "2.50x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }
}
