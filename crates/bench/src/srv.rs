//! Server throughput cell: drives a fresh in-process espresso-server
//! (4 shards, temp heap) over real TCP with the loadgen harness, at 1
//! and N connections. The gated number is the N-connection over
//! 1-connection ops/s ratio — cross-connection group commit is what
//! makes it exceed 1: concurrent writers share epoch seals, so per-op
//! durability cost falls with concurrency, while a single connection
//! pays a full seal round-trip per write.

use std::time::Duration;

use espresso_server::load::{run_load, LoadConfig, LoadReport};
use espresso_server::server::{Server, ServerConfig, ServerHandle};

/// Boots the benchmark server configuration: 4 shards on a temp heap,
/// generous commit timeout (the bench must measure throughput, not
/// backpressure refusals).
fn start_server() -> ServerHandle {
    Server::start(ServerConfig {
        shards: 4,
        shard_bytes: 32 << 20,
        commit_timeout: Duration::from_secs(30),
        max_pending: 1 << 20,
        ..ServerConfig::default()
    })
    .expect("start bench server")
}

/// Runs `ops` total operations (50/50 read/write mix, zipfian keys)
/// over `conns` connections against a fresh server; returns the load
/// report (ops/s, p50/p99).
///
/// # Panics
///
/// If the server fails to start, a connection fails, or the run sees
/// errors/BUSY — a throughput cell measured under refusals would be
/// meaningless, so it fails loudly instead.
pub fn run_server_throughput(conns: usize, ops: usize) -> LoadReport {
    let handle = start_server();
    let report = run_load(&LoadConfig {
        addr: handle.addr(),
        conns,
        ops,
        read_pct: 50,
        keys_per_conn: 256,
        value_len: 64,
        zipf_theta: 0.99,
        check: false,
        ..LoadConfig::default()
    })
    .expect("loadgen run");
    handle.stop_and_wait();
    assert_eq!(
        report.errors, 0,
        "server bench saw error responses; cell is invalid"
    );
    assert_eq!(
        report.busy, 0,
        "server bench hit backpressure; raise max_pending/timeout"
    );
    report
}
