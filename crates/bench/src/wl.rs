//! Workload-replay cell: one recorded trace (mixed get/set/del/field/txn
//! ops, uniform keys, periodic commits) replayed through the workload
//! harness's backend adapters. The gated numbers are ratios of raw-word
//! replay time over each richer backend's time on the *same trace* —
//! the typed-session, sharded-heap, and minidb overheads relative to
//! the raw `Pjh` word API, measured end-to-end through a realistic op
//! stream instead of a single-op microbench.

use std::time::Duration;

use espresso_workload::replay::replay;
use espresso_workload::{make_backend, record, BackendKind, OpMix, Scenario, Skew, Trace};

/// The bench scenario: deterministic by construction (fixed seed, no
/// wall-clock inputs), sized by `ops`, shaped like `workloads/mixed_small.json`.
pub fn bench_trace(ops: u64) -> Trace {
    record(&Scenario {
        name: "bench_mixed".into(),
        key_space: 64,
        ops,
        seed: 0xBE7C_4A5E,
        value_len: (8, 48),
        mix: OpMix {
            get: 35,
            set: 30,
            del: 5,
            fget: 10,
            fset: 12,
            txn: 8,
            scan: 0,
        },
        skew: Skew::Uniform,
        commit_every: 200,
        faults: None,
    })
}

/// Replays `trace` on a fresh backend of `kind`, returning wall-clock
/// for the op stream (the final digest check is included — it is part
/// of what every replay pays).
///
/// # Panics
///
/// If the backend cannot be built or the replay errors: a timing cell
/// over a failed replay would be meaningless.
pub fn run_workload_replay(kind: BackendKind, trace: &Trace) -> Duration {
    let mut backend = make_backend(kind, trace.key_space).expect("build backend");
    let report = replay(backend.as_mut(), trace, None).expect("replay trace");
    report.elapsed
}
