//! Generic object arrays ("Generic" in Figure 15).

use espresso_core::PjhError;
use espresso_object::Ref;

use crate::PStore;

/// A persistent generic array of object references.
///
/// The counterpart of PCJ's `PersistentArray<T>`: elements are references
/// into the persistent heap (boxed values, tuples, other arrays, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PArray {
    arr: Ref,
}

impl PArray {
    /// Allocates a null-filled array of `len` references to `elem_class`
    /// elements.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn pnew(store: &mut PStore, elem_class: &str, len: usize) -> Result<PArray, PjhError> {
        let kid = store.heap_mut().register_obj_array(elem_class);
        let arr = store.alloc_array(kid, len)?;
        Ok(PArray { arr })
    }

    /// Re-wraps an existing array reference.
    pub fn from_ref(arr: Ref) -> PArray {
        PArray { arr }
    }

    /// The underlying array reference.
    pub fn as_ref(&self) -> Ref {
        self.arr
    }

    /// Element count.
    pub fn len(&self, store: &PStore) -> usize {
        store.heap().array_len(self.arr)
    }

    /// Whether the array is zero-length.
    pub fn is_empty(&self, store: &PStore) -> bool {
        self.len(store) == 0
    }

    /// Reads element `i`.
    pub fn get(&self, store: &PStore, i: usize) -> Ref {
        store.heap().array_get_ref(self.arr, i)
    }

    /// Transactionally writes element `i`.
    ///
    /// # Errors
    ///
    /// Heap or safety errors.
    pub fn set(&self, store: &mut PStore, i: usize, value: Ref) -> Result<(), PjhError> {
        store.transact(|s| s.array_set_ref(self.arr, i, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PLong;
    use espresso_core::{Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn store() -> PStore {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        PStore::new(Pjh::create(dev, PjhConfig::small()).unwrap()).unwrap()
    }

    #[test]
    fn generic_array_of_boxes() {
        let mut s = store();
        let arr = PArray::pnew(&mut s, "espresso.PLong", 8).unwrap();
        assert_eq!(arr.len(&s), 8);
        assert!(!arr.is_empty(&s));
        for i in 0..8 {
            let b = PLong::pnew(&mut s, i as u64 * 100).unwrap();
            arr.set(&mut s, i, b.as_ref()).unwrap();
        }
        for i in 0..8 {
            let b = PLong::from_ref(arr.get(&s, i));
            assert_eq!(b.value(&s), i as u64 * 100);
        }
    }

    #[test]
    fn elements_start_null() {
        let mut s = store();
        let arr = PArray::pnew(&mut s, "espresso.PLong", 3).unwrap();
        assert!(arr.get(&s, 0).is_null());
    }

    #[test]
    fn set_survives_gc_via_root() {
        let mut s = store();
        let arr = PArray::pnew(&mut s, "espresso.PLong", 2).unwrap();
        let b = PLong::pnew(&mut s, 9).unwrap();
        arr.set(&mut s, 0, b.as_ref()).unwrap();
        s.heap_mut().set_root("arr", arr.as_ref()).unwrap();
        s.gc(&[]).unwrap();
        let arr = PArray::from_ref(s.heap().get_root("arr").unwrap());
        let b = PLong::from_ref(arr.get(&s, 0));
        assert_eq!(b.value(&s), 9);
    }
}
