//! Boxed primitive — the `PersistentLong` equivalent ("Primitive" in
//! Figure 15).

use espresso_core::PjhError;
use espresso_object::{Ref, Schema};

use crate::PStore;

const CLASS: &str = "espresso.PLong";

/// The declared layout, registered (and validated against the persisted
/// fingerprint) through the typed schema path.
fn long_schema() -> Schema {
    Schema::builder(CLASS).u64_field("value").build()
}

/// A persistent boxed 64-bit value.
///
/// The PJH analogue of PCJ's `PersistentLong`: a two-word header plus one
/// payload word, allocated with `pnew` and updated under the undo log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PLong {
    obj: Ref,
}

impl PLong {
    /// Allocates a boxed value in the persistent heap.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn pnew(store: &mut PStore, value: u64) -> Result<PLong, PjhError> {
        let kid = store.ensure_schema_klass(CLASS, long_schema)?;
        let obj = store.alloc_instance(kid)?;
        // A fresh box is unreachable until the caller publishes it, so its
        // initialization needs no undo log — just a persisted store.
        let mut heap = store.heap_mut();
        heap.set_field(obj, 0, value);
        heap.flush_field(obj, 0);
        Ok(PLong { obj })
    }

    /// Re-wraps an existing reference (e.g. one fetched from a root).
    pub fn from_ref(obj: Ref) -> PLong {
        PLong { obj }
    }

    /// The underlying object reference.
    pub fn as_ref(&self) -> Ref {
        self.obj
    }

    /// Reads the boxed value.
    pub fn value(&self, store: &PStore) -> u64 {
        store.heap().field(self.obj, 0)
    }

    /// Transactionally replaces the boxed value.
    ///
    /// # Errors
    ///
    /// Heap errors.
    pub fn set(&self, store: &mut PStore, value: u64) -> Result<(), PjhError> {
        store.transact(|s| {
            s.set_field(self.obj, 0, value);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn store() -> PStore {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        PStore::new(Pjh::create(dev, PjhConfig::small()).unwrap()).unwrap()
    }

    #[test]
    fn box_roundtrip() {
        let mut s = store();
        let b = PLong::pnew(&mut s, 42).unwrap();
        assert_eq!(b.value(&s), 42);
        b.set(&mut s, 43).unwrap();
        assert_eq!(b.value(&s), 43);
    }

    #[test]
    fn many_boxes_like_the_pcj_breakdown_workload() {
        let mut s = store();
        let boxes: Vec<PLong> = (0..1000).map(|i| PLong::pnew(&mut s, i).unwrap()).collect();
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(b.value(&s), i as u64);
        }
    }

    #[test]
    fn from_ref_roundtrip() {
        let mut s = store();
        let b = PLong::pnew(&mut s, 7).unwrap();
        let again = PLong::from_ref(b.as_ref());
        assert_eq!(again.value(&s), 7);
    }
}
