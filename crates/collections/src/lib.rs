//! Persistent data structures atop PJH, mirroring the PCJ collection
//! surface used by the Figure 15 microbenchmarks (§6.2).
//!
//! The paper's comparison implements "similar data structures atop our
//! PJH" and adds ACID semantics "by providing a simple undo log to make a
//! fair comparison" — exactly what this crate does. Every collection is a
//! plain object graph in the persistent heap (on-heap design), and every
//! mutating operation runs inside a [`PStore`] transaction backed by the
//! heap's own NVM undo log (`espresso_core`'s unified transaction engine,
//! also reachable as `HeapHandle::txn`). A `PStore` is a thin view over a
//! shared `HeapHandle`, so collections coexist with any other session
//! traffic on the same heap.
//!
//! Types (matching the five Figure 15 data-type columns):
//!
//! * [`PLong`] — boxed primitive ("Primitive")
//! * [`PArray`] — generic object array ("Generic")
//! * [`PTuple`] — fixed-arity tuple ("Tuple")
//! * [`PArrayList`] — growable list ("ArrayList")
//! * [`PHashMap`] — bucketed hash map ("Hashmap")
//!
//! # Example
//!
//! ```
//! use espresso_collections::{PArrayList, PStore};
//! use espresso_core::{HeapManager, PjhConfig};
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let heap = mgr.create("app", 8 << 20, PjhConfig::small())?;
//! let mut store = PStore::open(&heap)?;
//! let mut list = PArrayList::pnew(&mut store, 4)?;
//! list.push(&mut store, 10)?;
//! list.push(&mut store, 20)?;
//! assert_eq!(list.get(&store, 1), Some(20));
//! heap.commit_sync()?; // durability barrier for everything above
//! # Ok(())
//! # }
//! ```

mod array;
mod boxed;
mod list;
mod map;
mod store;
mod tuple;

pub use array::PArray;
pub use boxed::PLong;
pub use list::PArrayList;
pub use map::PHashMap;
pub use store::PStore;
pub use tuple::PTuple;
