//! Persistent data structures atop PJH, mirroring the PCJ collection
//! surface used by the Figure 15 microbenchmarks (§6.2).
//!
//! The paper's comparison implements "similar data structures atop our
//! PJH" and adds ACID semantics "by providing a simple undo log to make a
//! fair comparison" — exactly what this crate does. Every collection is a
//! plain object graph in the persistent heap (on-heap design), and every
//! mutating operation runs inside a [`PStore`] transaction whose undo log
//! also lives in NVM.
//!
//! Types (matching the five Figure 15 data-type columns):
//!
//! * [`PLong`] — boxed primitive ("Primitive")
//! * [`PArray`] — generic object array ("Generic")
//! * [`PTuple`] — fixed-arity tuple ("Tuple")
//! * [`PArrayList`] — growable list ("ArrayList")
//! * [`PHashMap`] — bucketed hash map ("Hashmap")
//!
//! # Example
//!
//! ```
//! use espresso_collections::{PArrayList, PStore};
//! use espresso_core::{Pjh, PjhConfig};
//! use espresso_nvm::{NvmConfig, NvmDevice};
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
//! let pjh = Pjh::create(dev, PjhConfig::small())?;
//! let mut store = PStore::new(pjh)?;
//! let mut list = PArrayList::pnew(&mut store, 4)?;
//! list.push(&mut store, 10)?;
//! list.push(&mut store, 20)?;
//! assert_eq!(list.get(&store, 1), Some(20));
//! # Ok(())
//! # }
//! ```

mod array;
mod boxed;
mod list;
mod map;
mod store;
mod tuple;

pub use array::PArray;
pub use boxed::PLong;
pub use list::PArrayList;
pub use map::PHashMap;
pub use store::PStore;
pub use tuple::PTuple;
