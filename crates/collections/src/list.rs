//! Growable list of 64-bit values ("ArrayList" in Figure 15).

use espresso_core::PjhError;
use espresso_object::{Ref, Schema};

use crate::PStore;

const CLASS: &str = "espresso.PArrayList";
// Raw field indices for the hot element path (the documented low-level
// escape hatch); the layout itself is declared and validated by
// `list_schema` below.
const F_SIZE: usize = 0;
const F_ELEMS: usize = 1;

fn list_schema() -> Schema {
    Schema::builder(CLASS)
        .u64_field("size")
        .array_field("elems")
        .build()
}

/// A persistent growable array list of 64-bit values.
///
/// Layout mirrors `java.util.ArrayList`: a small header object (`size`,
/// `elems`) plus a backing primitive array that doubles on overflow. All
/// mutations run under the store's undo log, so a crash mid-`push` never
/// leaves a half-visible element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PArrayList {
    obj: Ref,
}

impl PArrayList {
    /// Allocates an empty list with the given initial capacity.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn pnew(store: &mut PStore, capacity: usize) -> Result<PArrayList, PjhError> {
        let kid = store.ensure_schema_klass(CLASS, list_schema)?;
        let arr_kid = store.heap_mut().register_prim_array();
        let obj = store.alloc_instance(kid)?;
        let elems = store.alloc_array(arr_kid, capacity.max(1))?;
        // The header is unreachable until the caller publishes it, so the
        // initial stores skip the undo log; `size` is already zero from
        // the region's persisted zero-fill.
        let mut heap = store.heap_mut();
        heap.set_field_ref(obj, F_ELEMS, elems)?;
        heap.flush_field(obj, F_ELEMS);
        Ok(PArrayList { obj })
    }

    /// Re-wraps an existing list reference.
    pub fn from_ref(obj: Ref) -> PArrayList {
        PArrayList { obj }
    }

    /// The underlying header object.
    pub fn as_ref(&self) -> Ref {
        self.obj
    }

    /// Number of elements.
    pub fn len(&self, store: &PStore) -> usize {
        store.heap().field(self.obj, F_SIZE) as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self, store: &PStore) -> bool {
        self.len(store) == 0
    }

    /// Current backing-array capacity.
    pub fn capacity(&self, store: &PStore) -> usize {
        let h = store.heap();
        h.array_len(h.field_ref(self.obj, F_ELEMS))
    }

    /// Reads element `i`, or `None` past the end.
    pub fn get(&self, store: &PStore, i: usize) -> Option<u64> {
        let h = store.heap();
        if i >= h.field(self.obj, F_SIZE) as usize {
            return None;
        }
        let elems = h.field_ref(self.obj, F_ELEMS);
        Some(h.array_get(elems, i))
    }

    /// Transactionally overwrites element `i`.
    ///
    /// # Errors
    ///
    /// Heap errors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&self, store: &mut PStore, i: usize, value: u64) -> Result<(), PjhError> {
        let elems = {
            let h = store.heap();
            assert!(
                i < h.field(self.obj, F_SIZE) as usize,
                "index {i} out of bounds"
            );
            h.field_ref(self.obj, F_ELEMS)
        };
        store.transact(|s| {
            s.array_set(elems, i, value);
            Ok(())
        })
    }

    /// Transactionally appends `value`, growing the backing array if full.
    ///
    /// # Errors
    ///
    /// Allocation errors while growing.
    pub fn push(&self, store: &mut PStore, value: u64) -> Result<(), PjhError> {
        let (size, elems, cap) = {
            let h = store.heap();
            let size = h.field(self.obj, F_SIZE) as usize;
            let elems = h.field_ref(self.obj, F_ELEMS);
            (size, elems, h.array_len(elems))
        };
        store.transact(|s| {
            let elems = if size == cap {
                // Grow: the fresh array is invisible until the logged
                // pointer store below, so plain stores suffice for the copy.
                let arr_kid = s.heap_mut().register_prim_array();
                let bigger = s.alloc_array(arr_kid, cap * 2)?;
                for i in 0..size {
                    let v = s.heap().array_get(elems, i);
                    s.heap_mut().array_set(bigger, i, v);
                }
                s.heap().flush_object(bigger);
                s.set_field_ref(self.obj, F_ELEMS, bigger)?;
                bigger
            } else {
                elems
            };
            s.array_set(elems, size, value);
            s.set_field(self.obj, F_SIZE, (size + 1) as u64);
            Ok(())
        })
    }

    /// Transactionally removes and returns the last element.
    ///
    /// # Errors
    ///
    /// Heap errors.
    pub fn pop(&self, store: &mut PStore) -> Result<Option<u64>, PjhError> {
        let size = self.len(store);
        if size == 0 {
            return Ok(None);
        }
        let elems = store.heap().field_ref(self.obj, F_ELEMS);
        let value = store.heap().array_get(elems, size - 1);
        store.transact(|s| {
            s.set_field(self.obj, F_SIZE, (size - 1) as u64);
            Ok(())
        })?;
        Ok(Some(value))
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self, store: &PStore) -> Vec<u64> {
        let h = store.heap();
        let len = h.field(self.obj, F_SIZE) as usize;
        let elems = h.field_ref(self.obj, F_ELEMS);
        (0..len).map(|i| h.array_get(elems, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{LoadOptions, Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn store() -> (NvmDevice, PStore) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let s = PStore::new(Pjh::create(dev.clone(), PjhConfig::small()).unwrap()).unwrap();
        (dev, s)
    }

    #[test]
    fn push_get_set_pop() {
        let (_dev, mut s) = store();
        let l = PArrayList::pnew(&mut s, 2).unwrap();
        assert!(l.is_empty(&s));
        for i in 0..10 {
            l.push(&mut s, i * 2).unwrap();
        }
        assert_eq!(l.len(&s), 10);
        assert_eq!(l.get(&s, 4), Some(8));
        assert_eq!(l.get(&s, 10), None);
        l.set(&mut s, 4, 99).unwrap();
        assert_eq!(l.get(&s, 4), Some(99));
        assert_eq!(l.pop(&mut s).unwrap(), Some(18));
        assert_eq!(l.len(&s), 9);
    }

    #[test]
    fn growth_doubles_capacity() {
        let (_dev, mut s) = store();
        let l = PArrayList::pnew(&mut s, 2).unwrap();
        assert_eq!(l.capacity(&s), 2);
        for i in 0..5 {
            l.push(&mut s, i).unwrap();
        }
        assert_eq!(l.capacity(&s), 8);
        assert_eq!(l.to_vec(&s), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn committed_list_survives_crash() {
        let (dev, mut s) = store();
        let l = PArrayList::pnew(&mut s, 2).unwrap();
        for i in 0..20 {
            l.push(&mut s, i * i).unwrap();
        }
        s.heap_mut().set_root("list", l.as_ref()).unwrap();
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let l2 = PArrayList::from_ref(s2.heap().get_root("list").unwrap());
        assert_eq!(l2.to_vec(&s2), (0..20).map(|i| i * i).collect::<Vec<u64>>());
    }

    #[test]
    fn torn_push_rolls_back() {
        let (dev, mut s) = store();
        let l = PArrayList::pnew(&mut s, 4).unwrap();
        l.push(&mut s, 1).unwrap();
        s.heap_mut().set_root("list", l.as_ref()).unwrap();
        // Begin a push but crash before it commits: allow the element
        // store but not the size-commit reset flush. A push issues several
        // flushes; crash one before the end.
        let f0 = dev.stats().line_flushes;
        l.push(&mut s, 2).unwrap();
        let per_push = dev.stats().line_flushes - f0;
        dev.schedule_crash_after_line_flushes(per_push - 1);
        l.push(&mut s, 3).unwrap();
        dev.recover();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let l2 = PArrayList::from_ref(s2.heap().get_root("list").unwrap());
        let v = l2.to_vec(&s2);
        assert!(
            v == vec![1, 2] || v == vec![1, 2, 3],
            "atomic push, got {v:?}"
        );
    }

    #[test]
    fn pop_on_empty() {
        let (_dev, mut s) = store();
        let l = PArrayList::pnew(&mut s, 1).unwrap();
        assert_eq!(l.pop(&mut s).unwrap(), None);
    }
}
