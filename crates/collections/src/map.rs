//! Bucketed hash map ("Hashmap" in Figure 15).

use espresso_core::PjhError;
use espresso_object::{Ref, Schema};

use crate::PStore;

const MAP_CLASS: &str = "espresso.PHashMap";
const ENTRY_CLASS: &str = "espresso.PHashMap$Entry";
// Raw field indices for the chain-walk hot path (the documented
// low-level escape hatch); the layouts are declared and validated by the
// schemas below.
const M_SIZE: usize = 0;
const M_BUCKETS: usize = 1;
const E_KEY: usize = 0;
const E_VALUE: usize = 1;
const E_NEXT: usize = 2;

fn map_schema() -> Schema {
    Schema::builder(MAP_CLASS)
        .u64_field("size")
        .ref_array_named("buckets", ENTRY_CLASS)
        .build()
}

fn entry_schema() -> Schema {
    Schema::builder(ENTRY_CLASS)
        .u64_field("key")
        .u64_field("value")
        .ref_named("next", ENTRY_CLASS)
        .build()
}

fn bucket_of(key: u64, buckets: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % buckets
}

/// A persistent chained hash map from `u64` keys to `u64` values.
///
/// The PJH analogue of PCJ's `PersistentHashMap`: a header object, a
/// bucket array of entry-list heads, and linked `Entry` objects — all
/// ordinary persistent-heap objects traced by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PHashMap {
    obj: Ref,
}

impl PHashMap {
    /// Allocates an empty map with a fixed bucket count.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn pnew(store: &mut PStore, buckets: usize) -> Result<PHashMap, PjhError> {
        let kid = store.ensure_schema_klass(MAP_CLASS, map_schema)?;
        store.ensure_schema_klass(ENTRY_CLASS, entry_schema)?;
        let bucket_kid = store.heap_mut().register_obj_array(ENTRY_CLASS);
        let obj = store.alloc_instance(kid)?;
        let arr = store.alloc_array(bucket_kid, buckets.max(1))?;
        // Unreachable until published: initialize without the undo log
        // (`size` is already zero from the region's persisted zero-fill).
        let mut heap = store.heap_mut();
        heap.set_field_ref(obj, M_BUCKETS, arr)?;
        heap.flush_field(obj, M_BUCKETS);
        Ok(PHashMap { obj })
    }

    /// Re-wraps an existing map reference.
    pub fn from_ref(obj: Ref) -> PHashMap {
        PHashMap { obj }
    }

    /// The underlying header object.
    pub fn as_ref(&self) -> Ref {
        self.obj
    }

    /// Number of entries.
    pub fn len(&self, store: &PStore) -> usize {
        store.heap().field(self.obj, M_SIZE) as usize
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self, store: &PStore) -> bool {
        self.len(store) == 0
    }

    fn find(&self, store: &PStore, key: u64) -> (Ref, usize, Option<Ref>) {
        // One guard for the whole chain walk (reads only).
        let h = store.heap();
        let buckets = h.field_ref(self.obj, M_BUCKETS);
        let b = bucket_of(key, h.array_len(buckets));
        let mut cur = h.array_get_ref(buckets, b);
        while !cur.is_null() {
            if h.field(cur, E_KEY) == key {
                return (buckets, b, Some(cur));
            }
            cur = h.field_ref(cur, E_NEXT);
        }
        (buckets, b, None)
    }

    /// Looks up `key`.
    pub fn get(&self, store: &PStore, key: u64) -> Option<u64> {
        let (_, _, entry) = self.find(store, key);
        entry.map(|e| store.heap().field(e, E_VALUE))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, store: &PStore, key: u64) -> bool {
        self.find(store, key).2.is_some()
    }

    /// Transactionally inserts or updates; returns the previous value.
    ///
    /// # Errors
    ///
    /// Allocation errors for new entries.
    pub fn put(&self, store: &mut PStore, key: u64, value: u64) -> Result<Option<u64>, PjhError> {
        let (buckets, b, entry) = self.find(store, key);
        match entry {
            Some(e) => {
                let old = store.heap().field(e, E_VALUE);
                store.transact(|s| {
                    s.set_field(e, E_VALUE, value);
                    Ok(())
                })?;
                Ok(Some(old))
            }
            None => {
                let size = self.len(store);
                let head = store.heap().array_get_ref(buckets, b);
                let ekid = store.ensure_schema_klass(ENTRY_CLASS, entry_schema)?;
                store.transact(|s| {
                    let e = s.alloc_instance(ekid)?;
                    // New entry: invisible until the logged head store.
                    s.heap_mut().set_field(e, E_KEY, key);
                    s.heap_mut().set_field(e, E_VALUE, value);
                    s.heap_mut().set_field_ref(e, E_NEXT, head)?;
                    s.heap().flush_object(e);
                    s.array_set_ref(buckets, b, e)?;
                    s.set_field(self.obj, M_SIZE, (size + 1) as u64);
                    Ok(())
                })?;
                Ok(None)
            }
        }
    }

    /// Transactionally removes `key`; returns the removed value.
    ///
    /// # Errors
    ///
    /// Heap errors.
    pub fn remove(&self, store: &mut PStore, key: u64) -> Result<Option<u64>, PjhError> {
        let buckets = store.heap().field_ref(self.obj, M_BUCKETS);
        let b = bucket_of(key, store.heap().array_len(buckets));
        let mut prev = Ref::NULL;
        let mut cur = store.heap().array_get_ref(buckets, b);
        while !cur.is_null() {
            if store.heap().field(cur, E_KEY) == key {
                let value = store.heap().field(cur, E_VALUE);
                let next = store.heap().field_ref(cur, E_NEXT);
                let size = self.len(store);
                store.transact(|s| {
                    if prev.is_null() {
                        s.array_set_ref(buckets, b, next)?;
                    } else {
                        s.set_field_ref(prev, E_NEXT, next)?;
                    }
                    s.set_field(self.obj, M_SIZE, (size - 1) as u64);
                    Ok(())
                })?;
                return Ok(Some(value));
            }
            prev = cur;
            cur = store.heap().field_ref(cur, E_NEXT);
        }
        Ok(None)
    }

    /// All `(key, value)` pairs, unordered.
    pub fn entries(&self, store: &PStore) -> Vec<(u64, u64)> {
        let h = store.heap();
        let buckets = h.field_ref(self.obj, M_BUCKETS);
        let mut out = Vec::with_capacity(h.field(self.obj, M_SIZE) as usize);
        for b in 0..h.array_len(buckets) {
            let mut cur = h.array_get_ref(buckets, b);
            while !cur.is_null() {
                out.push((h.field(cur, E_KEY), h.field(cur, E_VALUE)));
                cur = h.field_ref(cur, E_NEXT);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{LoadOptions, Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};
    use std::collections::HashMap;

    fn store() -> (NvmDevice, PStore) {
        let dev = NvmDevice::new(NvmConfig::with_size(16 << 20));
        let s = PStore::new(Pjh::create(dev.clone(), PjhConfig::small()).unwrap()).unwrap();
        (dev, s)
    }

    #[test]
    fn put_get_update_remove() {
        let (_dev, mut s) = store();
        let m = PHashMap::pnew(&mut s, 8).unwrap();
        assert_eq!(m.put(&mut s, 1, 10).unwrap(), None);
        assert_eq!(m.put(&mut s, 2, 20).unwrap(), None);
        assert_eq!(m.get(&s, 1), Some(10));
        assert_eq!(m.put(&mut s, 1, 11).unwrap(), Some(10));
        assert_eq!(m.get(&s, 1), Some(11));
        assert_eq!(m.len(&s), 2);
        assert_eq!(m.remove(&mut s, 1).unwrap(), Some(11));
        assert_eq!(m.get(&s, 1), None);
        assert_eq!(m.remove(&mut s, 1).unwrap(), None);
        assert_eq!(m.len(&s), 1);
    }

    #[test]
    fn collisions_chain_correctly() {
        let (_dev, mut s) = store();
        let m = PHashMap::pnew(&mut s, 1).unwrap(); // everything collides
        for k in 0..50 {
            m.put(&mut s, k, k * 3).unwrap();
        }
        for k in 0..50 {
            assert_eq!(m.get(&s, k), Some(k * 3));
        }
        // Remove from the middle of the chain.
        m.remove(&mut s, 25).unwrap();
        assert_eq!(m.get(&s, 25), None);
        assert_eq!(m.get(&s, 24), Some(72));
        assert_eq!(m.len(&s), 49);
    }

    #[test]
    fn matches_std_hashmap_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (_dev, mut s) = store();
        let m = PHashMap::pnew(&mut s, 16).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..500 {
            let key = rng.gen_range(0..40);
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen_range(0..1000);
                    assert_eq!(m.put(&mut s, key, v).unwrap(), model.insert(key, v));
                }
                1 => assert_eq!(m.remove(&mut s, key).unwrap(), model.remove(&key)),
                _ => assert_eq!(m.get(&s, key), model.get(&key).copied()),
            }
            assert_eq!(m.len(&s), model.len());
        }
        let mut got = m.entries(&s);
        let mut want: Vec<(u64, u64)> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn map_survives_crash() {
        let (dev, mut s) = store();
        let m = PHashMap::pnew(&mut s, 4).unwrap();
        for k in 0..30 {
            m.put(&mut s, k, 1000 + k).unwrap();
        }
        s.heap_mut().set_root("map", m.as_ref()).unwrap();
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let m2 = PHashMap::from_ref(s2.heap().get_root("map").unwrap());
        for k in 0..30 {
            assert_eq!(m2.get(&s2, k), Some(1000 + k));
        }
    }

    #[test]
    fn map_survives_gc() {
        let (_dev, mut s) = store();
        let m = PHashMap::pnew(&mut s, 4).unwrap();
        for k in 0..20 {
            m.put(&mut s, k, k).unwrap();
        }
        s.heap_mut().set_root("map", m.as_ref()).unwrap();
        // Garbage, then collect.
        let lk = s.heap_mut().register_prim_array();
        for _ in 0..200 {
            s.alloc_array(lk, 16).unwrap();
        }
        s.gc(&[]).unwrap();
        let m = PHashMap::from_ref(s.heap().get_root("map").unwrap());
        for k in 0..20 {
            assert_eq!(m.get(&s, k), Some(k));
        }
        s.heap().verify_integrity().unwrap();
    }
}
