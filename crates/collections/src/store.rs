//! Transactional wrapper over PJH, now a thin view onto the heap's own
//! undo-log transaction engine.
//!
//! Historically `PStore` owned the heap and its own NVM undo log. The
//! log machinery lives in `espresso-core` today (`Pjh::txn_*`, shared
//! with `HeapHandle::txn`), and `PStore` is a compatibility surface for
//! the collections: it wraps a shared [`HeapHandle`], so the same heap
//! can simultaneously serve collections here and raw `txn` scopes
//! elsewhere, with one log and one set of ACID guarantees (§6.2).

use espresso_core::{HeapHandle, PjhError, ReadSession, WriteSession};
use espresso_object::{KlassId, Ref, Schema};

/// A persistent heap plus the heap's word-granular undo log, giving every
/// collection operation the same ACID guarantee PCJ provides (§6.2).
///
/// Construct it over a shared [`HeapHandle`] with [`PStore::open`], or
/// from a raw [`Pjh`](espresso_core::Pjh) (wrapped in an unmanaged
/// handle) with
/// [`PStore::new`] / [`PStore::attach`]. All clones and all other handles
/// to the same heap share one transaction state.
///
/// **Sharing semantics:** a `PStore` transaction acquires the heap lock
/// per operation, not for the whole `begin`…`commit` span, so a
/// transaction opened concurrently (by another `PStore` clone or a raw
/// `txn_begin`) *flattens into it* — exactly like this type's own nested
/// `begin`s — and an abort rolls back the whole flattened scope. That
/// makes `PStore` a single-session idiom: for a transaction that must be
/// isolated from other threads on the same heap, use `HeapHandle::txn`,
/// which holds the write lock for its entire scope.
#[derive(Debug, Clone)]
pub struct PStore {
    handle: HeapHandle,
}

impl PStore {
    /// Wraps a fresh heap (or anything convertible to a handle),
    /// allocating and publishing the undo log.
    ///
    /// # Errors
    ///
    /// Allocation or root-table errors publishing the log (surfaced here
    /// so the infallible `begin` can never fail later).
    pub fn new(heap: impl Into<HeapHandle>) -> Result<PStore, PjhError> {
        let handle = heap.into();
        handle.with_mut(|h| h.txn_prepare())?;
        Ok(PStore { handle })
    }

    /// Re-attaches to a reloaded heap, rolling back any transaction that
    /// was in flight when the crash hit.
    ///
    /// # Errors
    ///
    /// Device errors during rollback; log-publication errors.
    pub fn attach(heap: impl Into<HeapHandle>) -> Result<PStore, PjhError> {
        let handle = heap.into();
        handle.with_mut(|h| {
            h.txn_recover()?;
            h.txn_prepare()
        })?;
        Ok(PStore { handle })
    }

    /// Opens a store over a shared live handle (manager-loaded heaps have
    /// already run crash recovery).
    ///
    /// # Errors
    ///
    /// Log-publication errors.
    pub fn open(handle: &HeapHandle) -> Result<PStore, PjhError> {
        handle.with_mut(|h| h.txn_prepare())?;
        Ok(PStore {
            handle: handle.clone(),
        })
    }

    /// The shared handle this store operates through.
    pub fn handle(&self) -> &HeapHandle {
        &self.handle
    }

    /// A read-only session over the wrapped heap. Lock-free — it never
    /// blocks writers — but still do not hold it across a call that
    /// takes `&mut PStore` if you expect to observe that call's writes.
    pub fn heap(&self) -> ReadSession {
        self.handle.read()
    }

    /// Exclusive access to the wrapped heap (non-transactional). The
    /// session publishes a fresh read replica when dropped.
    pub fn heap_mut(&mut self) -> WriteSession<'_> {
        self.handle.write()
    }

    /// Begins a transaction; nested begins are flattened. Infallible:
    /// every constructor published the undo log up front.
    pub fn begin(&mut self) {
        self.handle
            .with_mut(|h| h.txn_begin())
            .expect("log published at construction");
    }

    /// Commits the innermost flattened transaction.
    pub fn commit(&mut self) {
        self.handle.with_mut(|h| h.txn_commit());
    }

    /// Aborts: applies the undo entries in reverse and truncates the log.
    pub fn abort(&mut self) {
        self.handle.with_mut(|h| h.txn_abort());
    }

    /// Runs `f` in a transaction (joining the current one if active).
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after aborting.
    pub fn transact<T>(
        &mut self,
        f: impl FnOnce(&mut PStore) -> Result<T, PjhError>,
    ) -> Result<T, PjhError> {
        self.begin();
        match f(self) {
            Ok(v) => {
                self.commit();
                Ok(v)
            }
            Err(e) => {
                self.abort();
                Err(e)
            }
        }
    }

    // ---- logged primitive operations used by the collections ----

    /// Logged, persisted field store.
    pub fn set_field(&mut self, obj: Ref, index: usize, value: u64) {
        self.handle.with_mut(|h| h.txn_set_field(obj, index, value));
    }

    /// Logged, persisted reference-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn set_field_ref(&mut self, obj: Ref, index: usize, value: Ref) -> Result<(), PjhError> {
        self.handle
            .with_mut(|h| h.txn_set_field_ref(obj, index, value))
    }

    /// Logged, persisted array store.
    pub fn array_set(&mut self, arr: Ref, i: usize, value: u64) {
        self.handle.with_mut(|h| h.txn_array_set(arr, i, value));
    }

    /// Logged, persisted array reference store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn array_set_ref(&mut self, arr: Ref, i: usize, value: Ref) -> Result<(), PjhError> {
        self.handle.with_mut(|h| h.txn_array_set_ref(arr, i, value))
    }

    /// Resolves the klass id for `name`, registering it with `fields()`
    /// on first use. Centralizes the probe-then-register idiom the
    /// collections' `pnew` constructors share — the read probe and the
    /// write registration are separate lock acquisitions, so callers
    /// never hold a read guard across the write-locking register path.
    ///
    /// # Errors
    ///
    /// [`espresso_core::PjhError::KlassLayoutMismatch`] on conflicting
    /// layouts.
    pub fn ensure_instance_klass(
        &mut self,
        name: &str,
        fields: impl FnOnce() -> Vec<espresso_object::FieldDesc>,
    ) -> Result<KlassId, PjhError> {
        match self.handle.with(|h| h.lookup_klass(name)) {
            Some(kid) => Ok(kid),
            None => self
                .handle
                .with_mut(|h| h.register_instance(name, fields())),
        }
    }

    /// Resolves the klass id for a schema-declared class, registering —
    /// and **validating** — `schema()` against the heap's persisted
    /// layout and fingerprint on first use (see `Pjh::register_schema`).
    /// The typed counterpart of
    /// [`ensure_instance_klass`](Self::ensure_instance_klass), with the
    /// same lock discipline: a read probe first, the write-locking
    /// registration only when the schema has not been validated this
    /// session.
    ///
    /// # Errors
    ///
    /// [`espresso_core::PjhError::KlassLayoutMismatch`] /
    /// [`espresso_core::PjhError::SchemaMismatch`] on layouts that
    /// disagree with what the heap persisted.
    pub fn ensure_schema_klass(
        &mut self,
        name: &str,
        schema: impl FnOnce() -> Schema,
    ) -> Result<KlassId, PjhError> {
        let probed = self.handle.with(|h| {
            h.schema_validated(name)
                .then(|| h.lookup_klass(name))
                .flatten()
        });
        match probed {
            Some(kid) => Ok(kid),
            None => self.handle.with_mut(|h| h.register_schema(&schema())),
        }
    }

    /// Allocation passthrough (new objects need no undo: they are
    /// unreachable until a logged pointer store publishes them).
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_instance(&mut self, kid: KlassId) -> Result<Ref, PjhError> {
        self.handle.with_mut(|h| h.alloc_instance(kid))
    }

    /// Array allocation passthrough.
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_array(&mut self, kid: KlassId, len: usize) -> Result<Ref, PjhError> {
        self.handle.with_mut(|h| h.alloc_array(kid, len))
    }

    /// Collects the persistent space; the caller supplies collection roots
    /// it holds privately (the log array and named roots are reachable via
    /// the name table already, and the heap re-points its own log after a
    /// compaction).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn gc(&mut self, extra_roots: &[Ref]) -> Result<espresso_core::GcReport, PjhError> {
        self.handle.with_mut(|h| h.gc(extra_roots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{LoadOptions, Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};
    use espresso_object::FieldDesc;

    fn store() -> (NvmDevice, PStore) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let pjh = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, PStore::new(pjh).unwrap())
    }

    fn point(s: &mut PStore) -> KlassId {
        s.heap_mut()
            .register_instance("Point", vec![FieldDesc::prim("x"), FieldDesc::prim("y")])
            .unwrap()
    }

    #[test]
    fn committed_writes_survive_crash() {
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 10);
            s.set_field(p, 1, 20);
            Ok(())
        })
        .unwrap();
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let p = s2.heap().get_root("p").unwrap();
        assert_eq!(s2.heap().field(p, 0), 10);
        assert_eq!(s2.heap().field(p, 1), 20);
    }

    #[test]
    fn abort_rolls_back() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 1);
            Ok(())
        })
        .unwrap();
        s.begin();
        s.set_field(p, 0, 99);
        s.set_field(p, 1, 99);
        s.abort();
        assert_eq!(s.heap().field(p, 0), 1);
        assert_eq!(s.heap().field(p, 1), 0);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_on_attach() {
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 7);
            Ok(())
        })
        .unwrap();
        // Torn transaction: both stores logged+applied, commit never runs.
        s.begin();
        s.set_field(p, 0, 1000);
        s.set_field(p, 1, 2000);
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let p = s2.heap().get_root("p").unwrap();
        assert_eq!(s2.heap().field(p, 0), 7, "rolled back to committed value");
        assert_eq!(s2.heap().field(p, 1), 0);
    }

    #[test]
    fn crash_sweep_mid_transaction_is_atomic() {
        // Whatever the crash point, attach() must observe either the old
        // or (after commit) the new state — never a mix for field 0/1
        // pairs written in one transaction: each individual logged store
        // is undone, so after rollback both fields return to their
        // pre-transaction values.
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 5);
            s.set_field(p, 1, 6);
            Ok(())
        })
        .unwrap();
        let base = dev.snapshot_persisted();
        // Count flushes of the next transaction.
        let f0 = dev.stats().line_flushes;
        s.transact(|s| {
            s.set_field(p, 0, 50);
            s.set_field(p, 1, 60);
            Ok(())
        })
        .unwrap();
        let per_tx = dev.stats().line_flushes - f0;
        for at in 0..=per_tx {
            let trial = NvmDevice::new(NvmConfig::with_size(dev.size()));
            trial.write_bytes(0, &base);
            trial.persist(0, base.len());
            let (heap, _) = Pjh::load(trial.clone(), LoadOptions::default()).unwrap();
            let mut st = PStore::attach(heap).unwrap();
            let p = st.heap().get_root("p").unwrap();
            trial.schedule_crash_after_line_flushes(at);
            st.transact(|s| {
                s.set_field(p, 0, 50);
                s.set_field(p, 1, 60);
                Ok(())
            })
            .unwrap();
            trial.recover();
            let (heap2, _) = Pjh::load(trial, LoadOptions::default()).unwrap();
            let s2 = PStore::attach(heap2).unwrap();
            let p2 = s2.heap().get_root("p").unwrap();
            let (x, y) = (s2.heap().field(p2, 0), s2.heap().field(p2, 1));
            assert!(
                (x, y) == (5, 6) || (x, y) == (50, 60),
                "crash after {at}/{per_tx} flushes left mixed state ({x},{y})"
            );
        }
    }

    #[test]
    fn nested_transactions_flatten() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.begin();
        s.set_field(p, 0, 1);
        s.begin();
        s.set_field(p, 1, 2);
        s.commit(); // inner: no effect yet
        s.commit(); // outer: commits all
        assert_eq!(s.heap().field(p, 0), 1);
        assert_eq!(s.heap().field(p, 1), 2);
    }

    #[test]
    fn gc_keeps_log_reachable() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        for _ in 0..100 {
            s.alloc_instance(k).unwrap();
        }
        s.gc(&[]).unwrap();
        // The log must still work after GC (it may have moved).
        let p = s.alloc_instance(k).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 3);
            Ok(())
        })
        .unwrap();
        assert_eq!(s.heap().field(p, 0), 3);
    }

    #[test]
    fn shares_one_txn_state_with_handle_scopes() {
        // The same heap serves a PStore and raw handle.txn scopes, with
        // one undo log behind both.
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let handle = HeapHandle::from_pjh(Pjh::create(dev, PjhConfig::small()).unwrap());
        let mut s = PStore::open(&handle).unwrap();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        handle
            .txn(|t| {
                t.set_field(p, 0, 41);
                Ok(())
            })
            .unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 42);
            Ok(())
        })
        .unwrap();
        assert_eq!(handle.with(|h| h.field(p, 0)), 42);
    }
}
