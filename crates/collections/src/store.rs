//! Transactional wrapper over PJH with an NVM-resident undo log.

use espresso_core::{Pjh, PjhError};
use espresso_nvm::CACHE_LINE;
use espresso_object::{KlassId, Ref, ARRAY_HEADER_WORDS, HEADER_WORDS, WORD};

/// Root name under which the undo log array is published.
const LOG_ROOT: &str = "espresso.collections.txlog";
/// Undo-log capacity in (address, old-value) entry pairs. Sized so the
/// log array (1 + 2 × entries elements) fits in the smallest supported
/// region (4 KiB = 512 words, 3 of which are the array header).
const LOG_ENTRIES: usize = 240;

/// A persistent heap plus a word-granular undo log, giving every
/// collection operation the same ACID guarantee PCJ provides (§6.2).
///
/// Log records are self-validating: a `(slot, old value)` pair is live
/// iff its slot word is non-zero (slots are virtual addresses, never 0).
/// Appending persists the pair in one call when it fits a cache line and
/// in old-then-slot order when it straddles two, so a record can never
/// become live with a torn old value. A store is performed and flushed
/// only after its record is durable; commit invalidates the used records
/// by zeroing their slot words (adjacent, so usually one flush), and
/// [`PStore::attach`] re-zeroes the whole log, so every transaction
/// starts from an all-zero persisted log. If a crash leaves a live record
/// prefix, attach rolls it back in reverse.
#[derive(Debug)]
pub struct PStore {
    heap: Pjh,
    log: Ref,
    active: bool,
    depth: u32,
    entries: usize,
}

impl PStore {
    /// Wraps a fresh heap, allocating and publishing the undo log.
    ///
    /// # Errors
    ///
    /// Allocation or root-table errors.
    pub fn new(mut heap: Pjh) -> Result<PStore, PjhError> {
        let kid = heap.register_prim_array();
        // The array body comes from a zeroed, persisted region, so the
        // first record's slot word is already a durable terminator.
        let log = heap.alloc_array(kid, 1 + 2 * LOG_ENTRIES)?;
        heap.set_root(LOG_ROOT, log)?;
        Ok(PStore {
            heap,
            log,
            active: false,
            depth: 0,
            entries: 0,
        })
    }

    /// Re-attaches to a reloaded heap, rolling back any transaction that
    /// was in flight when the crash hit.
    ///
    /// # Errors
    ///
    /// [`PjhError::NotAHeap`] if the heap has no published log.
    pub fn attach(mut heap: Pjh) -> Result<PStore, PjhError> {
        let log = heap.get_root(LOG_ROOT).ok_or(PjhError::NotAHeap)?;
        // A live record prefix means a transaction was torn: undo it in
        // reverse.
        let mut records = Vec::new();
        for i in 0..LOG_ENTRIES {
            let addr = heap.array_get(log, 1 + 2 * i);
            if addr == 0 {
                break;
            }
            records.push((addr, heap.array_get(log, 2 + 2 * i)));
        }
        for &(addr, old) in records.iter().rev() {
            heap.write_word_at(addr, old);
            heap.persist_word_at(addr);
        }
        // Re-zero any slot word left non-zero anywhere in the log: a crash
        // inside a commit's invalidation sweep can leave live-looking
        // records beyond a zeroed prefix, and the validity scan must never
        // find them in a later crash. A clean attach writes (and flushes)
        // nothing.
        let mut stale = false;
        for i in 0..LOG_ENTRIES {
            if heap.array_get(log, 1 + 2 * i) != 0 {
                heap.array_set(log, 1 + 2 * i, 0);
                stale = true;
            }
        }
        if stale {
            heap.flush_object(log);
        }
        Ok(PStore {
            heap,
            log,
            active: false,
            depth: 0,
            entries: 0,
        })
    }

    /// The wrapped heap.
    pub fn heap(&self) -> &Pjh {
        &self.heap
    }

    /// Mutable access to the wrapped heap (non-transactional).
    pub fn heap_mut(&mut self) -> &mut Pjh {
        &mut self.heap
    }

    /// Consumes the store, returning the heap.
    pub fn into_heap(self) -> Pjh {
        self.heap
    }

    /// Begins a transaction; nested begins are flattened.
    pub fn begin(&mut self) {
        if self.active {
            self.depth += 1;
            return;
        }
        self.active = true;
        self.depth = 0;
        self.entries = 0;
    }

    /// Device virtual address of log array element `i` (element 0 is the
    /// persisted entry count).
    #[inline]
    fn log_slot(&self, i: usize) -> u64 {
        self.log.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64
    }

    /// Zeroes the slot words of records `0..self.entries` and persists
    /// them with one trailing fence, invalidating the transaction.
    fn invalidate_log(&mut self) {
        if self.entries == 0 {
            return;
        }
        for i in 0..self.entries {
            self.heap.write_word_at(self.log_slot(1 + 2 * i), 0);
        }
        let span = (2 * (self.entries - 1) + 1) * WORD;
        self.heap.persist_range_at(self.log_slot(1), span);
    }

    /// Commits: invalidates the used records (their slot words are 16
    /// bytes apart, so this is typically a single flush).
    pub fn commit(&mut self) {
        if self.depth > 0 {
            self.depth -= 1;
            return;
        }
        self.invalidate_log();
        self.active = false;
        self.entries = 0;
    }

    /// Aborts: applies the undo entries in reverse and truncates the log.
    pub fn abort(&mut self) {
        if self.depth > 0 {
            self.depth -= 1;
            // An inner abort aborts the whole flattened transaction.
        }
        for i in (0..self.entries).rev() {
            let addr = self.heap.read_word_at(self.log_slot(1 + 2 * i));
            let old = self.heap.read_word_at(self.log_slot(2 + 2 * i));
            self.heap.write_word_at(addr, old);
            self.heap.persist_word_at(addr);
        }
        self.invalidate_log();
        self.active = false;
        self.depth = 0;
        self.entries = 0;
    }

    /// Runs `f` in a transaction (joining the current one if active).
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after aborting.
    pub fn transact<T>(
        &mut self,
        f: impl FnOnce(&mut PStore) -> Result<T, PjhError>,
    ) -> Result<T, PjhError> {
        self.begin();
        match f(self) {
            Ok(v) => {
                self.commit();
                Ok(v)
            }
            Err(e) => {
                self.abort();
                Err(e)
            }
        }
    }

    fn log_old(&mut self, slot_vaddr: u64) {
        if !self.active {
            return;
        }
        assert!(
            self.entries < LOG_ENTRIES,
            "undo log overflow (transaction too large)"
        );
        let old = self.heap.read_word_at(slot_vaddr);
        let i = self.entries;
        let entry = self.log_slot(1 + 2 * i);
        self.heap.write_word_at(entry, slot_vaddr);
        self.heap.write_word_at(entry + WORD as u64, old);
        // The record becomes live the instant its slot word is durable,
        // so the old value must never trail it: one persist when the pair
        // shares a cache line, old-then-slot order when it straddles two.
        if self.heap.layout().to_off(entry) % CACHE_LINE + 2 * WORD <= CACHE_LINE {
            self.heap.persist_range_at(entry, 2 * WORD);
        } else {
            self.heap.persist_word_at(entry + WORD as u64);
            self.heap.persist_word_at(entry);
        }
        self.entries = i + 1;
    }

    // ---- logged primitive operations used by the collections ----
    //
    // Slot addresses are computed once and reused for the log record, the
    // store and the flush, so each logged store costs two persists (log
    // record, data) and no redundant Klass traffic.

    /// Logged, persisted field store.
    pub fn set_field(&mut self, obj: Ref, index: usize, value: u64) {
        let slot = obj.addr() + ((HEADER_WORDS + index) * WORD) as u64;
        self.log_old(slot);
        self.heap.write_word_at(slot, value);
        self.heap.persist_word_at(slot);
    }

    /// Logged, persisted reference-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn set_field_ref(&mut self, obj: Ref, index: usize, value: Ref) -> Result<(), PjhError> {
        let slot = obj.addr() + ((HEADER_WORDS + index) * WORD) as u64;
        self.log_old(slot);
        self.heap.write_ref_word_at(slot, value)?;
        self.heap.persist_word_at(slot);
        Ok(())
    }

    /// Logged, persisted array store.
    pub fn array_set(&mut self, arr: Ref, i: usize, value: u64) {
        debug_assert!(i < self.heap.array_len(arr));
        let slot = arr.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64;
        self.log_old(slot);
        self.heap.write_word_at(slot, value);
        self.heap.persist_word_at(slot);
    }

    /// Logged, persisted array reference store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn array_set_ref(&mut self, arr: Ref, i: usize, value: Ref) -> Result<(), PjhError> {
        debug_assert!(i < self.heap.array_len(arr));
        let slot = arr.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64;
        self.log_old(slot);
        self.heap.write_ref_word_at(slot, value)?;
        self.heap.persist_word_at(slot);
        Ok(())
    }

    /// Allocation passthrough (new objects need no undo: they are
    /// unreachable until a logged pointer store publishes them).
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_instance(&mut self, kid: KlassId) -> Result<Ref, PjhError> {
        self.heap.alloc_instance(kid)
    }

    /// Array allocation passthrough.
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_array(&mut self, kid: KlassId, len: usize) -> Result<Ref, PjhError> {
        self.heap.alloc_array(kid, len)
    }

    /// Collects the persistent space; the caller supplies collection roots
    /// it holds privately (the log array and named roots are reachable via
    /// the name table already).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn gc(&mut self, extra_roots: &[Ref]) -> Result<espresso_core::GcReport, PjhError> {
        let report = self.heap.gc(extra_roots)?;
        if let Some(&new) = report.relocations.get(&self.log.addr()) {
            self.log = Ref::new(espresso_object::Space::Persistent, new);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{LoadOptions, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};
    use espresso_object::FieldDesc;

    fn store() -> (NvmDevice, PStore) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let pjh = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, PStore::new(pjh).unwrap())
    }

    fn point(s: &mut PStore) -> KlassId {
        s.heap_mut()
            .register_instance("Point", vec![FieldDesc::prim("x"), FieldDesc::prim("y")])
            .unwrap()
    }

    #[test]
    fn committed_writes_survive_crash() {
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 10);
            s.set_field(p, 1, 20);
            Ok(())
        })
        .unwrap();
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let p = s2.heap().get_root("p").unwrap();
        assert_eq!(s2.heap().field(p, 0), 10);
        assert_eq!(s2.heap().field(p, 1), 20);
    }

    #[test]
    fn abort_rolls_back() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 1);
            Ok(())
        })
        .unwrap();
        s.begin();
        s.set_field(p, 0, 99);
        s.set_field(p, 1, 99);
        s.abort();
        assert_eq!(s.heap().field(p, 0), 1);
        assert_eq!(s.heap().field(p, 1), 0);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_on_attach() {
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 7);
            Ok(())
        })
        .unwrap();
        // Torn transaction: both stores logged+applied, commit never runs.
        s.begin();
        s.set_field(p, 0, 1000);
        s.set_field(p, 1, 2000);
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let p = s2.heap().get_root("p").unwrap();
        assert_eq!(s2.heap().field(p, 0), 7, "rolled back to committed value");
        assert_eq!(s2.heap().field(p, 1), 0);
    }

    #[test]
    fn crash_sweep_mid_transaction_is_atomic() {
        // Whatever the crash point, attach() must observe either the old
        // or (after commit) the new state — never a mix for field 0/1 pairs
        // written in one transaction... field-granular atomicity: each
        // individual logged store is undone, so after rollback both fields
        // return to their pre-transaction values.
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 5);
            s.set_field(p, 1, 6);
            Ok(())
        })
        .unwrap();
        let base = dev.snapshot_persisted();
        // Count flushes of the next transaction.
        let f0 = dev.stats().line_flushes;
        s.transact(|s| {
            s.set_field(p, 0, 50);
            s.set_field(p, 1, 60);
            Ok(())
        })
        .unwrap();
        let per_tx = dev.stats().line_flushes - f0;
        for at in 0..=per_tx {
            let trial = NvmDevice::new(NvmConfig::with_size(dev.size()));
            trial.write_bytes(0, &base);
            trial.persist(0, base.len());
            let (heap, _) = Pjh::load(trial.clone(), LoadOptions::default()).unwrap();
            let mut st = PStore::attach(heap).unwrap();
            let p = st.heap().get_root("p").unwrap();
            trial.schedule_crash_after_line_flushes(at);
            st.transact(|s| {
                s.set_field(p, 0, 50);
                s.set_field(p, 1, 60);
                Ok(())
            })
            .unwrap();
            trial.recover();
            let (heap2, _) = Pjh::load(trial, LoadOptions::default()).unwrap();
            let s2 = PStore::attach(heap2).unwrap();
            let p2 = s2.heap().get_root("p").unwrap();
            let (x, y) = (s2.heap().field(p2, 0), s2.heap().field(p2, 1));
            assert!(
                (x, y) == (5, 6) || (x, y) == (50, 60),
                "crash after {at}/{per_tx} flushes left mixed state ({x},{y})"
            );
        }
    }

    #[test]
    fn nested_transactions_flatten() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.begin();
        s.set_field(p, 0, 1);
        s.begin();
        s.set_field(p, 1, 2);
        s.commit(); // inner: no effect yet
        s.commit(); // outer: commits all
        assert_eq!(s.heap().field(p, 0), 1);
        assert_eq!(s.heap().field(p, 1), 2);
    }

    #[test]
    fn gc_keeps_log_reachable() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        for _ in 0..100 {
            s.alloc_instance(k).unwrap();
        }
        s.gc(&[]).unwrap();
        // The log must still work after GC (it may have moved).
        let p = s.alloc_instance(k).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 3);
            Ok(())
        })
        .unwrap();
        assert_eq!(s.heap().field(p, 0), 3);
    }
}
