//! Transactional wrapper over PJH with an NVM-resident undo log.

use espresso_core::{Pjh, PjhError};
use espresso_object::{KlassId, Ref, ARRAY_HEADER_WORDS, HEADER_WORDS, WORD};

/// Root name under which the undo log array is published.
const LOG_ROOT: &str = "espresso.collections.txlog";
/// Undo-log capacity in (address, old-value) entry pairs. Sized so the
/// log array (1 + 2 × entries elements) fits in the smallest supported
/// region (4 KiB = 512 words, 3 of which are the array header).
const LOG_ENTRIES: usize = 240;

/// A persistent heap plus a word-granular undo log, giving every
/// collection operation the same ACID guarantee PCJ provides (§6.2).
///
/// Protocol per transaction: each store first appends `(slot, old value)`
/// to the NVM log and bumps the persisted entry count, then performs and
/// flushes the store itself. Commit resets the count. If a crash leaves a
/// non-zero count, [`PStore::attach`] rolls the entries back in reverse.
#[derive(Debug)]
pub struct PStore {
    heap: Pjh,
    log: Ref,
    active: bool,
    depth: u32,
    entries: usize,
}

impl PStore {
    /// Wraps a fresh heap, allocating and publishing the undo log.
    ///
    /// # Errors
    ///
    /// Allocation or root-table errors.
    pub fn new(mut heap: Pjh) -> Result<PStore, PjhError> {
        let kid = heap.register_prim_array();
        let log = heap.alloc_array(kid, 1 + 2 * LOG_ENTRIES)?;
        heap.array_set(log, 0, 0);
        heap.flush_element(log, 0);
        heap.set_root(LOG_ROOT, log)?;
        Ok(PStore {
            heap,
            log,
            active: false,
            depth: 0,
            entries: 0,
        })
    }

    /// Re-attaches to a reloaded heap, rolling back any transaction that
    /// was in flight when the crash hit.
    ///
    /// # Errors
    ///
    /// [`PjhError::NotAHeap`] if the heap has no published log.
    pub fn attach(mut heap: Pjh) -> Result<PStore, PjhError> {
        let log = heap.get_root(LOG_ROOT).ok_or(PjhError::NotAHeap)?;
        let count = heap.array_get(log, 0) as usize;
        if count > 0 {
            // Roll back in reverse order.
            for i in (0..count).rev() {
                let addr = heap.array_get(log, 1 + 2 * i);
                let old = heap.array_get(log, 2 + 2 * i);
                heap.write_word_at(addr, old);
                heap.persist_word_at(addr);
            }
            heap.array_set(log, 0, 0);
            heap.flush_element(log, 0);
        }
        Ok(PStore {
            heap,
            log,
            active: false,
            depth: 0,
            entries: 0,
        })
    }

    /// The wrapped heap.
    pub fn heap(&self) -> &Pjh {
        &self.heap
    }

    /// Mutable access to the wrapped heap (non-transactional).
    pub fn heap_mut(&mut self) -> &mut Pjh {
        &mut self.heap
    }

    /// Consumes the store, returning the heap.
    pub fn into_heap(self) -> Pjh {
        self.heap
    }

    /// Begins a transaction; nested begins are flattened.
    pub fn begin(&mut self) {
        if self.active {
            self.depth += 1;
            return;
        }
        self.active = true;
        self.depth = 0;
        self.entries = 0;
    }

    /// Commits: truncates the log with a single persisted count reset.
    pub fn commit(&mut self) {
        if self.depth > 0 {
            self.depth -= 1;
            return;
        }
        self.heap.array_set(self.log, 0, 0);
        self.heap.flush_element(self.log, 0);
        self.active = false;
        self.entries = 0;
    }

    /// Aborts: applies the undo entries in reverse and truncates the log.
    pub fn abort(&mut self) {
        if self.depth > 0 {
            self.depth -= 1;
            // An inner abort aborts the whole flattened transaction.
        }
        for i in (0..self.entries).rev() {
            let addr = self.heap.array_get(self.log, 1 + 2 * i);
            let old = self.heap.array_get(self.log, 2 + 2 * i);
            self.heap.write_word_at(addr, old);
            self.heap.persist_word_at(addr);
        }
        self.heap.array_set(self.log, 0, 0);
        self.heap.flush_element(self.log, 0);
        self.active = false;
        self.depth = 0;
        self.entries = 0;
    }

    /// Runs `f` in a transaction (joining the current one if active).
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after aborting.
    pub fn transact<T>(
        &mut self,
        f: impl FnOnce(&mut PStore) -> Result<T, PjhError>,
    ) -> Result<T, PjhError> {
        self.begin();
        match f(self) {
            Ok(v) => {
                self.commit();
                Ok(v)
            }
            Err(e) => {
                self.abort();
                Err(e)
            }
        }
    }

    fn log_old(&mut self, slot_vaddr: u64) {
        if !self.active {
            return;
        }
        assert!(
            self.entries < LOG_ENTRIES,
            "undo log overflow (transaction too large)"
        );
        let old = self.heap.read_word_at(slot_vaddr);
        let i = self.entries;
        self.heap.array_set(self.log, 1 + 2 * i, slot_vaddr);
        self.heap.array_set(self.log, 2 + 2 * i, old);
        // Both entry words must be durable before the count can cover
        // them; when they share a cache line the second flush is free.
        self.heap.flush_element(self.log, 1 + 2 * i);
        self.heap.flush_element(self.log, 2 + 2 * i);
        self.entries = i + 1;
        self.heap.array_set(self.log, 0, self.entries as u64);
        self.heap.flush_element(self.log, 0);
    }

    // ---- logged primitive operations used by the collections ----

    /// Logged, persisted field store.
    pub fn set_field(&mut self, obj: Ref, index: usize, value: u64) {
        let slot = obj.addr() + ((HEADER_WORDS + index) * WORD) as u64;
        self.log_old(slot);
        self.heap.set_field(obj, index, value);
        self.heap.flush_field(obj, index);
    }

    /// Logged, persisted reference-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn set_field_ref(&mut self, obj: Ref, index: usize, value: Ref) -> Result<(), PjhError> {
        let slot = obj.addr() + ((HEADER_WORDS + index) * WORD) as u64;
        self.log_old(slot);
        self.heap.set_field_ref(obj, index, value)?;
        self.heap.flush_field(obj, index);
        Ok(())
    }

    /// Logged, persisted array store.
    pub fn array_set(&mut self, arr: Ref, i: usize, value: u64) {
        let slot = arr.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64;
        self.log_old(slot);
        self.heap.array_set(arr, i, value);
        self.heap.flush_element(arr, i);
    }

    /// Logged, persisted array reference store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn array_set_ref(&mut self, arr: Ref, i: usize, value: Ref) -> Result<(), PjhError> {
        let slot = arr.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64;
        self.log_old(slot);
        self.heap.array_set_ref(arr, i, value)?;
        self.heap.flush_element(arr, i);
        Ok(())
    }

    /// Allocation passthrough (new objects need no undo: they are
    /// unreachable until a logged pointer store publishes them).
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_instance(&mut self, kid: KlassId) -> Result<Ref, PjhError> {
        self.heap.alloc_instance(kid)
    }

    /// Array allocation passthrough.
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_array(&mut self, kid: KlassId, len: usize) -> Result<Ref, PjhError> {
        self.heap.alloc_array(kid, len)
    }

    /// Collects the persistent space; the caller supplies collection roots
    /// it holds privately (the log array and named roots are reachable via
    /// the name table already).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn gc(&mut self, extra_roots: &[Ref]) -> Result<espresso_core::GcReport, PjhError> {
        let report = self.heap.gc(extra_roots)?;
        if let Some(&new) = report.relocations.get(&self.log.addr()) {
            self.log = Ref::new(espresso_object::Space::Persistent, new);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{LoadOptions, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};
    use espresso_object::FieldDesc;

    fn store() -> (NvmDevice, PStore) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let pjh = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, PStore::new(pjh).unwrap())
    }

    fn point(s: &mut PStore) -> KlassId {
        s.heap_mut()
            .register_instance("Point", vec![FieldDesc::prim("x"), FieldDesc::prim("y")])
            .unwrap()
    }

    #[test]
    fn committed_writes_survive_crash() {
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 10);
            s.set_field(p, 1, 20);
            Ok(())
        })
        .unwrap();
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let p = s2.heap().get_root("p").unwrap();
        assert_eq!(s2.heap().field(p, 0), 10);
        assert_eq!(s2.heap().field(p, 1), 20);
    }

    #[test]
    fn abort_rolls_back() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 1);
            Ok(())
        })
        .unwrap();
        s.begin();
        s.set_field(p, 0, 99);
        s.set_field(p, 1, 99);
        s.abort();
        assert_eq!(s.heap().field(p, 0), 1);
        assert_eq!(s.heap().field(p, 1), 0);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_on_attach() {
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 7);
            Ok(())
        })
        .unwrap();
        // Torn transaction: both stores logged+applied, commit never runs.
        s.begin();
        s.set_field(p, 0, 1000);
        s.set_field(p, 1, 2000);
        dev.crash();
        let (heap, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let s2 = PStore::attach(heap).unwrap();
        let p = s2.heap().get_root("p").unwrap();
        assert_eq!(s2.heap().field(p, 0), 7, "rolled back to committed value");
        assert_eq!(s2.heap().field(p, 1), 0);
    }

    #[test]
    fn crash_sweep_mid_transaction_is_atomic() {
        // Whatever the crash point, attach() must observe either the old
        // or (after commit) the new state — never a mix for field 0/1 pairs
        // written in one transaction... field-granular atomicity: each
        // individual logged store is undone, so after rollback both fields
        // return to their pre-transaction values.
        let (dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.heap_mut().set_root("p", p).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 5);
            s.set_field(p, 1, 6);
            Ok(())
        })
        .unwrap();
        let base = dev.snapshot_persisted();
        // Count flushes of the next transaction.
        let f0 = dev.stats().line_flushes;
        s.transact(|s| {
            s.set_field(p, 0, 50);
            s.set_field(p, 1, 60);
            Ok(())
        })
        .unwrap();
        let per_tx = dev.stats().line_flushes - f0;
        for at in 0..=per_tx {
            let trial = NvmDevice::new(NvmConfig::with_size(dev.size()));
            trial.write_bytes(0, &base);
            trial.persist(0, base.len());
            let (heap, _) = Pjh::load(trial.clone(), LoadOptions::default()).unwrap();
            let mut st = PStore::attach(heap).unwrap();
            let p = st.heap().get_root("p").unwrap();
            trial.schedule_crash_after_line_flushes(at);
            st.transact(|s| {
                s.set_field(p, 0, 50);
                s.set_field(p, 1, 60);
                Ok(())
            })
            .unwrap();
            trial.recover();
            let (heap2, _) = Pjh::load(trial, LoadOptions::default()).unwrap();
            let s2 = PStore::attach(heap2).unwrap();
            let p2 = s2.heap().get_root("p").unwrap();
            let (x, y) = (s2.heap().field(p2, 0), s2.heap().field(p2, 1));
            assert!(
                (x, y) == (5, 6) || (x, y) == (50, 60),
                "crash after {at}/{per_tx} flushes left mixed state ({x},{y})"
            );
        }
    }

    #[test]
    fn nested_transactions_flatten() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        let p = s.alloc_instance(k).unwrap();
        s.begin();
        s.set_field(p, 0, 1);
        s.begin();
        s.set_field(p, 1, 2);
        s.commit(); // inner: no effect yet
        s.commit(); // outer: commits all
        assert_eq!(s.heap().field(p, 0), 1);
        assert_eq!(s.heap().field(p, 1), 2);
    }

    #[test]
    fn gc_keeps_log_reachable() {
        let (_dev, mut s) = store();
        let k = point(&mut s);
        for _ in 0..100 {
            s.alloc_instance(k).unwrap();
        }
        s.gc(&[]).unwrap();
        // The log must still work after GC (it may have moved).
        let p = s.alloc_instance(k).unwrap();
        s.transact(|s| {
            s.set_field(p, 0, 3);
            Ok(())
        })
        .unwrap();
        assert_eq!(s.heap().field(p, 0), 3);
    }
}
