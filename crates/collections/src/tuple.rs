//! Fixed-arity tuples ("Tuple" in Figure 15).

use espresso_core::PjhError;
use espresso_object::{Ref, Schema};

use crate::PStore;

/// A persistent fixed-arity tuple of 64-bit slots.
///
/// PCJ exposes `PersistentTuple` types of various arities; here one klass
/// is registered per arity (`espresso.Tuple3`, ...), matching how the JVM
/// would monomorphize them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PTuple {
    obj: Ref,
    arity: usize,
}

impl PTuple {
    /// Allocates a zeroed tuple of the given arity.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero.
    pub fn pnew(store: &mut PStore, arity: usize) -> Result<PTuple, PjhError> {
        assert!(arity > 0, "tuples need at least one slot");
        let name = format!("espresso.Tuple{arity}");
        let kid = store.ensure_schema_klass(&name, || {
            (0..arity)
                .fold(Schema::builder(&name), |b, i| b.u64_field(&format!("_{i}")))
                .build()
        })?;
        let obj = store.alloc_instance(kid)?;
        Ok(PTuple { obj, arity })
    }

    /// Re-wraps an existing tuple reference.
    pub fn from_ref(store: &PStore, obj: Ref) -> PTuple {
        let arity = store.heap().klass_of(obj).fields().len();
        PTuple { obj, arity }
    }

    /// The underlying object reference.
    pub fn as_ref(&self) -> Ref {
        self.obj
    }

    /// Number of slots.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Reads slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity`.
    pub fn get(&self, store: &PStore, i: usize) -> u64 {
        assert!(i < self.arity, "tuple slot {i} out of range");
        store.heap().field(self.obj, i)
    }

    /// Transactionally writes slot `i`.
    ///
    /// # Errors
    ///
    /// Heap errors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity`.
    pub fn set(&self, store: &mut PStore, i: usize, value: u64) -> Result<(), PjhError> {
        assert!(i < self.arity, "tuple slot {i} out of range");
        store.transact(|s| {
            s.set_field(self.obj, i, value);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::{Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn store() -> PStore {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        PStore::new(Pjh::create(dev, PjhConfig::small()).unwrap()).unwrap()
    }

    #[test]
    fn tuple_roundtrip() {
        let mut s = store();
        let t = PTuple::pnew(&mut s, 3).unwrap();
        assert_eq!(t.arity(), 3);
        t.set(&mut s, 0, 10).unwrap();
        t.set(&mut s, 2, 30).unwrap();
        assert_eq!(t.get(&s, 0), 10);
        assert_eq!(t.get(&s, 1), 0);
        assert_eq!(t.get(&s, 2), 30);
    }

    #[test]
    fn arity_recovered_from_ref() {
        let mut s = store();
        let t = PTuple::pnew(&mut s, 5).unwrap();
        let again = PTuple::from_ref(&s, t.as_ref());
        assert_eq!(again.arity(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_bounds_checked() {
        let mut s = store();
        let t = PTuple::pnew(&mut s, 2).unwrap();
        t.get(&s, 2);
    }
}
