//! Volatile bitmaps with explicit NVM persistence.
//!
//! The collector builds its mark bitmaps in DRAM and writes them to the
//! device wholesale at the end of the marking phase (§4.2: "the mark
//! bitmap can be seen as a sketch of the whole heap before the real
//! collection ... it must be persisted before the objects start being
//! moved").

use espresso_nvm::NvmDevice;

/// A growable bitset mirrored to a fixed NVM area on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    bits: usize,
}

impl Bitmap {
    /// A cleared bitmap of `bits` capacity.
    pub fn new(bits: usize) -> Bitmap {
        Bitmap {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Bit capacity.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range ({})", self.bits);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range ({})", self.bits);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of range ({})", self.bits);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the first set bit at or after `from`, if any.
    pub fn next_set(&self, from: usize) -> Option<usize> {
        if from >= self.bits {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let bit = wi * 64 + word.trailing_zeros() as usize;
                return (bit < self.bits).then_some(bit);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Iterates over all set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = self.next_set(0);
        std::iter::from_fn(move || {
            let cur = next?;
            next = self.next_set(cur + 1);
            Some(cur)
        })
    }

    /// Writes the bitmap into `[off, off + bytes)` on the device and
    /// persists it.
    ///
    /// The encoding is length-prefixed (`[used-words][words...]`): only
    /// the prefix up to the last set word is written and flushed, so a
    /// sparse mark bitmap costs flushes proportional to the *marked* part
    /// of the heap, not the heap size — important for the §6.4 pause
    /// numbers.
    ///
    /// # Panics
    ///
    /// Panics if the area is smaller than the bitmap prefix plus header.
    pub fn store(&self, dev: &NvmDevice, off: usize, bytes: usize) {
        let used = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        let needed = 8 + used * 8;
        assert!(
            needed <= bytes,
            "bitmap of {needed} bytes exceeds area of {bytes}"
        );
        let mut buf = vec![0u8; needed];
        buf[..8].copy_from_slice(&(used as u64).to_le_bytes());
        for (i, w) in self.words[..used].iter().enumerate() {
            buf[8 + i * 8..16 + i * 8].copy_from_slice(&w.to_le_bytes());
        }
        dev.write_bytes(off, &buf);
        dev.persist(off, needed);
    }

    /// Reads a bitmap of `bits` capacity back from the device.
    pub fn load(dev: &NvmDevice, off: usize, bits: usize) -> Bitmap {
        let mut bm = Bitmap::new(bits);
        let used = (dev.read_u64(off) as usize).min(bm.words.len());
        let mut buf = vec![0u8; used * 8];
        dev.read_bytes(off + 8, &mut buf);
        for (i, w) in bm.words[..used].iter_mut().enumerate() {
            *w = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        bm
    }

    /// Fixed-layout store (no length prefix): word *i* of the bitmap lands
    /// at `off + 8i`, so callers may later update single words in place
    /// (the free and done region bitmaps need exactly that).
    ///
    /// # Panics
    ///
    /// Panics if the area is smaller than the bitmap.
    pub fn store_raw(&self, dev: &NvmDevice, off: usize, bytes: usize) {
        let needed = self.words.len() * 8;
        assert!(
            needed <= bytes,
            "bitmap of {needed} bytes exceeds area of {bytes}"
        );
        let mut buf = vec![0u8; needed];
        for (i, w) in self.words.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        dev.write_bytes(off, &buf);
        dev.persist(off, needed);
    }

    /// Counterpart of [`store_raw`](Self::store_raw).
    pub fn load_raw(dev: &NvmDevice, off: usize, bits: usize) -> Bitmap {
        let mut bm = Bitmap::new(bits);
        let mut buf = vec![0u8; bm.words.len() * 8];
        dev.read_bytes(off, &mut buf);
        for (i, w) in bm.words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        b.clear_all();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn next_set_scans_across_words() {
        let mut b = Bitmap::new(200);
        b.set(3);
        b.set(70);
        b.set(199);
        assert_eq!(b.next_set(0), Some(3));
        assert_eq!(b.next_set(4), Some(70));
        assert_eq!(b.next_set(71), Some(199));
        assert_eq!(b.next_set(200), None);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![3, 70, 199]);
    }

    #[test]
    fn nvm_roundtrip_survives_crash() {
        let dev = NvmDevice::new(NvmConfig::with_size(4096));
        let mut b = Bitmap::new(512);
        for i in (0..512).step_by(7) {
            b.set(i);
        }
        b.store(&dev, 1024, 8 + 512 / 8);
        dev.crash();
        let b2 = Bitmap::load(&dev, 1024, 512);
        assert_eq!(b, b2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_bounds_checked() {
        Bitmap::new(8).set(8);
    }
}
