//! Crash-consistent region-based mark-summarize-compact GC (§4.2, §4.3).
//!
//! The protocol, in persistence order:
//!
//! 1. **Mark** from the name-table roots (plus any VM-supplied DRAM-held
//!    references). The begin/end mark bitmaps — a complete sketch of the
//!    live heap, sizes included — are persisted, along with a snapshot of
//!    the pre-GC free bitmap and allocation cursor (the *summary inputs*).
//! 2. The global timestamp is bumped and persisted together with the
//!    `gc_in_progress` flag; every object in the heap is now stale.
//! 3. **Summary** is a pure function of the persisted inputs, so it is
//!    idempotent: recovery recomputes the identical relocation schedule.
//! 4. **Compact** region by region, in index order. Moving objects are
//!    copied to regions that hold no live data; the source copy acts as an
//!    undo log until the whole region is marked done in the persisted
//!    region bitmap. Each object is stamped with the new timestamp —
//!    destination copy first, then source — so recovery can tell processed
//!    from unprocessed objects. Mostly-live regions are compacted *in
//!    place* (references rewritten through the idempotent forwarding rule,
//!    no copy), which is why forwarding maps destination addresses only
//!    into previously-empty regions: re-applying a fix-up is a no-op.
//! 5. **Finalize**: root entries forwarded, the new free bitmap and
//!    allocation cursor persisted, destination-region tails zeroed, the
//!    per-region summary table rewritten, and the in-progress flag
//!    cleared.
//!
//! # Incremental collection
//!
//! A completed full collection leaves behind a persisted per-region
//! **summary** (live words / live objects / reclaimable words / scan
//! timestamp) and arms dirty tracking; the
//! first incremental cycle builds per-region DRAM **remembered sets**
//! (each region's outgoing cross-region references) and later cycles
//! reuse them: only regions written since the previous cycle are
//! rescanned; a clean region is treated as an opaque unit whose remembered
//! set stands in for its contents during marking. Wholly-garbage dirty
//! regions that no retained region references are reclaimed in bulk (one
//! free-bitmap persist each) and nothing moves, so an incremental cycle's
//! flush cost is proportional to the *mutated* part of the heap, not the
//! heap size. Liveness in clean regions is carried over conservatively
//! (floating garbage lingers until the region is dirtied or a full
//! collection runs); crashes invalidate the DRAM half of the state, which
//! simply forces the next collection to be full.

use std::collections::{BTreeSet, HashMap};

use espresso_object::{mark, Ref, Space, WORD};

use crate::bitmap::Bitmap;
use crate::heap::{ref_slots, Pjh};
use crate::layout::{meta, Layout};

/// Which collection strategy a cycle used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Mark-summarize-compact over the whole heap (§4.2).
    Full,
    /// Dirty-region rescan + bulk reclamation; nothing moves.
    Incremental,
}

/// Per-region live accounting, persisted in the metadata segment (16
/// bytes per region) and reused across incremental collection cycles.
/// The death side (`reclaimable_words`, `scan_ts`) is what the v3
/// allocator rebuilds its free lists from on load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionSummary {
    /// Words occupied by live objects in the region.
    pub live_words: u32,
    /// Live objects in the region.
    pub live_objects: u32,
    /// Words of dead-but-still-walkable object images that fit a
    /// free-list size class — slots `alloc_raw` may hand out again.
    pub reclaimable_words: u32,
    /// Timestamp of the collection that last proved deaths in this
    /// region: an image stamped strictly below it is durably dead.
    pub scan_ts: u32,
}

impl RegionSummary {
    pub(crate) fn pack(self) -> (u64, u64) {
        (
            self.live_words as u64 | (self.live_objects as u64) << 32,
            self.reclaimable_words as u64 | (self.scan_ts as u64) << 32,
        )
    }

    pub(crate) fn unpack(lo: u64, hi: u64) -> RegionSummary {
        RegionSummary {
            live_words: lo as u32,
            live_objects: (lo >> 32) as u32,
            reclaimable_words: hi as u32,
            scan_ts: (hi >> 32) as u32,
        }
    }
}

/// Why an auto collection ([`Pjh::gc`]) ran a full compaction when the
/// caller might have expected the cheaper incremental cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcEscalation {
    /// Dirty tracking has not been continuous since the last full
    /// collection. Remembered sets and the dirty bitmap are DRAM-only,
    /// so the first collection after a reload (or after anything that
    /// rewrites references behind the tracking) always lands here.
    IncrementalNotReady,
    /// Free space ran low enough that compaction was needed to open
    /// regions, even though incremental state was valid.
    LowSpace,
}

/// Outcome of a persistent-space collection.
#[derive(Debug, Clone)]
pub struct GcReport {
    /// Collection strategy used.
    pub kind: GcKind,
    /// Regions whose contents were (re)scanned this cycle.
    pub regions_scanned: usize,
    /// Non-free regions skipped thanks to reusable summaries (always 0 for
    /// a full collection).
    pub regions_skipped: usize,
    /// Live objects found by the marking phase.
    pub live_objects: usize,
    /// Objects physically relocated.
    pub moved_objects: usize,
    /// Live objects compacted in place (references fixed, no copy).
    pub in_place_objects: usize,
    /// Regions free after the collection.
    pub free_regions: usize,
    /// Virtual-address relocations (old → new) for every moved object;
    /// the VM uses this to patch NVM pointers held in DRAM.
    pub relocations: HashMap<u64, u64>,
    /// Cache-line flushes issued during the collection.
    pub pause_flushes: u64,
    /// Simulated NVM nanoseconds consumed by the collection.
    pub pause_sim_ns: u64,
    /// `Some` when the auto policy ([`Pjh::gc`]) silently upgraded an
    /// expected incremental cycle to a full compaction; `None` for
    /// explicitly requested collections and for incremental cycles.
    pub escalation: Option<GcEscalation>,
}

#[derive(Debug, Clone)]
enum Plan {
    /// No live objects; nothing to do.
    Skip,
    /// Fix references in place, stamp, mark done.
    InPlace(Vec<(usize, usize)>),
    /// Copy each `(src, words, dst)`, fix, stamp, mark done.
    Evacuate(Vec<(usize, usize, usize)>),
}

#[derive(Debug)]
struct Schedule {
    plans: Vec<Plan>,
    /// Device-offset forwarding, identity entries included for in-place
    /// objects. The fix-up rule `slot = forwarding.get(slot) or slot` is
    /// idempotent because destinations are never forwarding keys.
    forwarding: HashMap<usize, usize>,
    /// Regions that receive data, with their final fill in bytes (tails
    /// are zeroed at finalize for the walker's hole invariant).
    zero_tails: Vec<(usize, usize)>,
    new_free: Bitmap,
    alloc_region_after: usize,
    alloc_top_after: usize,
    live_objects: usize,
}

fn pflush(h: &Pjh, off: usize, len: usize) {
    if h.recoverable_gc {
        h.dev.persist(off, len);
    }
}

// ---- per-region summaries ----

fn summaries_of_schedule(layout: &Layout, schedule: &Schedule) -> Vec<RegionSummary> {
    let mut out = vec![RegionSummary::default(); layout.num_regions];
    for (r, plan) in schedule.plans.iter().enumerate() {
        match plan {
            Plan::Skip => {}
            Plan::InPlace(objs) => {
                for &(_, words) in objs {
                    out[r].live_words += words as u32;
                    out[r].live_objects += 1;
                }
            }
            Plan::Evacuate(moves) => {
                for &(_, words, dst) in moves {
                    let d = layout.region_of(dst);
                    out[d].live_words += words as u32;
                    out[d].live_objects += 1;
                }
            }
        }
    }
    out
}

/// Writes the summary table with a torn-write guard: the validity
/// timestamp is zeroed before the entries change and only restored after
/// they are durable. `write_all` forces every entry out (full collections
/// and recovery, where the DRAM mirror cannot be trusted); otherwise only
/// entries differing from the mirror are written, so an incremental
/// cycle's flush cost tracks the number of changed regions.
fn persist_summaries(h: &mut Pjh, summaries: &[RegionSummary], ts: u32, write_all: bool) {
    h.dev.write_u64(meta::SUMMARY_TS, 0);
    pflush(h, meta::SUMMARY_TS, 8);
    for (i, s) in summaries.iter().enumerate() {
        if write_all || h.summaries[i] != *s {
            let entry = h.layout.region_summary_entry(i);
            let (lo, hi) = s.pack();
            h.dev.write_u64(entry, lo);
            h.dev.write_u64(entry + 8, hi);
        }
    }
    pflush(h, h.layout.region_summary_off, h.layout.num_regions * 16);
    h.dev.write_u64(meta::SUMMARY_TS, ts as u64);
    pflush(h, meta::SUMMARY_TS, 8);
    h.summaries = summaries.to_vec();
}

/// From-scratch per-region live accounting (a fresh reachability scan).
/// The death side is derived from mark stamps, exactly as the free-list
/// rebuild does: an image stamped below the current global timestamp is
/// dead, and the region's scan timestamp is that global timestamp.
pub(crate) fn scan_summaries(h: &Pjh) -> Vec<RegionSummary> {
    let (begin, end) = mark_live(h, &[]);
    let mut out = vec![RegionSummary::default(); h.layout.num_regions];
    let mut b = begin.next_set(0);
    while let Some(w) = b {
        let e = end.next_set(w).expect("begin bit without end bit");
        let words = e - w + 1;
        let r = h.layout.region_of(h.layout.off_of_word(w));
        out[r].live_words += words as u32;
        out[r].live_objects += 1;
        b = begin.next_set(w + words);
    }
    for (r, s) in out.iter_mut().enumerate() {
        if h.free.get(r) {
            continue;
        }
        s.scan_ts = h.global_ts;
        s.reclaimable_words = h
            .harvest_region(r, h.global_ts)
            .iter()
            .map(|&(_, words)| words as u32)
            .sum();
    }
    out
}

// ---- remembered sets (incremental marking input) ----

/// Outgoing cross-region references (device offsets) of every object
/// image physically present in region `r` — garbage included, since
/// non-moving cycles retain garbage images and must keep their referents'
/// regions from being reclaimed.
fn scan_region_outgoing(h: &Pjh, r: usize) -> Vec<usize> {
    let mut out = Vec::new();
    h.for_each_object_in_region(r, |off, klass, _| {
        for slot in ref_slots(off, klass, &h.dev) {
            let t = Ref::from_raw(h.dev.read_u64(slot));
            if t.is_persistent() && t.addr() >= h.layout.base {
                let toff = (t.addr() - h.layout.base) as usize;
                if h.layout.in_data(toff) && h.layout.region_of(toff) != r {
                    out.push(toff);
                }
            }
        }
    });
    out.sort_unstable();
    out.dedup();
    out
}

// ---- marking (§4.2 "extends the mark bitmap ... must be persisted") ----

fn mark_live(h: &Pjh, extra_roots: &[Ref]) -> (Bitmap, Bitmap) {
    let words = h.layout.data_size / WORD;
    let mut begin = Bitmap::new(words);
    let mut end = Bitmap::new(words);
    let mut worklist: Vec<usize> = Vec::new();

    let push_root = |raw: u64, worklist: &mut Vec<usize>| {
        let r = Ref::from_raw(raw);
        if r.is_persistent() && r.addr() >= h.layout.base {
            let off = (r.addr() - h.layout.base) as usize;
            if h.layout.in_data(off) {
                worklist.push(off);
            }
        }
    };
    for (_, r) in h.roots() {
        push_root(r.to_raw(), &mut worklist);
    }
    for &r in extra_roots {
        push_root(r.to_raw(), &mut worklist);
    }
    while let Some(off) = worklist.pop() {
        let w = h.layout.word_of(off);
        if begin.get(w) {
            continue;
        }
        let words = h.object_words_at(off);
        begin.set(w);
        end.set(w + words - 1);
        let klass = {
            let seg = h.dev.read_u64(off + 8);
            h.klasses
                .klass_by_seg(seg)
                .expect("dangling class word")
                .clone()
        };
        for slot in ref_slots(off, &klass, &h.dev) {
            push_root(h.dev.read_u64(slot), &mut worklist);
        }
    }
    (begin, end)
}

// ---- summary (§4.2: idempotent, derived only from persisted inputs) ----

/// Derives the compaction schedule from persisted inputs only, so
/// recovery can replay it bit for bit. `usable` masks the regions the
/// schedule may overwrite (evacuation destinations, the alloc-region
/// rewind): with no pinned read sessions it is all-ones; while readers
/// are pinned it shrinks to drained free regions, because a region that
/// held objects — live or garbage — may still be walked through a
/// pinned reader's pre-GC refs. The mask is persisted alongside the mark
/// bitmaps (`saved_free_off`), keeping the schedule a pure function of
/// NVM state.
fn build_schedule(
    layout: &Layout,
    begin: &Bitmap,
    end: &Bitmap,
    usable: &Bitmap,
    alloc_region_before: usize,
    alloc_top_before: usize,
) -> Schedule {
    let n = layout.num_regions;
    let region_words = layout.region_size / WORD;
    let mut live: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut live_objects = 0;
    let mut b = begin.next_set(0);
    while let Some(w) = b {
        let e = end.next_set(w).expect("begin bit without end bit");
        let words = e - w + 1;
        let off = layout.off_of_word(w);
        live[w / region_words].push((off, words));
        live_objects += 1;
        b = begin.next_set(w + words);
    }

    let mut avail: BTreeSet<usize> = (0..n)
        .filter(|&r| live[r].is_empty() && usable.get(r))
        .collect();
    let mut plans: Vec<Plan> = vec![Plan::Skip; n];
    let mut forwarding: HashMap<usize, usize> = HashMap::new();
    let mut dest: Option<(usize, usize)> = None; // (region, fill bytes)
    let mut fills: HashMap<usize, usize> = HashMap::new();
    let mut evacuations = false;

    for r in 0..n {
        if live[r].is_empty() {
            continue;
        }
        let objs = std::mem::take(&mut live[r]);
        let live_bytes: usize = objs.iter().map(|&(_, w)| w * WORD).sum();
        let cur_rem = dest.map(|(_, fill)| layout.region_size - fill).unwrap_or(0);
        let capacity = cur_rem + avail.len() * layout.region_size;
        // Mostly-full regions are not worth copying; regions that cannot
        // fit in the available destinations stay put too.
        let in_place = live_bytes * 4 >= layout.region_size * 3 || live_bytes > capacity;
        if in_place {
            for &(off, _) in &objs {
                forwarding.insert(off, off);
            }
            plans[r] = Plan::InPlace(objs);
            continue;
        }
        let mut moves = Vec::with_capacity(objs.len());
        for (off, words) in objs {
            let bytes = words * WORD;
            let (dr, fill) = match dest {
                Some((dr, fill)) if fill + bytes <= layout.region_size => (dr, fill),
                _ => {
                    let nd = avail.pop_first().expect("capacity was checked");
                    (nd, 0)
                }
            };
            let dst = layout.region_start(dr) + fill;
            dest = Some((dr, fill + bytes));
            fills.insert(dr, fill + bytes);
            forwarding.insert(off, dst);
            moves.push((off, words, dst));
        }
        // An evacuated source can serve as a later destination only when
        // it is overwrite-safe; under pinned readers it is not — their
        // pre-GC refs still resolve into its (intact) old images.
        if usable.get(r) {
            avail.insert(r);
        }
        plans[r] = Plan::Evacuate(moves);
        evacuations = true;
    }

    let (alloc_region_after, alloc_top_after, mut zero_tails) = if evacuations {
        let (dr, fill) = dest.expect("evacuations imply a destination");
        (dr, layout.region_start(dr) + fill, Vec::new())
    } else if live[alloc_region_before].is_empty()
        && usable.get(alloc_region_before)
        && !matches!(plans[alloc_region_before], Plan::InPlace(_))
    {
        // Nothing moved and the allocation region holds only garbage:
        // rewind it (the region is zeroed at finalize).
        (
            alloc_region_before,
            layout.region_start(alloc_region_before),
            vec![(alloc_region_before, 0)],
        )
    } else {
        (alloc_region_before, alloc_top_before, Vec::new())
    };
    for (&dr, &fill) in &fills {
        zero_tails.push((dr, fill));
    }
    zero_tails.sort_unstable();

    let mut new_free = Bitmap::new(n);
    for (r, plan) in plans.iter().enumerate() {
        let keeps_live = matches!(plan, Plan::InPlace(_));
        let receives = fills.contains_key(&r);
        if !keeps_live && !receives && r != alloc_region_after {
            new_free.set(r);
        }
    }

    Schedule {
        plans,
        forwarding,
        zero_tails,
        new_free,
        alloc_region_after,
        alloc_top_after,
        live_objects,
    }
}

// ---- compaction (§4.2 three-step copy with undo-log sources) ----

fn fix_raw(h: &Pjh, schedule: &Schedule, raw: u64) -> u64 {
    let r = Ref::from_raw(raw);
    if !r.is_persistent() || r.addr() < h.layout.base {
        return raw;
    }
    let off = (r.addr() - h.layout.base) as usize;
    match schedule.forwarding.get(&off) {
        Some(&dst) => Ref::new(Space::Persistent, h.layout.to_vaddr(dst)).to_raw(),
        None => raw,
    }
}

fn set_done(h: &Pjh, region: usize, done: &mut Bitmap) {
    done.set(region);
    let word_off = h.layout.region_done_off + (region / 64) * 8;
    let mut word = 0u64;
    for bit in 0..64 {
        let idx = (region / 64) * 64 + bit;
        if idx < done.len() && done.get(idx) {
            word |= 1 << bit;
        }
    }
    h.dev.write_u64(word_off, word);
    pflush(h, word_off, 8);
}

fn fix_object_refs(h: &Pjh, schedule: &Schedule, off: usize) {
    let seg = h.dev.read_u64(off + 8);
    let klass = h
        .klasses
        .klass_by_seg(seg)
        .expect("dangling class word")
        .clone();
    for slot in ref_slots(off, &klass, &h.dev) {
        let raw = h.dev.read_u64(slot);
        let fixed = fix_raw(h, schedule, raw);
        if fixed != raw {
            h.dev.write_u64(slot, fixed);
        }
    }
}

fn execute(h: &Pjh, schedule: &Schedule, ts: u32, resume: bool) -> (usize, usize) {
    let mut done = if resume {
        Bitmap::load_raw(&h.dev, h.layout.region_done_off, h.layout.num_regions)
    } else {
        Bitmap::new(h.layout.num_regions)
    };
    let mut moved = 0;
    let mut in_place = 0;
    for region in 0..h.layout.num_regions {
        match &schedule.plans[region] {
            Plan::Skip => {}
            Plan::InPlace(objs) => {
                if done.get(region) {
                    continue;
                }
                for &(off, words) in objs {
                    let m = h.dev.read_u64(off);
                    if mark::timestamp(m) == ts {
                        continue; // already processed before a crash
                    }
                    fix_object_refs(h, schedule, off);
                    pflush(h, off, words * WORD);
                    h.dev.write_u64(off, mark::with_timestamp(m, ts));
                    pflush(h, off, 8);
                    in_place += 1;
                }
                set_done(h, region, &mut done);
            }
            Plan::Evacuate(objs) => {
                if done.get(region) {
                    continue;
                }
                for &(src, words, dst) in objs {
                    let m = h.dev.read_u64(src);
                    if mark::timestamp(m) == ts {
                        continue; // copied and stamped before a crash
                    }
                    // Step 1: copy the object verbatim; the source is the
                    // undo log until the region's done bit persists.
                    let mut buf = vec![0u8; words * WORD];
                    h.dev.read_bytes(src, &mut buf);
                    h.dev.write_bytes(dst, &buf);
                    // Step 2: rewrite references in the copy.
                    fix_object_refs(h, schedule, dst);
                    pflush(h, dst, words * WORD);
                    // Step 3: stamp — destination first, then source.
                    h.dev.write_u64(dst, mark::with_timestamp(m, ts));
                    pflush(h, dst, 8);
                    h.dev.write_u64(src, mark::with_timestamp(m, ts));
                    pflush(h, src, 8);
                    moved += 1;
                }
                set_done(h, region, &mut done);
            }
        }
    }
    (moved, in_place)
}

fn finalize(h: &mut Pjh, schedule: &Schedule, ts: u32) {
    // Zero destination tails first: the summary walk below (and the
    // object walker generally) must see holes there, not the stale bytes
    // of whatever the region held before it became an evacuation target.
    for &(region, used) in &schedule.zero_tails {
        let start = h.layout.region_start(region) + used;
        let len = h.layout.region_size - used;
        if len > 0 {
            h.dev.fill(start, len, 0);
            pflush(h, start, len);
        }
    }
    // Rewrite the per-region summaries: live accounting from the
    // schedule, plus the death side the v3 allocator rebuilds free lists
    // from. Every retained region is walked counting images stamped
    // below `ts` — execute stamped each live object to `ts`, so an older
    // stamp is a durable death certificate — and records `ts` as its
    // scan timestamp. finalize is re-run in full by recovery, so a crash
    // anywhere in here leaves the table rebuildable (and the torn-write
    // guard keeps partial writes from being trusted).
    let mut summaries = summaries_of_schedule(&h.layout, schedule);
    for (r, s) in summaries.iter_mut().enumerate() {
        if schedule.new_free.get(r) {
            continue;
        }
        s.scan_ts = ts;
        s.reclaimable_words = h
            .harvest_region(r, ts)
            .iter()
            .map(|&(_, words)| words as u32)
            .sum();
    }
    persist_summaries(h, &summaries, ts, true);
    // Forward the name-table roots (idempotent fix rule).
    let fixes: Vec<(String, u64)> = h
        .roots()
        .iter()
        .map(|(n, r)| (n.clone(), fix_raw(h, schedule, r.to_raw())))
        .collect();
    for (name, raw) in fixes {
        h.names
            .set(&h.dev, crate::EntryKind::Root, &name, raw)
            .expect("existing root entry cannot fail to update");
    }
    // Publish the new free bitmap and allocation cursor.
    if h.recoverable_gc {
        schedule.new_free.store_raw(
            &h.dev,
            h.layout.region_free_off,
            h.layout.region_bitmap_bytes,
        );
    }
    h.dev
        .write_u64(meta::ALLOC_REGION, schedule.alloc_region_after as u64);
    h.dev
        .write_u64(meta::ALLOC_TOP, schedule.alloc_top_after as u64);
    pflush(h, meta::ALLOC_REGION, 16);
    // The collection is over.
    h.dev.write_u64(meta::GC_IN_PROGRESS, 0);
    pflush(h, meta::GC_IN_PROGRESS, 8);

    h.free = schedule.new_free.clone();
    h.alloc_region = schedule.alloc_region_after;
    h.alloc_top = schedule.alloc_top_after;
    // The persisted cursor is now exact, so the next allocation must
    // reserve a fresh buffer — a stale watermark above the compacted
    // cursor would let headers become durable beyond the persisted top.
    h.plab_end = schedule.alloc_top_after;
    h.global_ts = ts;
}

/// Auto policy behind [`Pjh::gc`]: incremental whenever dirty tracking
/// has been continuous since a full collection and space pressure is low;
/// full otherwise (fresh/reloaded heaps, or when compaction is needed to
/// open regions).
pub(crate) fn collect_auto(h: &mut Pjh, extra_roots: &[Ref]) -> crate::Result<GcReport> {
    // Space pressure counts the ready free lists alongside free regions:
    // under steady-state churn the lists keep absorbing allocations
    // without opening regions, so compaction stays the rare path.
    let low_space = h.free.count() * 8 < h.layout.num_regions
        && h.free_lists.ready_words() * WORD < h.layout.region_size;
    if h.incremental_ready && !low_space {
        collect_incremental(h, extra_roots)
    } else {
        // The upgrade to a full compaction is deliberate but must not be
        // silent: callers budgeting for an incremental pause can read why
        // they got a full one (remembered sets are DRAM-only, so the
        // first collection after a reload always escalates).
        let reason = if h.incremental_ready {
            GcEscalation::LowSpace
        } else {
            GcEscalation::IncrementalNotReady
        };
        let mut report = collect_full(h, extra_roots)?;
        report.escalation = Some(reason);
        Ok(report)
    }
}

pub(crate) fn collect_full(h: &mut Pjh, extra_roots: &[Ref]) -> crate::Result<GcReport> {
    let stats0 = h.dev.stats();
    h.prune_deferred();
    // Which regions may this collection overwrite? All of them while no
    // read session is pinned; only drained free regions otherwise — a
    // pinned reader's pre-GC refs may still resolve into any region that
    // ever held objects. Persisted below so recovery replays the exact
    // same schedule.
    let pins = h
        .epoch_clock
        .as_ref()
        .and_then(|c| c.min_pinned())
        .is_some();
    let mut usable = Bitmap::new(h.layout.num_regions);
    for r in 0..h.layout.num_regions {
        if !pins || (h.free.get(r) && h.region_reusable(r)) {
            usable.set(r);
        }
    }
    let free_before_gc = h.free.clone();
    let (begin, end) = mark_live(h, extra_roots);
    let ts = h.global_ts.wrapping_add(1);

    if h.recoverable_gc {
        // Persist the summary inputs: mark bitmaps, the overwrite-safety
        // mask, and the pre-GC allocation cursor.
        begin.store(&h.dev, h.layout.mark_begin_off, h.layout.bitmap_bytes);
        end.store(&h.dev, h.layout.mark_end_off, h.layout.bitmap_bytes);
        usable.store_raw(
            &h.dev,
            h.layout.saved_free_off,
            h.layout.region_bitmap_bytes,
        );
        h.dev
            .write_u64(meta::SAVED_ALLOC_REGION, h.alloc_region as u64);
        h.dev.write_u64(meta::SAVED_ALLOC_TOP, h.alloc_top as u64);
        h.dev.persist(meta::SAVED_ALLOC_REGION, 16);
        // Clear the region done bitmap *before* raising the flag.
        h.dev
            .fill(h.layout.region_done_off, h.layout.region_bitmap_bytes, 0);
        h.dev
            .persist(h.layout.region_done_off, h.layout.region_bitmap_bytes);
        // Raise the flag and bump the timestamp together (§4.2: "update and
        // persist the global timestamp ... so that all objects become stale").
        h.dev.write_u64(meta::GLOBAL_TIMESTAMP, ts as u64);
        h.dev.write_u64(meta::GC_IN_PROGRESS, 1);
        h.dev.persist(meta::GLOBAL_TIMESTAMP, 16);
    } else {
        h.dev.write_u64(meta::GLOBAL_TIMESTAMP, ts as u64);
    }

    let schedule = build_schedule(
        &h.layout,
        &begin,
        &end,
        &usable,
        h.alloc_region,
        h.alloc_top,
    );
    // Regions this cycle actually scanned: every non-free region as of the
    // collection's start (captured before finalize installs the post-GC
    // free bitmap).
    let scanned = h.layout.num_regions - h.free.count();
    let (moved, in_place) = execute(h, &schedule, ts, false);
    finalize(h, &schedule, ts);
    h.gc_count += 1;
    h.gc_full_count += 1;

    // Evacuated sources (and every other newly freed region) may still be
    // walked by readers pinned before this point: defer their reuse until
    // the clock drains past the current epoch, then tick the clock so
    // readers arriving after the collection do not hold them back. The
    // same epoch gates the freshly harvested dead slots — a pinned
    // reader's pre-GC refs may still resolve into them. Compaction moved
    // or freed everything the old lists pointed at, so they are rebuilt
    // from scratch out of the summaries finalize just wrote.
    h.free_lists.clear();
    let freed_epoch = h.epoch_clock.as_ref().map(|c| c.now());
    for r in 0..h.layout.num_regions {
        if h.free.get(r) {
            if !free_before_gc.get(r) {
                if let Some(e) = freed_epoch {
                    h.deferred_free.push((e, r));
                }
            }
            continue;
        }
        if h.reuse_enabled && h.summaries[r].reclaimable_words > 0 {
            for (off, words) in h.harvest_region(r, ts) {
                match freed_epoch {
                    Some(e) => h.free_lists.push_deferred(e, off, words),
                    None => h.free_lists.push_ready(off, words),
                }
            }
        }
    }
    if let Some(clock) = h.epoch_clock.clone() {
        clock.advance();
    }
    h.promote_free_list_deferred();

    // Arm incremental collection: dirty tracking restarts from a clean
    // slate; remembered sets are built lazily by the first incremental
    // cycle, so full-only callers never pay that extra heap scan.
    h.remsets = None;
    h.incremental_ready = true;
    h.dirty.clear_all();

    let relocations = schedule
        .forwarding
        .iter()
        .filter(|(src, dst)| src != dst)
        .map(|(&src, &dst)| (h.layout.to_vaddr(src), h.layout.to_vaddr(dst)))
        .collect();
    let stats = h.dev.stats().since(&stats0);
    Ok(GcReport {
        kind: GcKind::Full,
        regions_scanned: scanned,
        regions_skipped: 0,
        live_objects: schedule.live_objects,
        moved_objects: moved,
        in_place_objects: in_place,
        free_regions: h.free.count(),
        relocations,
        pause_flushes: stats.line_flushes,
        pause_sim_ns: stats.simulated_ns,
        escalation: None,
    })
}

pub(crate) fn collect_incremental(h: &mut Pjh, extra_roots: &[Ref]) -> crate::Result<GcReport> {
    let stats0 = h.dev.stats();
    h.prune_deferred();
    let n = h.layout.num_regions;
    // The first incremental cycle after a full collection builds the
    // remembered sets from scratch; later cycles reuse them.
    let fresh = h.remsets.is_none();
    let mut remsets = h.remsets.take().unwrap_or_else(|| vec![Vec::new(); n]);

    // 1. Rescan the regions written since the last cycle, rebuilding
    //    their remembered sets (garbage images included: non-moving cycles
    //    retain them, so their referents must stay pinned).
    let mut regions_scanned = 0;
    let mut regions_skipped = 0;
    for (r, remset) in remsets.iter_mut().enumerate() {
        if h.free.get(r) {
            continue;
        }
        if fresh || h.dirty.get(r) {
            *remset = scan_region_outgoing(h, r);
            regions_scanned += 1;
        } else {
            regions_skipped += 1;
        }
    }

    // 2. Incremental mark: trace object-by-object through dirty regions;
    //    a clean region is opaque — its whole population is retained and
    //    its remembered set stands in for its outgoing references.
    let mut marked = Bitmap::new(h.layout.data_size / WORD);
    let mut clean_touched = vec![false; n];
    let mut live_words = vec![0u64; n];
    let mut live_objects = vec![0u32; n];
    let mut marked_live = 0usize;
    let mut worklist: Vec<usize> = Vec::new();
    let push = |raw: u64, worklist: &mut Vec<usize>| {
        let r = Ref::from_raw(raw);
        if r.is_persistent() && r.addr() >= h.layout.base {
            let off = (r.addr() - h.layout.base) as usize;
            if h.layout.in_data(off) {
                worklist.push(off);
            }
        }
    };
    for (_, r) in h.roots() {
        push(r.to_raw(), &mut worklist);
    }
    for &r in extra_roots {
        push(r.to_raw(), &mut worklist);
    }
    while let Some(off) = worklist.pop() {
        let region = h.layout.region_of(off);
        if h.free.get(region) {
            continue;
        }
        if !h.dirty.get(region) {
            if !clean_touched[region] {
                clean_touched[region] = true;
                worklist.extend(remsets[region].iter().copied());
            }
            continue;
        }
        let w = h.layout.word_of(off);
        if marked.get(w) {
            continue;
        }
        marked.set(w);
        let words = h.object_words_at(off);
        live_words[region] += words as u64;
        live_objects[region] += 1;
        marked_live += 1;
        let klass = {
            let seg = h.dev.read_u64(off + 8);
            h.klasses
                .klass_by_seg(seg)
                .expect("dangling class word")
                .clone()
        };
        for slot in ref_slots(off, &klass, &h.dev) {
            push(h.dev.read_u64(slot), &mut worklist);
        }
    }

    // 3. Region-level pinning: a dirty all-garbage region is reclaimable
    //    only if no retained region references it (retained garbage images
    //    may point into it). Propagate pins until stable.
    let mut freeable: Vec<bool> = (0..n)
        .map(|r| h.dirty.get(r) && !h.free.get(r) && live_objects[r] == 0 && r != h.alloc_region)
        .collect();
    let mut queue: Vec<usize> = (0..n).filter(|&r| !h.free.get(r) && !freeable[r]).collect();
    while let Some(r) = queue.pop() {
        for &t in &remsets[r] {
            let tr = h.layout.region_of(t);
            if freeable[tr] {
                freeable[tr] = false;
                queue.push(tr);
            }
        }
    }

    // 4. Reclaim empty regions wholesale — one persisted free-bit word
    //    each, no object traffic. (They are re-zeroed on reuse, which the
    //    deferred-free list holds off while pinned readers could still
    //    walk their garbage images.) Any free-list slots inside them are
    //    purged: the region-level grant supersedes the slot-level one.
    let freed_epoch = h.epoch_clock.as_ref().map(|c| c.now());
    let mut any_deferred = false;
    for (r, &f) in freeable.iter().enumerate() {
        if f {
            h.free.set(r);
            h.persist_free_bit(r);
            remsets[r].clear();
            h.free_lists
                .purge_range(h.layout.region_start(r), h.layout.region_end(r));
            if let Some(e) = freed_epoch {
                h.deferred_free.push((e, r));
                any_deferred = true;
            }
        }
    }

    // 5. Advance and persist the global timestamp *before* anything is
    //    stamped with `ts` or any summary records `ts` as a scan
    //    timestamp. In the other order a crash in between would leave the
    //    device clock behind `ts`: the free-list rebuild would read
    //    post-reload allocations (stamped with the stale clock) as dead,
    //    and a later full collection reusing `ts` would skip
    //    "already processed" objects mid-compaction.
    let ts = h.global_ts.wrapping_add(1);
    h.dev.write_u64(meta::GLOBAL_TIMESTAMP, ts as u64);
    pflush(h, meta::GLOBAL_TIMESTAMP, 8);

    // 6. Re-stamp live objects and harvest dead slots in the rescanned
    //    regions: once every live image carries `ts`, "stamped below the
    //    region's scan timestamp" is a durable death certificate — the
    //    invariant the on-load free-list rebuild relies on. Only dirty,
    //    still-retained regions pay the walk (and one 8-byte flush per
    //    stale live stamp); clean regions keep their old scan timestamp,
    //    which their old stamps still satisfy. Harvested slots go through
    //    the same epoch gate as freed regions, since pinned readers may
    //    still resolve pre-cycle refs into them.
    let mut reclaimable = vec![0u32; n];
    for (r, recl) in reclaimable.iter_mut().enumerate() {
        if h.free.get(r) || !h.dirty.get(r) {
            continue;
        }
        h.free_lists
            .purge_range(h.layout.region_start(r), h.layout.region_end(r));
        let mut stale_live: Vec<usize> = Vec::new();
        let mut dead: Vec<(usize, usize)> = Vec::new();
        h.for_each_object_in_region(r, |off, _, words| {
            if marked.get(h.layout.word_of(off)) {
                if mark::timestamp(h.dev.read_u64(off)) != ts {
                    stale_live.push(off);
                }
            } else if words < crate::heap::MAX_CLASS_WORDS {
                dead.push((off, words));
            }
        });
        // Restamps are written first and flushed one cache line at a
        // time — the walk yields offsets in address order, so a peek at
        // the next stamp tells whether this line is done. Same lines
        // flushed as a per-stamp loop (never a byte more — wider spans
        // could persist unrelated volatile mutator writes early), but
        // co-resident stamps share a single flush instead of re-dirtying
        // the line between flushes.
        let mut stale = stale_live.iter().peekable();
        while let Some(&off) = stale.next() {
            let m = h.dev.read_u64(off);
            h.dev.write_u64(off, mark::with_timestamp(m, ts));
            let line = off / espresso_nvm::CACHE_LINE;
            if stale
                .peek()
                .is_none_or(|&&next| next / espresso_nvm::CACHE_LINE != line)
            {
                pflush(h, off, 8);
            }
        }
        *recl = dead.iter().map(|&(_, w)| w as u32).sum();
        if h.reuse_enabled {
            for (off, words) in dead {
                match freed_epoch {
                    Some(e) => {
                        h.free_lists.push_deferred(e, off, words);
                        any_deferred = true;
                    }
                    None => h.free_lists.push_ready(off, words),
                }
            }
        }
    }

    // 7. Refresh summaries for rescanned regions; clean regions keep
    //    their previous (conservative) accounting.
    let mut summaries = h.summaries.clone();
    for r in 0..n {
        if freeable[r] {
            summaries[r] = RegionSummary::default();
        } else if h.dirty.get(r) && !h.free.get(r) {
            summaries[r] = RegionSummary {
                live_words: live_words[r] as u32,
                live_objects: live_objects[r],
                reclaimable_words: reclaimable[r],
                scan_ts: ts,
            };
        }
    }
    persist_summaries(h, &summaries, ts, false);

    // 8. Close the cycle: one clock tick covers both the freed regions
    //    and the harvested slots, so readers arriving after the cycle do
    //    not hold them back.
    if any_deferred {
        if let Some(clock) = h.epoch_clock.clone() {
            clock.advance();
        }
    }
    h.promote_free_list_deferred();
    h.global_ts = ts;
    h.dirty.clear_all();
    h.remsets = Some(remsets);
    h.gc_count += 1;

    let live = marked_live
        + clean_touched
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t)
            .map(|(r, _)| h.summaries[r].live_objects as usize)
            .sum::<usize>();
    let stats = h.dev.stats().since(&stats0);
    Ok(GcReport {
        kind: GcKind::Incremental,
        regions_scanned,
        regions_skipped,
        live_objects: live,
        moved_objects: 0,
        in_place_objects: 0,
        free_regions: h.free.count(),
        relocations: HashMap::new(),
        pause_flushes: stats.line_flushes,
        pause_sim_ns: stats.simulated_ns,
        escalation: None,
    })
}

/// §4.3 recovery: rebuild the idempotent summary from the persisted inputs
/// and finish the compaction.
pub(crate) fn recover(h: &mut Pjh) -> crate::Result<()> {
    let ts = h.dev.read_u64(meta::GLOBAL_TIMESTAMP) as u32;
    let words = h.layout.data_size / WORD;
    // Step 1: fetch the mark bitmaps persisted by the marking phase.
    let begin = Bitmap::load(&h.dev, h.layout.mark_begin_off, words);
    let end = Bitmap::load(&h.dev, h.layout.mark_end_off, words);
    let usable = Bitmap::load_raw(&h.dev, h.layout.saved_free_off, h.layout.num_regions);
    let alloc_region = h.dev.read_u64(meta::SAVED_ALLOC_REGION) as usize;
    let alloc_top = h.dev.read_u64(meta::SAVED_ALLOC_TOP) as usize;
    // Step 2: redo the summary (idempotent by construction — the
    // overwrite-safety mask was persisted with the mark bitmaps).
    let schedule = build_schedule(&h.layout, &begin, &end, &usable, alloc_region, alloc_top);
    // Step 3: process the regions not marked done, then finalize.
    execute(h, &schedule, ts, true);
    finalize(h, &schedule, ts);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{LoadOptions, Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};
    use espresso_object::{FieldDesc, KlassId, Ref};

    fn new_heap() -> (NvmDevice, Pjh) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let heap = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, heap)
    }

    fn node(h: &mut Pjh) -> KlassId {
        h.register_instance(
            "Node",
            vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
        )
        .unwrap()
    }

    /// Builds a linked list of `n` nodes rooted at "head", interleaved with
    /// garbage, and returns the expected values head-first.
    fn build_list_with_garbage(h: &mut Pjh, k: KlassId, n: u64) -> Vec<u64> {
        let mut head = Ref::NULL;
        for i in 0..n {
            // garbage neighbours
            let g = h.alloc_instance(k).unwrap();
            h.set_field(g, 0, 0xDEAD);
            let o = h.alloc_instance(k).unwrap();
            h.set_field(o, 0, i);
            h.set_field_ref(o, 1, head).unwrap();
            h.flush_object(o);
            head = o;
        }
        h.set_root("head", head).unwrap();
        (0..n).rev().collect()
    }

    fn read_list(h: &Pjh) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = h.get_root("head").unwrap_or(Ref::NULL);
        while !cur.is_null() {
            out.push(h.field(cur, 0));
            cur = h.field_ref(cur, 1);
        }
        out
    }

    #[test]
    fn gc_preserves_graph_and_reclaims_garbage() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 200);
        let before = h.census();
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.live_objects, 200);
        assert!(report.moved_objects + report.in_place_objects == 200);
        let after = h.census();
        assert!(after.free_regions > before.free_regions);
        assert_eq!(read_list(&h), expect);
        h.verify_integrity().unwrap();
    }

    #[test]
    fn gc_with_no_roots_empties_heap() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        for _ in 0..100 {
            h.alloc_instance(k).unwrap();
        }
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.live_objects, 0);
        assert_eq!(h.census().objects, 0);
    }

    #[test]
    fn allocation_works_after_gc() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 100);
        h.gc(&[]).unwrap();
        for _ in 0..500 {
            h.alloc_instance(k).unwrap();
        }
        h.verify_integrity().unwrap();
        assert_eq!(read_list(&h).len(), 100);
    }

    #[test]
    fn repeated_gcs_stay_consistent() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 50);
        for _ in 0..5 {
            for _ in 0..100 {
                h.alloc_instance(k).unwrap(); // garbage churn
            }
            h.gc(&[]).unwrap();
            assert_eq!(read_list(&h), expect);
            h.verify_integrity().unwrap();
        }
        assert_eq!(h.gc_count(), 5);
    }

    #[test]
    fn extra_roots_keep_objects_and_report_relocations() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let o = h.alloc_instance(k).unwrap();
        h.set_field(o, 0, 42);
        h.flush_object(o);
        // Garbage so the object's region is sparse and gets evacuated.
        for _ in 0..200 {
            h.alloc_instance(k).unwrap();
        }
        let report = h.gc(&[o]).unwrap();
        assert_eq!(report.live_objects, 1);
        let new = report
            .relocations
            .get(&o.addr())
            .map(|&a| Ref::new(espresso_object::Space::Persistent, a))
            .unwrap_or(o);
        assert_eq!(h.field(new, 0), 42);
    }

    #[test]
    fn gc_survives_crash_and_reload_afterwards() {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 120);
        h.gc(&[]).unwrap();
        dev.crash();
        let (h2, report) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert!(!report.recovered_gc, "completed GC needs no recovery");
        assert_eq!(read_list(&h2), expect);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn crash_sweep_through_gc_always_recovers() {
        // The core §4.2/§4.3 property: crash after *any* prefix of the
        // collection's flushes, and recovery must produce exactly the live
        // object graph.
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 60);
        // Count the flushes of a full dry-run GC on a copy of the image.
        let probe_flushes = {
            let probe = NvmDevice::new(NvmConfig::with_size(dev.size()));
            let image = dev.snapshot_persisted();
            probe.write_bytes(0, &image);
            probe.persist(0, image.len());
            probe.reset_stats();
            let (mut hp, _) = Pjh::load(probe.clone(), LoadOptions::default()).unwrap();
            hp.gc(&[]).unwrap();
            assert_eq!(read_list(&hp), expect);
            probe.stats().line_flushes
        };
        assert!(probe_flushes > 10);
        // Sweep crash points (sampled for speed, always including the
        // boundaries and the neighbourhood of every phase transition).
        let mut points: Vec<u64> = (0..probe_flushes).step_by(7).collect();
        points.extend([0, 1, 2, probe_flushes - 2, probe_flushes - 1]);
        points.sort_unstable();
        points.dedup();
        for at in points {
            let trial = NvmDevice::new(NvmConfig::with_size(dev.size()));
            let image = dev.snapshot_persisted();
            trial.write_bytes(0, &image);
            trial.persist(0, image.len());
            let (mut ht, _) = Pjh::load(trial.clone(), LoadOptions::default()).unwrap();
            trial.schedule_crash_after_line_flushes(at);
            ht.gc(&[]).unwrap();
            trial.recover();
            let (h2, _) = Pjh::load(trial, LoadOptions::default()).unwrap();
            assert_eq!(read_list(&h2), expect, "crash after {at} flushes");
            h2.verify_integrity()
                .unwrap_or_else(|e| panic!("crash after {at} flushes: {e}"));
        }
    }

    #[test]
    fn non_recoverable_gc_issues_fewer_flushes() {
        let mk = |recoverable: bool| {
            let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
            let cfg = PjhConfig {
                recoverable_gc: recoverable,
                ..PjhConfig::small()
            };
            let mut h = Pjh::create(dev.clone(), cfg).unwrap();
            let k = node(&mut h);
            let expect = build_list_with_garbage(&mut h, k, 150);
            let report = h.gc(&[]).unwrap();
            assert_eq!(read_list(&h), expect);
            (report.pause_flushes, report.live_objects)
        };
        let (with_flushes, live_a) = mk(true);
        let (without_flushes, live_b) = mk(false);
        assert_eq!(live_a, live_b);
        assert!(
            without_flushes < with_flushes / 2,
            "{without_flushes} vs {with_flushes}"
        );
    }

    #[test]
    fn second_collection_is_incremental_and_reclaims_garbage_regions() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 300);
        let first = h.gc(&[]).unwrap();
        assert_eq!(first.kind, crate::GcKind::Full);
        // Fill several regions with pure garbage.
        for _ in 0..400 {
            h.alloc_instance(k).unwrap();
        }
        let free_before = h.census().free_regions;
        let second = h.gc(&[]).unwrap();
        assert_eq!(second.kind, crate::GcKind::Incremental);
        assert!(
            second.free_regions > free_before,
            "all-garbage regions reclaimed wholesale"
        );
        assert!(second.relocations.is_empty(), "incremental never moves");
        assert_eq!(read_list(&h), expect);
        h.verify_integrity().unwrap();
        // The first incremental cycle built the remembered sets; from the
        // next cycle on, clean regions are skipped outright.
        for _ in 0..50 {
            h.alloc_instance(k).unwrap();
        }
        let third = h.gc(&[]).unwrap();
        assert_eq!(third.kind, crate::GcKind::Incremental);
        assert!(third.regions_skipped > 0, "clean regions must be reused");
        assert_eq!(read_list(&h), expect);
    }

    #[test]
    fn incremental_cycle_flushes_less_than_full() {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 150);
        let full = h.gc(&[]).unwrap();
        assert_eq!(full.kind, crate::GcKind::Full);
        for _ in 0..50 {
            h.alloc_instance(k).unwrap();
        }
        let inc = h.gc(&[]).unwrap();
        assert_eq!(inc.kind, crate::GcKind::Incremental);
        assert!(
            inc.pause_flushes < full.pause_flushes / 2,
            "incremental {} vs full {}",
            inc.pause_flushes,
            full.pause_flushes
        );
        let _ = dev;
    }

    #[test]
    fn incremental_traces_through_clean_regions_via_remsets() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        // A long list spans several regions; after the full collection they
        // are all clean, so the incremental cycle never scans them — the
        // chain survives purely through the remembered sets.
        let expect = build_list_with_garbage(&mut h, k, 300);
        h.gc(&[]).unwrap();
        for _ in 0..200 {
            h.alloc_instance(k).unwrap(); // garbage in freshly dirtied regions
        }
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.kind, crate::GcKind::Incremental);
        assert_eq!(read_list(&h), expect);
        h.verify_integrity().unwrap();

        // A new object referenced from a mutated (dirty) list node must
        // also survive the next incremental cycle — which now reuses the
        // remembered sets the first one built.
        let head = h.get_root("head").unwrap();
        let fresh = h.alloc_instance(k).unwrap();
        h.set_field(fresh, 0, 4242);
        h.flush_object(fresh);
        h.set_field_ref(head, 1, fresh).unwrap();
        h.flush_field(head, 1);
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.kind, crate::GcKind::Incremental);
        assert!(report.regions_skipped > 0, "clean regions must be reused");
        let head2 = h.get_root("head").unwrap();
        assert_eq!(h.field(h.field_ref(head2, 1), 0), 4242);
        h.verify_integrity().unwrap();
    }

    #[test]
    fn low_space_escalates_to_full_compaction() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 20);
        h.gc(&[]).unwrap();
        // Exhaust nearly the whole heap with garbage.
        loop {
            match h.alloc_instance(k) {
                Ok(_) => {}
                Err(crate::PjhError::HeapFull { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let report = h.gc(&[]).unwrap();
        assert_eq!(
            report.kind,
            crate::GcKind::Full,
            "space pressure must force compaction"
        );
        assert!(report.free_regions > h.layout.num_regions / 2);
    }

    #[test]
    fn plab_watermark_resets_after_full_compaction() {
        // Regression: finalize must pull the allocation-buffer watermark
        // back to the exact persisted cursor, or post-GC allocations skip
        // the watermark persist and headers become durable beyond the
        // persisted top.
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 40);
        h.gc_full(&[]).unwrap();
        assert_eq!(h.plab_end, h.alloc_top, "watermark reset by finalize");
        h.gc_full(&[]).unwrap();
        let p = h.alloc_instance(k).unwrap();
        h.set_field(p, 0, 7);
        h.flush_object(p);
        h.set_root("p", p).unwrap();
        let persisted_top = dev.read_u64(crate::layout::meta::ALLOC_TOP) as usize;
        assert!(
            persisted_top >= h.alloc_top,
            "persisted top {persisted_top:#x} behind cursor {:#x}",
            h.alloc_top
        );
        dev.crash();
        let (h2, _) = Pjh::load(dev, crate::LoadOptions::default()).unwrap();
        assert_eq!(h2.field(h2.get_root("p").unwrap(), 0), 7);
        assert_eq!(read_list(&h2), expect);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn summaries_match_scan_after_full_gc() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 80);
        h.gc(&[]).unwrap();
        assert_eq!(h.region_summaries(), h.scan_region_summaries());
    }

    #[test]
    fn timestamps_advance_per_collection() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 10);
        let t0 = h.global_timestamp();
        h.gc(&[]).unwrap();
        assert_eq!(h.global_timestamp(), t0 + 1);
        h.gc(&[]).unwrap();
        assert_eq!(h.global_timestamp(), t0 + 2);
    }
}
