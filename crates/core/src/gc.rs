//! Crash-consistent region-based mark-summarize-compact GC (§4.2, §4.3).
//!
//! The protocol, in persistence order:
//!
//! 1. **Mark** from the name-table roots (plus any VM-supplied DRAM-held
//!    references). The begin/end mark bitmaps — a complete sketch of the
//!    live heap, sizes included — are persisted, along with a snapshot of
//!    the pre-GC free bitmap and allocation cursor (the *summary inputs*).
//! 2. The global timestamp is bumped and persisted together with the
//!    `gc_in_progress` flag; every object in the heap is now stale.
//! 3. **Summary** is a pure function of the persisted inputs, so it is
//!    idempotent: recovery recomputes the identical relocation schedule.
//! 4. **Compact** region by region, in index order. Moving objects are
//!    copied to regions that hold no live data; the source copy acts as an
//!    undo log until the whole region is marked done in the persisted
//!    region bitmap. Each object is stamped with the new timestamp —
//!    destination copy first, then source — so recovery can tell processed
//!    from unprocessed objects. Mostly-live regions are compacted *in
//!    place* (references rewritten through the idempotent forwarding rule,
//!    no copy), which is why forwarding maps destination addresses only
//!    into previously-empty regions: re-applying a fix-up is a no-op.
//! 5. **Finalize**: root entries forwarded, the new free bitmap and
//!    allocation cursor persisted, destination-region tails zeroed, and
//!    the in-progress flag cleared.

use std::collections::{BTreeSet, HashMap};

use espresso_object::{mark, Ref, Space, WORD};

use crate::bitmap::Bitmap;
use crate::heap::{ref_slots, Pjh};
use crate::layout::{meta, Layout};

/// Outcome of a persistent-space collection.
#[derive(Debug, Clone)]
pub struct GcReport {
    /// Live objects found by the marking phase.
    pub live_objects: usize,
    /// Objects physically relocated.
    pub moved_objects: usize,
    /// Live objects compacted in place (references fixed, no copy).
    pub in_place_objects: usize,
    /// Regions free after the collection.
    pub free_regions: usize,
    /// Virtual-address relocations (old → new) for every moved object;
    /// the VM uses this to patch NVM pointers held in DRAM.
    pub relocations: HashMap<u64, u64>,
    /// Cache-line flushes issued during the collection.
    pub pause_flushes: u64,
    /// Simulated NVM nanoseconds consumed by the collection.
    pub pause_sim_ns: u64,
}

#[derive(Debug, Clone)]
enum Plan {
    /// No live objects; nothing to do.
    Skip,
    /// Fix references in place, stamp, mark done.
    InPlace(Vec<(usize, usize)>),
    /// Copy each `(src, words, dst)`, fix, stamp, mark done.
    Evacuate(Vec<(usize, usize, usize)>),
}

#[derive(Debug)]
struct Schedule {
    plans: Vec<Plan>,
    /// Device-offset forwarding, identity entries included for in-place
    /// objects. The fix-up rule `slot = forwarding.get(slot) or slot` is
    /// idempotent because destinations are never forwarding keys.
    forwarding: HashMap<usize, usize>,
    /// Regions that receive data, with their final fill in bytes (tails
    /// are zeroed at finalize for the walker's hole invariant).
    zero_tails: Vec<(usize, usize)>,
    new_free: Bitmap,
    alloc_region_after: usize,
    alloc_top_after: usize,
    live_objects: usize,
}

fn pflush(h: &Pjh, off: usize, len: usize) {
    if h.recoverable_gc {
        h.dev.persist(off, len);
    }
}

// ---- marking (§4.2 "extends the mark bitmap ... must be persisted") ----

fn mark_live(h: &Pjh, extra_roots: &[Ref]) -> (Bitmap, Bitmap) {
    let words = h.layout.data_size / WORD;
    let mut begin = Bitmap::new(words);
    let mut end = Bitmap::new(words);
    let mut worklist: Vec<usize> = Vec::new();

    let push_root = |raw: u64, worklist: &mut Vec<usize>| {
        let r = Ref::from_raw(raw);
        if r.is_persistent() && r.addr() >= h.layout.base {
            let off = (r.addr() - h.layout.base) as usize;
            if h.layout.in_data(off) {
                worklist.push(off);
            }
        }
    };
    for (_, r) in h.roots() {
        push_root(r.to_raw(), &mut worklist);
    }
    for &r in extra_roots {
        push_root(r.to_raw(), &mut worklist);
    }
    while let Some(off) = worklist.pop() {
        let w = h.layout.word_of(off);
        if begin.get(w) {
            continue;
        }
        let words = h.object_words_at(off);
        begin.set(w);
        end.set(w + words - 1);
        let klass = {
            let seg = h.dev.read_u64(off + 8);
            h.klasses
                .klass_by_seg(seg)
                .expect("dangling class word")
                .clone()
        };
        for slot in ref_slots(off, &klass, &h.dev) {
            push_root(h.dev.read_u64(slot), &mut worklist);
        }
    }
    (begin, end)
}

// ---- summary (§4.2: idempotent, derived only from persisted inputs) ----

fn build_schedule(
    layout: &Layout,
    begin: &Bitmap,
    end: &Bitmap,
    free_before: &Bitmap,
    alloc_region_before: usize,
    alloc_top_before: usize,
) -> Schedule {
    let n = layout.num_regions;
    let region_words = layout.region_size / WORD;
    let mut live: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut live_objects = 0;
    let mut b = begin.next_set(0);
    while let Some(w) = b {
        let e = end.next_set(w).expect("begin bit without end bit");
        let words = e - w + 1;
        let off = layout.off_of_word(w);
        live[w / region_words].push((off, words));
        live_objects += 1;
        b = begin.next_set(w + words);
    }

    let mut avail: BTreeSet<usize> = (0..n).filter(|&r| live[r].is_empty()).collect();
    let mut plans: Vec<Plan> = vec![Plan::Skip; n];
    let mut forwarding: HashMap<usize, usize> = HashMap::new();
    let mut dest: Option<(usize, usize)> = None; // (region, fill bytes)
    let mut fills: HashMap<usize, usize> = HashMap::new();
    let mut evacuations = false;

    for r in 0..n {
        if live[r].is_empty() {
            continue;
        }
        let objs = std::mem::take(&mut live[r]);
        let live_bytes: usize = objs.iter().map(|&(_, w)| w * WORD).sum();
        let cur_rem = dest.map(|(_, fill)| layout.region_size - fill).unwrap_or(0);
        let capacity = cur_rem + avail.len() * layout.region_size;
        // Mostly-full regions are not worth copying; regions that cannot
        // fit in the available destinations stay put too.
        let in_place = live_bytes * 4 >= layout.region_size * 3 || live_bytes > capacity;
        if in_place {
            for &(off, _) in &objs {
                forwarding.insert(off, off);
            }
            plans[r] = Plan::InPlace(objs);
            continue;
        }
        let mut moves = Vec::with_capacity(objs.len());
        for (off, words) in objs {
            let bytes = words * WORD;
            let (dr, fill) = match dest {
                Some((dr, fill)) if fill + bytes <= layout.region_size => (dr, fill),
                _ => {
                    let nd = avail.pop_first().expect("capacity was checked");
                    (nd, 0)
                }
            };
            let dst = layout.region_start(dr) + fill;
            dest = Some((dr, fill + bytes));
            fills.insert(dr, fill + bytes);
            forwarding.insert(off, dst);
            moves.push((off, words, dst));
        }
        avail.insert(r);
        plans[r] = Plan::Evacuate(moves);
        evacuations = true;
    }

    let (alloc_region_after, alloc_top_after, mut zero_tails) = if evacuations {
        let (dr, fill) = dest.expect("evacuations imply a destination");
        (dr, layout.region_start(dr) + fill, Vec::new())
    } else if live[alloc_region_before].is_empty()
        && !matches!(plans[alloc_region_before], Plan::InPlace(_))
    {
        // Nothing moved and the allocation region holds only garbage:
        // rewind it (the region is zeroed at finalize).
        (
            alloc_region_before,
            layout.region_start(alloc_region_before),
            vec![(alloc_region_before, 0)],
        )
    } else {
        (alloc_region_before, alloc_top_before, Vec::new())
    };
    for (&dr, &fill) in &fills {
        zero_tails.push((dr, fill));
    }
    zero_tails.sort_unstable();

    let mut new_free = Bitmap::new(n);
    for (r, plan) in plans.iter().enumerate() {
        let keeps_live = matches!(plan, Plan::InPlace(_));
        let receives = fills.contains_key(&r);
        if !keeps_live && !receives && r != alloc_region_after {
            new_free.set(r);
        }
    }

    let _ = free_before; // summary input kept for signature stability
    Schedule {
        plans,
        forwarding,
        zero_tails,
        new_free,
        alloc_region_after,
        alloc_top_after,
        live_objects,
    }
}

// ---- compaction (§4.2 three-step copy with undo-log sources) ----

fn fix_raw(h: &Pjh, schedule: &Schedule, raw: u64) -> u64 {
    let r = Ref::from_raw(raw);
    if !r.is_persistent() || r.addr() < h.layout.base {
        return raw;
    }
    let off = (r.addr() - h.layout.base) as usize;
    match schedule.forwarding.get(&off) {
        Some(&dst) => Ref::new(Space::Persistent, h.layout.to_vaddr(dst)).to_raw(),
        None => raw,
    }
}

fn set_done(h: &Pjh, region: usize, done: &mut Bitmap) {
    done.set(region);
    let word_off = h.layout.region_done_off + (region / 64) * 8;
    let mut word = 0u64;
    for bit in 0..64 {
        let idx = (region / 64) * 64 + bit;
        if idx < done.len() && done.get(idx) {
            word |= 1 << bit;
        }
    }
    h.dev.write_u64(word_off, word);
    pflush(h, word_off, 8);
}

fn fix_object_refs(h: &Pjh, schedule: &Schedule, off: usize) {
    let seg = h.dev.read_u64(off + 8);
    let klass = h
        .klasses
        .klass_by_seg(seg)
        .expect("dangling class word")
        .clone();
    for slot in ref_slots(off, &klass, &h.dev) {
        let raw = h.dev.read_u64(slot);
        let fixed = fix_raw(h, schedule, raw);
        if fixed != raw {
            h.dev.write_u64(slot, fixed);
        }
    }
}

fn execute(h: &Pjh, schedule: &Schedule, ts: u32, resume: bool) -> (usize, usize) {
    let mut done = if resume {
        Bitmap::load_raw(&h.dev, h.layout.region_done_off, h.layout.num_regions)
    } else {
        Bitmap::new(h.layout.num_regions)
    };
    let mut moved = 0;
    let mut in_place = 0;
    for region in 0..h.layout.num_regions {
        match &schedule.plans[region] {
            Plan::Skip => {}
            Plan::InPlace(objs) => {
                if done.get(region) {
                    continue;
                }
                for &(off, words) in objs {
                    let m = h.dev.read_u64(off);
                    if mark::timestamp(m) == ts {
                        continue; // already processed before a crash
                    }
                    fix_object_refs(h, schedule, off);
                    pflush(h, off, words * WORD);
                    h.dev.write_u64(off, mark::with_timestamp(m, ts));
                    pflush(h, off, 8);
                    in_place += 1;
                }
                set_done(h, region, &mut done);
            }
            Plan::Evacuate(objs) => {
                if done.get(region) {
                    continue;
                }
                for &(src, words, dst) in objs {
                    let m = h.dev.read_u64(src);
                    if mark::timestamp(m) == ts {
                        continue; // copied and stamped before a crash
                    }
                    // Step 1: copy the object verbatim; the source is the
                    // undo log until the region's done bit persists.
                    let mut buf = vec![0u8; words * WORD];
                    h.dev.read_bytes(src, &mut buf);
                    h.dev.write_bytes(dst, &buf);
                    // Step 2: rewrite references in the copy.
                    fix_object_refs(h, schedule, dst);
                    pflush(h, dst, words * WORD);
                    // Step 3: stamp — destination first, then source.
                    h.dev.write_u64(dst, mark::with_timestamp(m, ts));
                    pflush(h, dst, 8);
                    h.dev.write_u64(src, mark::with_timestamp(m, ts));
                    pflush(h, src, 8);
                    moved += 1;
                }
                set_done(h, region, &mut done);
            }
        }
    }
    (moved, in_place)
}

fn finalize(h: &mut Pjh, schedule: &Schedule, ts: u32) {
    // Forward the name-table roots (idempotent fix rule).
    let fixes: Vec<(String, u64)> = h
        .roots()
        .iter()
        .map(|(n, r)| (n.clone(), fix_raw(h, schedule, r.to_raw())))
        .collect();
    for (name, raw) in fixes {
        h.names
            .set(&h.dev, crate::EntryKind::Root, &name, raw)
            .expect("existing root entry cannot fail to update");
    }
    // Zero destination tails so the object walker sees holes.
    for &(region, used) in &schedule.zero_tails {
        let start = h.layout.region_start(region) + used;
        let len = h.layout.region_size - used;
        if len > 0 {
            h.dev.fill(start, len, 0);
            pflush(h, start, len);
        }
    }
    // Publish the new free bitmap and allocation cursor.
    if h.recoverable_gc {
        schedule.new_free.store_raw(
            &h.dev,
            h.layout.region_free_off,
            h.layout.region_bitmap_bytes,
        );
    }
    h.dev
        .write_u64(meta::ALLOC_REGION, schedule.alloc_region_after as u64);
    h.dev
        .write_u64(meta::ALLOC_TOP, schedule.alloc_top_after as u64);
    pflush(h, meta::ALLOC_REGION, 16);
    // The collection is over.
    h.dev.write_u64(meta::GC_IN_PROGRESS, 0);
    pflush(h, meta::GC_IN_PROGRESS, 8);

    h.free = schedule.new_free.clone();
    h.alloc_region = schedule.alloc_region_after;
    h.alloc_top = schedule.alloc_top_after;
    h.global_ts = ts;
}

pub(crate) fn collect(h: &mut Pjh, extra_roots: &[Ref]) -> crate::Result<GcReport> {
    let stats0 = h.dev.stats();
    let (begin, end) = mark_live(h, extra_roots);
    let ts = h.global_ts.wrapping_add(1);

    if h.recoverable_gc {
        // Persist the summary inputs: mark bitmaps, the pre-GC free bitmap
        // snapshot, and the pre-GC allocation cursor.
        begin.store(&h.dev, h.layout.mark_begin_off, h.layout.bitmap_bytes);
        end.store(&h.dev, h.layout.mark_end_off, h.layout.bitmap_bytes);
        h.free.store_raw(
            &h.dev,
            h.layout.saved_free_off,
            h.layout.region_bitmap_bytes,
        );
        h.dev
            .write_u64(meta::SAVED_ALLOC_REGION, h.alloc_region as u64);
        h.dev.write_u64(meta::SAVED_ALLOC_TOP, h.alloc_top as u64);
        h.dev.persist(meta::SAVED_ALLOC_REGION, 16);
        // Clear the region done bitmap *before* raising the flag.
        h.dev
            .fill(h.layout.region_done_off, h.layout.region_bitmap_bytes, 0);
        h.dev
            .persist(h.layout.region_done_off, h.layout.region_bitmap_bytes);
        // Raise the flag and bump the timestamp together (§4.2: "update and
        // persist the global timestamp ... so that all objects become stale").
        h.dev.write_u64(meta::GLOBAL_TIMESTAMP, ts as u64);
        h.dev.write_u64(meta::GC_IN_PROGRESS, 1);
        h.dev.persist(meta::GLOBAL_TIMESTAMP, 16);
    } else {
        h.dev.write_u64(meta::GLOBAL_TIMESTAMP, ts as u64);
    }

    let schedule = build_schedule(
        &h.layout,
        &begin,
        &end,
        &h.free,
        h.alloc_region,
        h.alloc_top,
    );
    let (moved, in_place) = execute(h, &schedule, ts, false);
    finalize(h, &schedule, ts);
    h.gc_count += 1;

    let relocations = schedule
        .forwarding
        .iter()
        .filter(|(src, dst)| src != dst)
        .map(|(&src, &dst)| (h.layout.to_vaddr(src), h.layout.to_vaddr(dst)))
        .collect();
    let stats = h.dev.stats().since(&stats0);
    Ok(GcReport {
        live_objects: schedule.live_objects,
        moved_objects: moved,
        in_place_objects: in_place,
        free_regions: h.free.count(),
        relocations,
        pause_flushes: stats.line_flushes,
        pause_sim_ns: stats.simulated_ns,
    })
}

/// §4.3 recovery: rebuild the idempotent summary from the persisted inputs
/// and finish the compaction.
pub(crate) fn recover(h: &mut Pjh) -> crate::Result<()> {
    let ts = h.dev.read_u64(meta::GLOBAL_TIMESTAMP) as u32;
    let words = h.layout.data_size / WORD;
    // Step 1: fetch the mark bitmaps persisted by the marking phase.
    let begin = Bitmap::load(&h.dev, h.layout.mark_begin_off, words);
    let end = Bitmap::load(&h.dev, h.layout.mark_end_off, words);
    let saved_free = Bitmap::load_raw(&h.dev, h.layout.saved_free_off, h.layout.num_regions);
    let alloc_region = h.dev.read_u64(meta::SAVED_ALLOC_REGION) as usize;
    let alloc_top = h.dev.read_u64(meta::SAVED_ALLOC_TOP) as usize;
    // Step 2: redo the summary (idempotent by construction).
    let schedule = build_schedule(
        &h.layout,
        &begin,
        &end,
        &saved_free,
        alloc_region,
        alloc_top,
    );
    // Step 3: process the regions not marked done, then finalize.
    execute(h, &schedule, ts, true);
    finalize(h, &schedule, ts);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{LoadOptions, Pjh, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};
    use espresso_object::{FieldDesc, KlassId, Ref};

    fn new_heap() -> (NvmDevice, Pjh) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let heap = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, heap)
    }

    fn node(h: &mut Pjh) -> KlassId {
        h.register_instance(
            "Node",
            vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
        )
        .unwrap()
    }

    /// Builds a linked list of `n` nodes rooted at "head", interleaved with
    /// garbage, and returns the expected values head-first.
    fn build_list_with_garbage(h: &mut Pjh, k: KlassId, n: u64) -> Vec<u64> {
        let mut head = Ref::NULL;
        for i in 0..n {
            // garbage neighbours
            let g = h.alloc_instance(k).unwrap();
            h.set_field(g, 0, 0xDEAD);
            let o = h.alloc_instance(k).unwrap();
            h.set_field(o, 0, i);
            h.set_field_ref(o, 1, head).unwrap();
            h.flush_object(o);
            head = o;
        }
        h.set_root("head", head).unwrap();
        (0..n).rev().collect()
    }

    fn read_list(h: &Pjh) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = h.get_root("head").unwrap_or(Ref::NULL);
        while !cur.is_null() {
            out.push(h.field(cur, 0));
            cur = h.field_ref(cur, 1);
        }
        out
    }

    #[test]
    fn gc_preserves_graph_and_reclaims_garbage() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 200);
        let before = h.census();
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.live_objects, 200);
        assert!(report.moved_objects + report.in_place_objects == 200);
        let after = h.census();
        assert!(after.free_regions > before.free_regions);
        assert_eq!(read_list(&h), expect);
        h.verify_integrity().unwrap();
    }

    #[test]
    fn gc_with_no_roots_empties_heap() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        for _ in 0..100 {
            h.alloc_instance(k).unwrap();
        }
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.live_objects, 0);
        assert_eq!(h.census().objects, 0);
    }

    #[test]
    fn allocation_works_after_gc() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 100);
        h.gc(&[]).unwrap();
        for _ in 0..500 {
            h.alloc_instance(k).unwrap();
        }
        h.verify_integrity().unwrap();
        assert_eq!(read_list(&h).len(), 100);
    }

    #[test]
    fn repeated_gcs_stay_consistent() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 50);
        for _ in 0..5 {
            for _ in 0..100 {
                h.alloc_instance(k).unwrap(); // garbage churn
            }
            h.gc(&[]).unwrap();
            assert_eq!(read_list(&h), expect);
            h.verify_integrity().unwrap();
        }
        assert_eq!(h.gc_count(), 5);
    }

    #[test]
    fn extra_roots_keep_objects_and_report_relocations() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        let o = h.alloc_instance(k).unwrap();
        h.set_field(o, 0, 42);
        h.flush_object(o);
        // Garbage so the object's region is sparse and gets evacuated.
        for _ in 0..200 {
            h.alloc_instance(k).unwrap();
        }
        let report = h.gc(&[o]).unwrap();
        assert_eq!(report.live_objects, 1);
        let new = report
            .relocations
            .get(&o.addr())
            .map(|&a| Ref::new(espresso_object::Space::Persistent, a))
            .unwrap_or(o);
        assert_eq!(h.field(new, 0), 42);
    }

    #[test]
    fn gc_survives_crash_and_reload_afterwards() {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 120);
        h.gc(&[]).unwrap();
        dev.crash();
        let (h2, report) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert!(!report.recovered_gc, "completed GC needs no recovery");
        assert_eq!(read_list(&h2), expect);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn crash_sweep_through_gc_always_recovers() {
        // The core §4.2/§4.3 property: crash after *any* prefix of the
        // collection's flushes, and recovery must produce exactly the live
        // object graph.
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        let expect = build_list_with_garbage(&mut h, k, 60);
        // Count the flushes of a full dry-run GC on a copy of the image.
        let probe_flushes = {
            let probe = NvmDevice::new(NvmConfig::with_size(dev.size()));
            let image = dev.snapshot_persisted();
            probe.write_bytes(0, &image);
            probe.persist(0, image.len());
            probe.reset_stats();
            let (mut hp, _) = Pjh::load(probe.clone(), LoadOptions::default()).unwrap();
            hp.gc(&[]).unwrap();
            assert_eq!(read_list(&hp), expect);
            probe.stats().line_flushes
        };
        assert!(probe_flushes > 10);
        // Sweep crash points (sampled for speed, always including the
        // boundaries and the neighbourhood of every phase transition).
        let mut points: Vec<u64> = (0..probe_flushes).step_by(7).collect();
        points.extend([0, 1, 2, probe_flushes - 2, probe_flushes - 1]);
        points.sort_unstable();
        points.dedup();
        for at in points {
            let trial = NvmDevice::new(NvmConfig::with_size(dev.size()));
            let image = dev.snapshot_persisted();
            trial.write_bytes(0, &image);
            trial.persist(0, image.len());
            let (mut ht, _) = Pjh::load(trial.clone(), LoadOptions::default()).unwrap();
            trial.schedule_crash_after_line_flushes(at);
            ht.gc(&[]).unwrap();
            trial.recover();
            let (h2, _) = Pjh::load(trial, LoadOptions::default()).unwrap();
            assert_eq!(read_list(&h2), expect, "crash after {at} flushes");
            h2.verify_integrity()
                .unwrap_or_else(|e| panic!("crash after {at} flushes: {e}"));
        }
    }

    #[test]
    fn non_recoverable_gc_issues_fewer_flushes() {
        let mk = |recoverable: bool| {
            let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
            let cfg = PjhConfig {
                recoverable_gc: recoverable,
                ..PjhConfig::small()
            };
            let mut h = Pjh::create(dev.clone(), cfg).unwrap();
            let k = node(&mut h);
            let expect = build_list_with_garbage(&mut h, k, 150);
            let report = h.gc(&[]).unwrap();
            assert_eq!(read_list(&h), expect);
            (report.pause_flushes, report.live_objects)
        };
        let (with_flushes, live_a) = mk(true);
        let (without_flushes, live_b) = mk(false);
        assert_eq!(live_a, live_b);
        assert!(
            without_flushes < with_flushes / 2,
            "{without_flushes} vs {with_flushes}"
        );
    }

    #[test]
    fn timestamps_advance_per_collection() {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_list_with_garbage(&mut h, k, 10);
        let t0 = h.global_timestamp();
        h.gc(&[]).unwrap();
        assert_eq!(h.global_timestamp(), t0 + 1);
        h.gc(&[]).unwrap();
        assert_eq!(h.global_timestamp(), t0 + 2);
    }
}
