//! The `Pjh` type: allocation, field access, roots, safety, loading.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use espresso_nvm::NvmDevice;
use espresso_object::{
    mark, FieldDesc, Klass, KlassId, ObjKind, Ref, Space, ARRAY_HEADER_WORDS, HEADER_WORDS, WORD,
};

use crate::bitmap::Bitmap;
use crate::gc::RegionSummary;
use crate::klass_segment::PKlassTable;
use crate::layout::{meta, Layout};
use crate::name_table::{EntryKind, NameTable};
use crate::{PjhConfig, PjhError};

/// Marker placed in the first word of a filler (region padding). Real mark
/// words never have the top bit set in NVM, so the walker can tell fillers,
/// objects, and holes apart.
pub(crate) const FILLER_FLAG: u64 = 1 << 63;

/// The memory-safety levels of §3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SafetyLevel {
    /// No checking: users must not follow volatile pointers after a reload.
    /// Fastest loading (§6.4: constant in the number of objects).
    #[default]
    UserGuaranteed,
    /// On load, every pointer leaving the persistent heap is nullified, so
    /// a stale access surfaces as a null dereference instead of undefined
    /// behaviour. Loading scans the whole heap (§6.4: linear in objects).
    Zeroing,
    /// Only classes explicitly marked persistent-capable may be allocated
    /// with `pnew`, and persistent objects may never store volatile
    /// references (the NV-heaps-style closed world).
    TypeBased,
}

/// Options for [`Pjh::load`].
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// Safety level to enforce for the loaded heap.
    pub safety: SafetyLevel,
    /// Map the heap at a different virtual base than its address hint,
    /// simulating the paper's "address occupied by the normal heap" case;
    /// forces a whole-heap pointer remap (§3.3).
    pub base_override: Option<u64>,
}

/// What happened during [`Pjh::load`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// A crashed collection was found and completed (§4.3).
    pub recovered_gc: bool,
    /// The heap was remapped to a new base and every pointer rewritten.
    pub remapped: bool,
    /// Out-pointers nullified by the zeroing-safety scan.
    pub zeroed_refs: usize,
    /// Klasses reinitialized in place from the Klass segment.
    pub klasses_reloaded: usize,
    /// Objects visited while loading (0 under user-guaranteed safety:
    /// loading never touches objects).
    pub objects_scanned: usize,
}

/// Point-in-time heap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapCensus {
    /// Reachable-or-not objects physically present in non-free regions.
    pub objects: usize,
    /// Words occupied by those objects.
    pub object_words: usize,
    /// Regions currently free.
    pub free_regions: usize,
    /// Regions in total.
    pub total_regions: usize,
    /// Klasses in the persistent Klass segment.
    pub segment_klasses: usize,
}

/// Allocator and collector statistics: the v3 allocation path made "where
/// do bytes come from" a real question (bump cursor vs. reused dead
/// slot), so this snapshot exposes both sides plus the reclamation state
/// that gates them. Cheap to take — no heap walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Words bump-allocated so far in the current allocation region.
    pub bump_top_words: usize,
    /// Regions currently free.
    pub free_regions: usize,
    /// Regions in total.
    pub total_regions: usize,
    /// Dead slots ready for reuse across all size classes.
    pub free_list_slots: usize,
    /// Words those ready slots cover.
    pub free_list_words: usize,
    /// Ready-slot occupancy per size class, `(words, slots)`, non-empty
    /// classes only, ascending by class.
    pub free_list_by_class: Vec<(usize, usize)>,
    /// Harvested slots still parked behind pinned read sessions.
    pub deferred_slots: usize,
    /// Freed regions still parked behind pinned read sessions.
    pub deferred_regions: usize,
    /// Allocations served from the free lists since this heap opened.
    pub reused_slots: u64,
    /// Collections completed (full + incremental).
    pub gc_count: u64,
    /// Full compacting collections completed (a subset of `gc_count`).
    pub gc_full_count: u64,
}

impl HeapStats {
    /// Folds `other` into `self` (per-shard aggregation). Per-class
    /// occupancies merge by size class.
    pub fn merge(&mut self, other: &HeapStats) {
        self.bump_top_words += other.bump_top_words;
        self.free_regions += other.free_regions;
        self.total_regions += other.total_regions;
        self.free_list_slots += other.free_list_slots;
        self.free_list_words += other.free_list_words;
        for &(words, slots) in &other.free_list_by_class {
            match self
                .free_list_by_class
                .binary_search_by_key(&words, |c| c.0)
            {
                Ok(i) => self.free_list_by_class[i].1 += slots,
                Err(i) => self.free_list_by_class.insert(i, (words, slots)),
            }
        }
        self.deferred_slots += other.deferred_slots;
        self.deferred_regions += other.deferred_regions;
        self.reused_slots += other.reused_slots;
        self.gc_count += other.gc_count;
        self.gc_full_count += other.gc_full_count;
    }

    /// One-line human-readable rendering for replay summaries and logs.
    pub fn summary_line(&self) -> String {
        format!(
            "bump {}w, free-lists {} slots/{}w in {} classes (+{} deferred), \
             reused {}, regions {}/{} free (+{} deferred), gc {} ({} full)",
            self.bump_top_words,
            self.free_list_slots,
            self.free_list_words,
            self.free_list_by_class.len(),
            self.deferred_slots,
            self.reused_slots,
            self.free_regions,
            self.total_regions,
            self.deferred_regions,
            self.gc_count,
            self.gc_full_count,
        )
    }
}

/// Largest object size (in words, exclusive) served by the free lists.
/// One exact-fit class per word count keeps reuse walk-preserving — a
/// replacement object occupies exactly the dead image's span — and lets
/// the ready-class mask fit one machine word. Bigger dead slots wait for
/// a compaction.
pub(crate) const MAX_CLASS_WORDS: usize = 64;

/// Per-size-class free lists over dead object slots (the v3 allocation
/// path). DRAM-only by design: entries are *derived* from persisted state
/// (an object image whose mark timestamp predates its region's last scan
/// is durably dead), so on load the lists are rebuilt from the region
/// summaries instead of being crash-atomic themselves.
#[derive(Debug, Clone)]
pub(crate) struct FreeLists {
    /// `ready[w]`: device offsets of reusable dead slots of exactly `w`
    /// words, popped LIFO.
    ready: Vec<Vec<usize>>,
    /// Bit `w` set ⇔ `ready[w]` is non-empty, so the allocation fast path
    /// costs one mask test on a miss.
    nonempty: u64,
    /// Slots harvested while read sessions could still walk their old
    /// contents: `(epoch, offset, words)`, promoted to `ready` once the
    /// clock drains past the epoch (the slot-granular analogue of
    /// `Pjh::deferred_free`).
    deferred: Vec<(u64, usize, usize)>,
    /// Allocations served from `ready` since this heap opened.
    reused: u64,
}

impl FreeLists {
    pub(crate) fn new() -> FreeLists {
        FreeLists {
            ready: vec![Vec::new(); MAX_CLASS_WORDS],
            nonempty: 0,
            deferred: Vec::new(),
            reused: 0,
        }
    }

    pub(crate) fn clear(&mut self) {
        for list in &mut self.ready {
            list.clear();
        }
        self.nonempty = 0;
        self.deferred.clear();
    }

    pub(crate) fn push_ready(&mut self, off: usize, words: usize) {
        if words < MAX_CLASS_WORDS {
            self.ready[words].push(off);
            self.nonempty |= 1 << words;
        }
    }

    pub(crate) fn push_deferred(&mut self, epoch: u64, off: usize, words: usize) {
        if words < MAX_CLASS_WORDS {
            self.deferred.push((epoch, off, words));
        }
    }

    pub(crate) fn take(&mut self, words: usize) -> Option<usize> {
        let off = self.ready[words].pop()?;
        if self.ready[words].is_empty() {
            self.nonempty &= !(1 << words);
        }
        Some(off)
    }

    /// Drops every entry (ready and deferred) inside `[start, end)` —
    /// called when a region is freed wholesale or rescanned for a fresh
    /// harvest, so a slot can never be listed twice or outlive its region.
    pub(crate) fn purge_range(&mut self, start: usize, end: usize) {
        for (w, list) in self.ready.iter_mut().enumerate() {
            if list.is_empty() {
                continue;
            }
            list.retain(|&off| off < start || off >= end);
            if list.is_empty() {
                self.nonempty &= !(1 << w);
            }
        }
        self.deferred
            .retain(|&(_, off, _)| off < start || off >= end);
    }

    pub(crate) fn ready_slots(&self) -> usize {
        self.ready.iter().map(Vec::len).sum()
    }

    pub(crate) fn ready_words(&self) -> usize {
        self.ready
            .iter()
            .enumerate()
            .map(|(w, l)| w * l.len())
            .sum()
    }

    pub(crate) fn deferred_slots(&self) -> usize {
        self.deferred.len()
    }

    pub(crate) fn by_class(&self) -> Vec<(usize, usize)> {
        self.ready
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(w, l)| (w, l.len()))
            .collect()
    }
}

/// A Persistent Java Heap bound to one NVM device.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Pjh {
    pub(crate) dev: NvmDevice,
    pub(crate) layout: Layout,
    pub(crate) klasses: PKlassTable,
    pub(crate) names: NameTable,
    pub(crate) alloc_region: usize,
    pub(crate) alloc_top: usize,
    /// Exclusive end of the current allocation buffer: the persisted
    /// replica of the allocation top covers everything below this
    /// watermark, so allocations inside the buffer are pure DRAM bumps.
    pub(crate) plab_end: usize,
    pub(crate) plab_size: usize,
    pub(crate) free: Bitmap,
    /// Regions written (allocation or stores) since the last collection.
    /// DRAM-only: a reload conservatively invalidates the incremental
    /// state, forcing the next collection to be a full one.
    pub(crate) dirty: Bitmap,
    /// Per-region outgoing cross-region references (device offsets) of
    /// every object physically present in the region, as of the last
    /// collection's scan. Built lazily by the first incremental cycle
    /// after a full collection (so full-only callers never pay the scan).
    pub(crate) remsets: Option<Vec<Vec<usize>>>,
    /// Whether dirty tracking has been continuous since the last full
    /// collection, making incremental cycles sound. Cleared on load and by
    /// anything that rewrites references behind the tracking.
    pub(crate) incremental_ready: bool,
    /// DRAM mirror of the persisted per-region summary table.
    pub(crate) summaries: Vec<RegionSummary>,
    pub(crate) global_ts: u32,
    pub(crate) safety: SafetyLevel,
    pub(crate) recoverable_gc: bool,
    pub(crate) persistent_capable: HashSet<String>,
    pub(crate) gc_count: u64,
    /// Undo-log transaction state (see [`crate::txn`]): the NVM log is
    /// published under a reserved root, this is its DRAM mirror.
    pub(crate) txn: crate::txn::TxnState,
    /// Typed-layer session state (see [`crate::typed`]): schemas validated
    /// against the persisted fingerprints this session, plus the
    /// marker-type → klass-id resolution cache. DRAM-only; a reload
    /// forgets it, so every schema is re-validated after a load.
    pub(crate) schemas: crate::typed::SchemaCache,
    /// Reclamation clock shared with the owning handle's read sessions
    /// (see `HeapHandle::read`). `None` for raw heaps with no handle —
    /// then nothing can pin, and every free region is immediately
    /// reusable.
    pub(crate) epoch_clock: Option<Arc<espresso_nvm::EpochClock>>,
    /// Regions freed by GC at a given clock epoch, still possibly visible
    /// to readers pinned at or before it. A free region listed here may
    /// not be zeroed, reallocated, or used as an evacuation target until
    /// the clock [drains](espresso_nvm::EpochClock::drained) past its
    /// epoch. DRAM-only: after a crash or reload no reader survives, so
    /// the persisted free bitmap alone is the truth.
    pub(crate) deferred_free: Vec<(u64, usize)>,
    /// Generation counter over **reader-visible** DRAM metadata: the
    /// klass registry, name table mirror, schema cache, safety level, and
    /// post-GC root/region state. Bumped by the mutators that change what
    /// a published read replica would contain; a closing `WriteSession`
    /// republishes only when it moved, so plain object stores and
    /// allocations never pay the replica clone.
    pub(crate) meta_gen: u64,
    /// The v3 allocation path: per-size-class free lists over dead object
    /// slots, fed by GC harvests and consulted by `alloc_raw` before the
    /// bump cursor. DRAM-only — rebuilt from the persisted region
    /// summaries on load, never crash-atomic itself.
    pub(crate) free_lists: FreeLists,
    /// DRAM-only knob: when `false`, `alloc_raw` never consults the free
    /// lists (the bump-only baseline the churn benchmark compares
    /// against). Persisted state is identical either way.
    pub(crate) reuse_enabled: bool,
    /// Full (compacting) collections completed, a subset of `gc_count` —
    /// the number the free lists are supposed to drive toward zero under
    /// steady-state churn.
    pub(crate) gc_full_count: u64,
}

impl fmt::Debug for Pjh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pjh")
            .field("data_size", &self.layout.data_size)
            .field("region_size", &self.layout.region_size)
            .field("alloc_region", &self.alloc_region)
            .field("global_ts", &self.global_ts)
            .finish()
    }
}

impl Pjh {
    // ---- lifecycle ----

    /// Formats `dev` as a fresh persistent heap (the work behind
    /// `createHeap`, §3.3).
    ///
    /// # Errors
    ///
    /// [`PjhError::HeapTooSmall`] if the device cannot hold the layout.
    pub fn create(dev: NvmDevice, config: PjhConfig) -> crate::Result<Pjh> {
        let layout = Layout::compute(dev.size(), &config)?;
        layout.write_meta(&dev);
        dev.write_u64(meta::PLAB_SIZE, config.plab_size as u64);
        dev.persist(meta::PLAB_SIZE, 8);
        // All regions free except region 0, the initial allocation region.
        let mut free = Bitmap::new(layout.num_regions);
        for i in 1..layout.num_regions {
            free.set(i);
        }
        free.store_raw(&dev, layout.region_free_off, layout.region_bitmap_bytes);
        // Region 0 must be zero for the walker's hole invariant.
        dev.fill(layout.region_start(0), layout.region_size, 0);
        dev.persist(layout.region_start(0), layout.region_size);
        // The summary table starts out all-zero (no live data anywhere).
        dev.fill(layout.region_summary_off, layout.region_summary_bytes, 0);
        dev.persist(layout.region_summary_off, layout.region_summary_bytes);
        let names = NameTable::attach(&dev, &layout);
        let klasses = PKlassTable::attach(&dev, &layout);
        Ok(Pjh {
            dev,
            layout,
            klasses,
            names,
            alloc_region: 0,
            alloc_top: layout.data_off,
            plab_end: layout.data_off,
            plab_size: config.plab_size,
            free,
            dirty: Bitmap::new(layout.num_regions),
            remsets: None,
            incremental_ready: false,
            summaries: vec![RegionSummary::default(); layout.num_regions],
            global_ts: 1,
            safety: SafetyLevel::UserGuaranteed,
            recoverable_gc: config.recoverable_gc,
            persistent_capable: HashSet::new(),
            gc_count: 0,
            txn: crate::txn::TxnState::default(),
            schemas: crate::typed::SchemaCache::default(),
            epoch_clock: None,
            deferred_free: Vec::new(),
            meta_gen: 0,
            free_lists: FreeLists::new(),
            reuse_enabled: config.alloc_reuse,
            gc_full_count: 0,
        })
    }

    /// Loads an existing heap image from `dev` (the work behind
    /// `loadHeap`, §3.3): reads the metadata area, reinitializes Klasses in
    /// place, completes a crashed collection if one is pending (§4.3),
    /// remaps pointers if the base address changed, and runs the
    /// zeroing-safety scan when requested (§3.4).
    ///
    /// # Errors
    ///
    /// [`PjhError::NotAHeap`] if the image is not a formatted heap.
    pub fn load(dev: NvmDevice, options: LoadOptions) -> crate::Result<(Pjh, LoadReport)> {
        let layout = Layout::read_meta(&dev)?;
        let stored_base = layout.base;
        let klasses = PKlassTable::attach(&dev, &layout);
        let names = NameTable::attach(&dev, &layout);
        let free = Bitmap::load_raw(&dev, layout.region_free_off, layout.num_regions);
        let mut report = LoadReport {
            klasses_reloaded: klasses.segment_klasses(),
            ..LoadReport::default()
        };
        let watermark = dev.read_u64(meta::ALLOC_TOP) as usize;
        let mut heap = Pjh {
            alloc_region: dev.read_u64(meta::ALLOC_REGION) as usize,
            alloc_top: watermark,
            plab_end: watermark,
            plab_size: dev.read_u64(meta::PLAB_SIZE) as usize,
            global_ts: dev.read_u64(meta::GLOBAL_TIMESTAMP) as u32,
            safety: options.safety,
            recoverable_gc: true,
            persistent_capable: HashSet::new(),
            gc_count: 0,
            txn: crate::txn::TxnState::default(),
            schemas: crate::typed::SchemaCache::default(),
            epoch_clock: None,
            deferred_free: Vec::new(),
            meta_gen: 0,
            free_lists: FreeLists::new(),
            reuse_enabled: true,
            gc_full_count: 0,
            dirty: Bitmap::new(layout.num_regions),
            remsets: None,
            incremental_ready: false,
            summaries: vec![RegionSummary::default(); layout.num_regions],
            dev,
            layout,
            klasses,
            names,
            free,
        };

        // §4.3: finish a crashed collection before anything reads objects.
        if heap.dev.read_u64(meta::GC_IN_PROGRESS) != 0 {
            crate::gc::recover(&mut heap)?;
            report.recovered_gc = true;
            heap.free = Bitmap::load_raw(
                &heap.dev,
                heap.layout.region_free_off,
                heap.layout.num_regions,
            );
            heap.alloc_region = heap.dev.read_u64(meta::ALLOC_REGION) as usize;
            // Recovery's finalize persisted the exact cursor (no buffer in
            // flight), so the watermark equals the true top.
            heap.alloc_top = heap.dev.read_u64(meta::ALLOC_TOP) as usize;
            heap.plab_end = heap.alloc_top;
        } else {
            // The persisted cursor is an allocation-buffer watermark: it may
            // run ahead of the last persisted object. Walk the (single)
            // allocation region to find the true end of the allocated
            // prefix, then resume allocating there — the gap up to the
            // watermark is still zeroed, so no object can hide beyond it.
            heap.alloc_top = heap.rewind_alloc_top(watermark);
        }
        heap.summaries = heap.read_summaries();
        // Rebuild the v3 free lists from the summaries (both the clean
        // and the recovered-GC path land here): a region's `scan_ts`
        // names the collection that last proved deaths in it, so every
        // image stamped strictly below it is durably dead and reusable.
        // Objects allocated after that scan carry newer stamps and are
        // skipped, which also makes slots reused-then-crashed invisible.
        heap.rebuild_free_lists();

        // §3.3: remap if the address hint is unavailable.
        if let Some(new_base) = options.base_override {
            if new_base != stored_base {
                // Roll back any transaction torn into the image *before*
                // rebasing: live undo records hold stored-base slot
                // addresses (and stored-base reference values), which
                // stop being meaningful the moment the heap moves. The
                // caller's post-load `txn_recover` then finds a clean log.
                heap.txn_recover()?;
                heap.remap(stored_base, new_base);
                heap.layout.base = new_base;
                report.remapped = true;
            }
        }

        // §3.4: zeroing safety nullifies every out-pointer.
        if matches!(options.safety, SafetyLevel::Zeroing) {
            let (scanned, zeroed) = heap.zeroing_scan();
            report.objects_scanned = scanned;
            report.zeroed_refs = zeroed;
        }

        Ok((heap, report))
    }

    fn remap(&mut self, old_base: u64, new_base: u64) {
        let delta_off: Vec<(usize, u64)> = {
            let mut writes = Vec::new();
            self.for_each_object_off(|off, klass, _| {
                for slot in ref_slots(off, klass, &self.dev) {
                    let r = Ref::from_raw(self.dev.read_u64(slot));
                    if r.is_persistent() {
                        let device_off = r.addr() - old_base;
                        writes.push((
                            slot,
                            Ref::new(Space::Persistent, new_base + device_off).to_raw(),
                        ));
                    }
                }
            });
            writes
        };
        for (slot, raw) in delta_off {
            self.dev.write_u64(slot, raw);
            self.dev.persist(slot, 8);
        }
        self.names.rewrite_values(&self.dev, EntryKind::Root, |v| {
            let r = Ref::from_raw(v);
            if r.is_persistent() {
                Ref::new(Space::Persistent, new_base + (r.addr() - old_base)).to_raw()
            } else {
                v
            }
        });
        self.dev.write_u64(meta::ADDRESS_HINT, new_base);
        self.dev.persist(meta::ADDRESS_HINT, 8);
    }

    fn zeroing_scan(&mut self) -> (usize, usize) {
        let mut scanned = 0;
        let mut nulls: Vec<usize> = Vec::new();
        let layout = self.layout;
        self.for_each_object_off(|off, klass, _| {
            scanned += 1;
            for slot in ref_slots(off, klass, &self.dev) {
                let r = Ref::from_raw(self.dev.read_u64(slot));
                if r.is_null() {
                    continue;
                }
                let out = if r.is_volatile() {
                    true
                } else {
                    let a = r.addr();
                    a < layout.base || !layout.in_data((a - layout.base) as usize)
                };
                if out {
                    nulls.push(slot);
                }
            }
        });
        for &slot in &nulls {
            self.dev.write_u64(slot, Ref::NULL.to_raw());
            self.dev.persist(slot, 8);
        }
        self.names.rewrite_values(&self.dev, EntryKind::Root, |v| {
            let r = Ref::from_raw(v);
            if r.is_volatile() {
                Ref::NULL.to_raw()
            } else {
                v
            }
        });
        (scanned, nulls.len())
    }

    /// Walks the allocation region's object images up to `watermark` and
    /// returns the device offset of the first hole — the true allocation
    /// top after a crash mid-buffer. Bounded by one region, so loading
    /// stays O(region) regardless of heap size (§6.4).
    fn rewind_alloc_top(&self, watermark: usize) -> usize {
        let start = self.layout.region_start(self.alloc_region);
        let region_end = self.layout.region_end(self.alloc_region);
        let end = region_end.min(watermark);
        let mut pos = start;
        while pos + (HEADER_WORDS * WORD) <= end {
            let w0 = self.dev.read_u64(pos);
            if w0 & FILLER_FLAG != 0 {
                pos += ((w0 & !FILLER_FLAG) as usize) * WORD;
                continue;
            }
            if self.dev.read_u64(pos + 8) == 0 {
                return pos;
            }
            pos += self.object_words_at(pos) * WORD;
        }
        // A persisted filler can span past the watermark (it always runs to
        // the region end, and the crash may have hit before the region
        // switch it precedes became durable). The walker will forever skip
        // that span, so nothing may ever be allocated inside it: treat the
        // region as exhausted rather than resuming mid-span.
        if pos > end {
            region_end
        } else {
            pos
        }
    }

    fn read_summaries(&self) -> Vec<RegionSummary> {
        if self.dev.read_u64(meta::SUMMARY_TS) == 0 {
            return vec![RegionSummary::default(); self.layout.num_regions];
        }
        (0..self.layout.num_regions)
            .map(|i| {
                let entry = self.layout.region_summary_entry(i);
                RegionSummary::unpack(self.dev.read_u64(entry), self.dev.read_u64(entry + 8))
            })
            .collect()
    }

    /// Collects the reusable dead slots of region `r`: object images
    /// whose mark timestamp is strictly below `scan_ts` (the region's
    /// last death-proving scan) and whose size fits a free-list class.
    /// Fillers are skipped by the walker. Pure read — shared by the GC
    /// harvest and the rebuild-on-load path so the two provably agree.
    pub(crate) fn harvest_region(&self, r: usize, scan_ts: u32) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.for_each_object_in_region(r, |off, _, words| {
            if words < MAX_CLASS_WORDS && mark::timestamp(self.dev.read_u64(off)) < scan_ts {
                out.push((off, words));
            }
        });
        out
    }

    /// Rebuilds the free lists from the persisted region summaries — the
    /// load-time half of the v3 allocator's "derive, don't persist"
    /// contract. No reader can be pinned on a freshly loaded heap, so
    /// every harvested slot goes straight to ready.
    fn rebuild_free_lists(&mut self) {
        self.free_lists.clear();
        if !self.reuse_enabled {
            return;
        }
        for r in 0..self.layout.num_regions {
            let s = self.summaries[r];
            if self.free.get(r) || s.reclaimable_words == 0 {
                continue;
            }
            for (off, words) in self.harvest_region(r, s.scan_ts) {
                self.free_lists.push_ready(off, words);
            }
        }
    }

    /// Marks the region containing `off` as written since the last
    /// collection (a DRAM-only bit; see [`Pjh::dirty`]).
    #[inline]
    pub(crate) fn mark_dirty_off(&mut self, off: usize) {
        self.dirty.set(self.layout.region_of(off));
    }

    /// Drops the incremental-collection state; the next collection will be
    /// a full one. Called by every operation that rewrites references
    /// behind the collector's back (remap, zeroing, VM pointer patching).
    fn invalidate_incremental_state(&mut self) {
        self.remsets = None;
        self.incremental_ready = false;
        self.dirty.clear_all();
    }

    // ---- class registration ----

    /// Registers an instance class (the volatile side of class loading).
    ///
    /// # Errors
    ///
    /// [`PjhError::KlassLayoutMismatch`] if the heap already persisted a
    /// different layout for this name.
    pub fn register_instance(
        &mut self,
        name: &str,
        fields: Vec<FieldDesc>,
    ) -> crate::Result<KlassId> {
        self.meta_gen += 1;
        self.klasses.register_instance(name, fields)
    }

    /// Fast path for repeated allocations: the id of an already-registered
    /// class, without re-validating its layout (the moral equivalent of a
    /// resolved constant-pool entry).
    pub fn lookup_klass(&self, name: &str) -> Option<KlassId> {
        self.klasses.registry().by_name(name).map(|k| k.id())
    }

    /// Registers the object-array class for `elem_name`.
    pub fn register_obj_array(&mut self, elem_name: &str) -> KlassId {
        self.meta_gen += 1;
        self.klasses.register_obj_array(elem_name)
    }

    /// Registers the primitive array class.
    pub fn register_prim_array(&mut self) -> KlassId {
        self.meta_gen += 1;
        self.klasses.register_prim_array()
    }

    /// Marks a class as allowed under [`SafetyLevel::TypeBased`] (§3.4's
    /// annotation library).
    pub fn mark_persistent_capable(&mut self, name: &str) {
        self.meta_gen += 1;
        self.persistent_capable.insert(name.to_string());
    }

    /// The klass of an object.
    ///
    /// # Panics
    ///
    /// Panics on null or foreign references.
    pub fn klass_of(&self, r: Ref) -> Arc<Klass> {
        let off = self.obj_off(r);
        let seg = self.dev.read_u64(off + 8);
        self.resolve_seg(seg).expect("dangling class word")
    }

    /// Class-word resolution with the replica-miss fallback: the DRAM
    /// map first, then the persisted segment itself. A frozen replica
    /// can trail the live segment — readers observe object data live,
    /// so they may reach an instance of a class whose record was
    /// appended after the replica snapshot; the record commits before
    /// any class word referencing it is written, so the segment walk
    /// resolves every legitimate word (see
    /// [`PKlassTable::parse_by_seg`](crate::klass_segment::PKlassTable::parse_by_seg)).
    pub(crate) fn resolve_seg(&self, seg: u64) -> Option<Arc<Klass>> {
        if let Some(k) = self.klasses.klass_by_seg(seg) {
            return Some(k.clone());
        }
        self.klasses.parse_by_seg(&self.dev, &self.layout, seg)
    }

    // ---- epoch-deferred reclamation (read sessions) ----

    /// Binds the reclamation clock read sessions pin against. Called once
    /// by the owning `HeapHandle` before the heap goes behind its lock.
    pub(crate) fn attach_epoch_clock(&mut self, clock: Arc<espresso_nvm::EpochClock>) {
        self.epoch_clock = Some(clock);
    }

    /// Whether every reader pinned at or before `epoch` is gone. With no
    /// clock attached nothing can pin, so everything is drained.
    pub(crate) fn epoch_drained(&self, epoch: u64) -> bool {
        self.epoch_clock.as_ref().is_none_or(|c| c.drained(epoch))
    }

    /// Whether a free region may actually be rewritten: either it was
    /// never deferred, or every reader that could still walk its old
    /// contents has unpinned.
    pub(crate) fn region_reusable(&self, region: usize) -> bool {
        self.deferred_free
            .iter()
            .all(|&(e, r)| r != region || self.epoch_drained(e))
    }

    /// Drops deferred-free entries whose epoch has drained, preserving
    /// the push order of the survivors (a single pass; the clock is
    /// cloned out so the retain predicate can consult it directly).
    pub(crate) fn prune_deferred(&mut self) {
        let Some(clock) = self.epoch_clock.clone() else {
            self.deferred_free.clear();
            return;
        };
        self.deferred_free.retain(|&(e, _)| !clock.drained(e));
    }

    /// Moves free-list slots parked behind pinned readers to the ready
    /// lists once their epoch drains; undrained entries keep their order.
    pub(crate) fn promote_free_list_deferred(&mut self) {
        if self.free_lists.deferred.is_empty() {
            return;
        }
        let clock = self.epoch_clock.clone();
        let parked = std::mem::take(&mut self.free_lists.deferred);
        for (epoch, off, words) in parked {
            if clock.as_ref().is_none_or(|c| c.drained(epoch)) {
                self.free_lists.push_ready(off, words);
            } else {
                self.free_lists.deferred.push((epoch, off, words));
            }
        }
    }

    /// An owned snapshot of this heap's DRAM state sharing the same
    /// device, for publication to lock-free read sessions. Replicas are
    /// read-only by contract: `ReadSession` never hands out `&mut`.
    pub(crate) fn read_replica(&self) -> Pjh {
        Pjh {
            dev: self.dev.clone(),
            layout: self.layout,
            klasses: self.klasses.clone(),
            names: self.names.clone(),
            alloc_region: self.alloc_region,
            alloc_top: self.alloc_top,
            plab_end: self.plab_end,
            plab_size: self.plab_size,
            free: self.free.clone(),
            dirty: self.dirty.clone(),
            remsets: self.remsets.clone(),
            incremental_ready: self.incremental_ready,
            summaries: self.summaries.clone(),
            global_ts: self.global_ts,
            safety: self.safety,
            recoverable_gc: self.recoverable_gc,
            persistent_capable: self.persistent_capable.clone(),
            gc_count: self.gc_count,
            txn: self.txn.clone(),
            schemas: self.schemas.clone(),
            epoch_clock: self.epoch_clock.clone(),
            deferred_free: self.deferred_free.clone(),
            meta_gen: self.meta_gen,
            free_lists: self.free_lists.clone(),
            reuse_enabled: self.reuse_enabled,
            gc_full_count: self.gc_full_count,
        }
    }

    // ---- allocation (§4.1) ----

    fn acquire_alloc_region(&mut self) -> crate::Result<()> {
        self.prune_deferred();
        // Skip free regions still visible to pinned readers: zeroing one
        // under a reader that holds pre-GC refs into it would be a
        // use-after-reclaim. When every free region is held back, report
        // the heap full — the allocation succeeds once readers drain.
        let mut cursor = 0;
        let next = loop {
            let Some(r) = self.free.next_set(cursor) else {
                return Err(PjhError::HeapFull { requested_words: 0 });
            };
            if self.region_reusable(r) {
                break r;
            }
            cursor = r + 1;
        };
        let start = self.layout.region_start(next);
        // Zero the region so the walker's hole invariant holds, persist it,
        // then take it and move the cursor.
        self.dev.fill(start, self.layout.region_size, 0);
        self.dev.persist(start, self.layout.region_size);
        self.free.clear(next);
        self.persist_free_bit(next);
        self.alloc_region = next;
        self.alloc_top = start;
        self.plab_end = start;
        self.dev.write_u64(meta::ALLOC_REGION, next as u64);
        self.dev.write_u64(meta::ALLOC_TOP, self.alloc_top as u64);
        self.dev.persist(meta::ALLOC_REGION, 16);
        Ok(())
    }

    pub(crate) fn persist_free_bit(&mut self, region: usize) {
        let word_off = self.layout.region_free_off + (region / 64) * 8;
        let mut word = 0u64;
        for bit in 0..64 {
            let idx = (region / 64) * 64 + bit;
            if idx < self.free.len() && self.free.get(idx) {
                word |= 1 << bit;
            }
        }
        self.dev.write_u64(word_off, word);
        self.dev.persist(word_off, 8);
    }

    /// Returns `(offset, reused)`. A reused slot comes back as a durable
    /// filler of exactly `words` with a zeroed body; the caller must
    /// install the class word (and array length) *before* flipping word 0
    /// from filler to mark, so the region walk parses at every crash
    /// point. Bump-path slots keep the §4.1 header order.
    fn alloc_raw(&mut self, words: usize) -> crate::Result<(usize, bool)> {
        let bytes = words * WORD;
        if bytes > self.layout.region_size {
            return Err(PjhError::ObjectTooLarge {
                requested_words: words,
            });
        }
        if let Some(off) = self.try_reuse(words) {
            return Ok((off, true));
        }
        let region_end = self.layout.region_end(self.alloc_region);
        if self.alloc_top + bytes > region_end {
            // Pad the tail with a filler object so the walker can skip it.
            let rem_words = (region_end - self.alloc_top) / WORD;
            if rem_words > 0 {
                self.dev
                    .write_u64(self.alloc_top, FILLER_FLAG | rem_words as u64);
                self.dev.persist(self.alloc_top, 8);
            }
            self.acquire_alloc_region().map_err(|e| match e {
                PjhError::HeapFull { .. } => PjhError::HeapFull {
                    requested_words: words,
                },
                other => other,
            })?;
        }
        if self.alloc_top + bytes > self.plab_end {
            // §4.1 step 2, batched: the persisted replica of `top` advances
            // a whole allocation buffer at a time, *before* any header in
            // the buffer is initialized. A crash can never expose an object
            // that recovery would truncate, and the unused tail of the
            // buffer stays zeroed, so the walker sees a hole there.
            self.plab_end = self
                .layout
                .region_end(self.alloc_region)
                .min(self.alloc_top + bytes.max(self.plab_size));
            self.dev.write_u64(meta::ALLOC_TOP, self.plab_end as u64);
            self.dev.persist(meta::ALLOC_TOP, 8);
        }
        let off = self.alloc_top;
        self.alloc_top += bytes;
        self.dirty.set(self.alloc_region);
        Ok((off, false))
    }

    /// The v3 fast path: pop an exact-fit dead slot if one is ready. A
    /// miss costs one mask test and touches no device state — the PLAB
    /// cursor-persist batching (and its flush-count guarantees) are
    /// unchanged whenever the lists are empty.
    fn try_reuse(&mut self, words: usize) -> Option<usize> {
        if !self.reuse_enabled || words >= MAX_CLASS_WORDS {
            return None;
        }
        if self.free_lists.nonempty & (1u64 << words) == 0 {
            // Slots parked behind pinned readers are promoted lazily, on
            // the first miss that could have used one.
            if self.free_lists.deferred.is_empty() {
                return None;
            }
            self.promote_free_list_deferred();
            if self.free_lists.nonempty & (1u64 << words) == 0 {
                return None;
            }
        }
        let off = self.free_lists.take(words).expect("ready bit was set");
        // Re-cover the dead image as a filler of the same width first —
        // one atomic word write, so the region walk skips the slot
        // identically whatever the body holds — then zero the body (the
        // old image's class word, array length, and stale fields must
        // not survive under the new header; a zeroed body is also what
        // the field-default contract promises). The filler must be
        // durable before any body state is: otherwise a crash could
        // persist a zeroed class word under the *old* mark word, which
        // the walker would read as a hole, truncating the region walk.
        // The body zeroes themselves are NOT persisted here — under a
        // durable filler word the walker skips `words` words without
        // reading the body, so every torn body image is invisible until
        // the mark-word flip reveals it. The caller folds the zeroes
        // into its class-word persist, saving a flush per reuse.
        self.dev.write_u64(off, FILLER_FLAG | words as u64);
        self.dev.persist(off, 8);
        self.dev.fill(off + 8, (words - 1) * WORD, 0);
        self.dirty.set(self.layout.region_of(off));
        self.free_lists.reused += 1;
        Some(off)
    }

    /// Allocates an instance of `kid` in NVM — the `pnew` bytecode (§3.2).
    ///
    /// The body is zeroed; the header (mark word with the current global
    /// timestamp, class word pointing into the Klass segment) is persisted
    /// as §4.1 step 3.
    ///
    /// # Errors
    ///
    /// [`PjhError::HeapFull`] (collect and retry),
    /// [`PjhError::ObjectTooLarge`], Klass-segment and safety errors.
    pub fn alloc_instance(&mut self, kid: KlassId) -> crate::Result<Ref> {
        let klass = self
            .klasses
            .registry()
            .by_id(kid)
            .expect("unknown klass")
            .clone();
        if matches!(self.safety, SafetyLevel::TypeBased)
            && !self.persistent_capable.contains(klass.name())
        {
            return Err(PjhError::SafetyViolation {
                reason: format!("class {} is not marked persistent-capable", klass.name()),
            });
        }
        // §4.1 step 1: resolve the Klass (appending its record on first use).
        // A first-use append extends the seg→klass map that read replicas
        // resolve class words through, so it must bump `meta_gen`; repeat
        // allocations of an already-segged klass stay replica-clone-free.
        let first_use = self.klasses.seg_of(kid).is_none();
        let seg = self
            .klasses
            .ensure_in_segment(&self.dev, &self.layout, &mut self.names, kid)?;
        if first_use {
            self.meta_gen += 1;
        }
        let words = klass.instance_words();
        let (off, reused) = self.alloc_raw(words)?;
        if reused {
            // The slot is still a durable filler: persist the class word
            // and the zeroed fields together under its cover (one range
            // flush — `try_reuse` left the body writes volatile), then
            // flip word 0 to the mark — one atomic write that turns the
            // filler into the new object. Committing the mark first
            // could crash into a mark-over-zero-class image, which the
            // walker reads as a hole.
            self.dev.write_u64(off + 8, seg);
            self.dev.persist(off + 8, (words - 1) * WORD);
            self.dev.write_u64(off, mark::new(self.global_ts));
            self.dev.persist(off, WORD);
        } else {
            self.dev.write_u64(off, mark::new(self.global_ts));
            self.dev.write_u64(off + 8, seg);
            self.dev.persist(off, HEADER_WORDS * WORD);
        }
        Ok(Ref::new(Space::Persistent, self.layout.to_vaddr(off)))
    }

    /// Allocates an array of `len` elements — `panewarray`/`pnewarray`.
    ///
    /// # Errors
    ///
    /// Same as [`alloc_instance`](Self::alloc_instance).
    pub fn alloc_array(&mut self, kid: KlassId, len: usize) -> crate::Result<Ref> {
        let klass = self
            .klasses
            .registry()
            .by_id(kid)
            .expect("unknown klass")
            .clone();
        let first_use = self.klasses.seg_of(kid).is_none();
        let seg = self
            .klasses
            .ensure_in_segment(&self.dev, &self.layout, &mut self.names, kid)?;
        if first_use {
            self.meta_gen += 1;
        }
        let words = klass.array_words(len);
        let (off, reused) = self.alloc_raw(words)?;
        if reused {
            // Same commit order as reused instances: class word, length,
            // and the zeroed elements persist together under the filler
            // cover, then the mark write atomically reveals the new
            // array. The length word rides the same ordering argument as
            // the body zeroes — a torn length under a durable filler is
            // never read, and under the mark it is already durable.
            self.dev.write_u64(off + 8, seg);
            self.dev.write_u64(off + 16, len as u64);
            self.dev.persist(off + 8, (words - 1) * WORD);
            self.dev.write_u64(off, mark::new(self.global_ts));
            self.dev.persist(off, WORD);
        } else {
            self.dev.write_u64(off, mark::new(self.global_ts));
            self.dev.write_u64(off + 8, seg);
            self.dev.write_u64(off + 16, len as u64);
            self.dev.persist(off, ARRAY_HEADER_WORDS * WORD);
        }
        Ok(Ref::new(Space::Persistent, self.layout.to_vaddr(off)))
    }

    // ---- field access ----

    pub(crate) fn obj_off(&self, r: Ref) -> usize {
        assert!(r.is_persistent(), "persistent heap got {r:?}");
        let off = self.layout.to_off(r.addr());
        assert!(
            self.layout.in_data(off),
            "reference outside data heap: {r:?}"
        );
        off
    }

    /// Debug-build field-index check whose panic names the klass, its
    /// field count, and the offending index — a bare `assertion failed`
    /// on an index is undiagnosable from test logs.
    #[inline]
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub(crate) fn debug_check_field(&self, r: Ref, index: usize) {
        #[cfg(debug_assertions)]
        {
            let klass = self.klass_of(r);
            assert!(
                !klass.is_array(),
                "field access (index {index}) on array klass {} at {r:?}",
                klass.name()
            );
            assert!(
                index < klass.fields().len(),
                "field index {index} out of range for klass {} ({} fields) at {r:?}",
                klass.name(),
                klass.fields().len()
            );
        }
    }

    /// Reads raw field `index`.
    ///
    /// Field offsets are uniform (`HEADER_WORDS + index`), so the hot path
    /// is a single device read; the Klass-level index check runs under
    /// debug assertions only, mirroring how verified bytecode skips
    /// per-access re-validation.
    ///
    /// # Panics
    ///
    /// Panics on null refs; debug builds also panic on out-of-range
    /// indices, naming the klass and index.
    pub fn field(&self, r: Ref, index: usize) -> u64 {
        let off = self.obj_off(r);
        self.debug_check_field(r, index);
        self.dev.read_u64(off + (HEADER_WORDS + index) * WORD)
    }

    /// Writes raw field `index` (volatile until flushed; see
    /// [`flush_field`](Self::flush_field)).
    ///
    /// # Panics
    ///
    /// Panics on null refs; debug builds also panic on out-of-range
    /// indices, naming the klass and index.
    pub fn set_field(&mut self, r: Ref, index: usize, value: u64) {
        let off = self.obj_off(r);
        self.debug_check_field(r, index);
        self.mark_dirty_off(off);
        self.dev
            .write_u64(off + (HEADER_WORDS + index) * WORD, value);
    }

    /// Reads reference field `index`.
    pub fn field_ref(&self, r: Ref, index: usize) -> Ref {
        Ref::from_raw(self.field(r, index))
    }

    /// Writes reference field `index`.
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] under [`SafetyLevel::TypeBased`] when
    /// storing a volatile reference into a persistent object.
    pub fn set_field_ref(&mut self, r: Ref, index: usize, value: Ref) -> crate::Result<()> {
        self.check_store(value)?;
        self.set_field(r, index, value.to_raw());
        Ok(())
    }

    fn check_store(&self, value: Ref) -> crate::Result<()> {
        if matches!(self.safety, SafetyLevel::TypeBased) && value.is_volatile() {
            return Err(PjhError::SafetyViolation {
                reason: "type-based safety forbids NVM-to-DRAM pointers".to_string(),
            });
        }
        Ok(())
    }

    /// Length of an array object.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `r` is not an array.
    pub fn array_len(&self, r: Ref) -> usize {
        let off = self.obj_off(r);
        debug_assert!(
            self.klass_of(r).is_array(),
            "array access on instance klass {} at {r:?}",
            self.klass_of(r).name()
        );
        self.dev.read_u64(off + 16) as usize
    }

    /// Reads array element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds, naming the array klass (the format
    /// arguments are only evaluated on failure, so the klass lookup costs
    /// nothing on the hot path).
    pub fn array_get(&self, r: Ref, i: usize) -> u64 {
        let off = self.obj_off(r);
        let len = self.array_len(r);
        assert!(
            i < len,
            "array index {i} out of bounds (len {len}) for klass {} at {r:?}",
            self.klass_of(r).name()
        );
        self.dev.read_u64(off + (ARRAY_HEADER_WORDS + i) * WORD)
    }

    /// Writes array element `i` (primitive).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds, naming the array klass.
    pub fn array_set(&mut self, r: Ref, i: usize, value: u64) {
        let off = self.obj_off(r);
        let len = self.array_len(r);
        assert!(
            i < len,
            "array index {i} out of bounds (len {len}) for klass {} at {r:?}",
            self.klass_of(r).name()
        );
        self.mark_dirty_off(off);
        self.dev
            .write_u64(off + (ARRAY_HEADER_WORDS + i) * WORD, value);
    }

    /// Reads array element `i` as a reference.
    pub fn array_get_ref(&self, r: Ref, i: usize) -> Ref {
        Ref::from_raw(self.array_get(r, i))
    }

    /// Writes array element `i` as a reference.
    ///
    /// # Errors
    ///
    /// Same safety rules as [`set_field_ref`](Self::set_field_ref).
    pub fn array_set_ref(&mut self, r: Ref, i: usize, value: Ref) -> crate::Result<()> {
        self.check_store(value)?;
        self.array_set(r, i, value.to_raw());
        Ok(())
    }

    // ---- persistence guarantee (§3.5) ----

    /// Persists one field: `Field.flush` of Figure 12 (8-byte flush +
    /// fence, preserving atomicity and order).
    pub fn flush_field(&self, r: Ref, index: usize) {
        let off = self.obj_off(r);
        self.debug_check_field(r, index);
        self.dev.persist(off + (HEADER_WORDS + index) * WORD, WORD);
    }

    /// Persists one array element: `Array.flush` of Figure 12.
    pub fn flush_element(&self, r: Ref, i: usize) {
        let off = self.obj_off(r);
        self.dev
            .persist(off + (ARRAY_HEADER_WORDS + i) * WORD, WORD);
    }

    /// Persists every data word of the object with a single trailing fence
    /// — the coarse-grained `Object.flush` (§3.5).
    pub fn flush_object(&self, r: Ref) {
        let off = self.obj_off(r);
        let words = self.object_words_at(off);
        self.dev.flush(off, words * WORD);
        self.dev.fence();
    }

    // ---- raw word access (for libraries building logs atop PJH) ----

    /// Reads the word at a virtual address inside the data heap.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the data heap.
    pub fn read_word_at(&self, vaddr: u64) -> u64 {
        let off = self.layout.to_off(vaddr);
        assert!(
            self.layout.in_data(off),
            "address {vaddr:#x} outside data heap"
        );
        self.dev.read_u64(off)
    }

    /// Writes the word at a virtual address inside the data heap
    /// (volatile until flushed).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the data heap.
    pub fn write_word_at(&mut self, vaddr: u64, value: u64) {
        let off = self.layout.to_off(vaddr);
        assert!(
            self.layout.in_data(off),
            "address {vaddr:#x} outside data heap"
        );
        self.mark_dirty_off(off);
        self.dev.write_u64(off, value);
    }

    /// Writes a reference-valued word at a virtual address, enforcing the
    /// configured safety level (the raw-word counterpart of
    /// [`set_field_ref`](Self::set_field_ref), for libraries that compute
    /// slot addresses themselves).
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] under [`SafetyLevel::TypeBased`] when
    /// storing a volatile reference.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the data heap.
    pub fn write_ref_word_at(&mut self, vaddr: u64, value: Ref) -> crate::Result<()> {
        self.check_store(value)?;
        self.write_word_at(vaddr, value.to_raw());
        Ok(())
    }

    /// Flush-and-fence the word at a virtual address.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the data heap.
    pub fn persist_word_at(&self, vaddr: u64) {
        let off = self.layout.to_off(vaddr);
        assert!(
            self.layout.in_data(off),
            "address {vaddr:#x} outside data heap"
        );
        self.dev.persist(off, WORD);
    }

    /// Flush-and-fence `len` bytes starting at a virtual address with a
    /// single trailing fence — lets log writers batch a multi-word record
    /// into one persist instead of one per word.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the data heap.
    pub fn persist_range_at(&self, vaddr: u64, len: usize) {
        let off = self.layout.to_off(vaddr);
        assert!(
            len > 0 && self.layout.in_data(off) && self.layout.in_data(off + len - 1),
            "range {vaddr:#x}+{len} outside data heap"
        );
        self.dev.persist(off, len);
    }

    // ---- roots (§3.3) ----

    /// Publishes `r` under `name` — `setRoot`.
    ///
    /// # Errors
    ///
    /// Name-table errors; a safety violation for volatile refs under
    /// type-based safety.
    pub fn set_root(&mut self, name: &str, r: Ref) -> crate::Result<()> {
        self.check_store(r)?;
        self.meta_gen += 1;
        self.names.set(&self.dev, EntryKind::Root, name, r.to_raw())
    }

    /// Fetches a root — `getRoot`. Returns `None` for unknown names and
    /// for roots nullified by the zeroing scan.
    pub fn get_root(&self, name: &str) -> Option<Ref> {
        let raw = self.names.get(&self.dev, EntryKind::Root, name)?;
        let r = Ref::from_raw(raw);
        (!r.is_null()).then_some(r)
    }

    /// Removes a root; returns whether it existed.
    pub fn remove_root(&mut self, name: &str) -> bool {
        self.meta_gen += 1;
        self.names.remove(&self.dev, EntryKind::Root, name)
    }

    /// All root names with their current values.
    pub fn roots(&self) -> Vec<(String, Ref)> {
        self.names
            .entries(&self.dev, EntryKind::Root)
            .into_iter()
            .map(|(n, v)| (n, Ref::from_raw(v)))
            .collect()
    }

    // ---- GC ----

    /// Collects the persistent space. `extra_roots` are additional live
    /// references (the VM passes every NVM pointer held in DRAM).
    ///
    /// Picks the cheapest sound collection: once a full collection has
    /// built per-region summaries and remembered sets, later cycles run
    /// **incrementally** — only regions written since the previous cycle
    /// are rescanned, wholly-garbage regions are reclaimed without touching
    /// their objects, and nothing moves. A full mark-summarize-compact
    /// cycle (§4.2) runs when the incremental state is unavailable (fresh
    /// or reloaded heap) or free regions run low (compaction needed).
    ///
    /// # Errors
    ///
    /// Propagates device errors; the collection itself cannot fail.
    pub fn gc(&mut self, extra_roots: &[Ref]) -> crate::Result<crate::GcReport> {
        self.gc_txn_guard()?;
        let report = crate::gc::collect_auto(self, extra_roots)?;
        self.relocate_txn_log(&report);
        // Roots were forwarded and regions freed: stale replicas must not
        // outlive this section (a fresh session's pin does not hold the
        // newly freed regions back).
        self.meta_gen += 1;
        Ok(report)
    }

    /// Forces a full compacting collection (§4.2), regardless of
    /// incremental state. Use when maximum reclamation matters more than
    /// pause time (e.g. before snapshotting a heap image).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn gc_full(&mut self, extra_roots: &[Ref]) -> crate::Result<crate::GcReport> {
        self.gc_txn_guard()?;
        let report = crate::gc::collect_full(self, extra_roots)?;
        self.relocate_txn_log(&report);
        self.meta_gen += 1;
        Ok(report)
    }

    /// Collections are refused while a transaction is open: live undo
    /// records hold absolute slot addresses, so compaction moving their
    /// objects would make a later abort (or crash recovery) write through
    /// stale addresses. Commit or abort first.
    fn gc_txn_guard(&self) -> crate::Result<()> {
        if self.txn.active {
            return Err(crate::PjhError::SafetyViolation {
                reason: "garbage collection during an active transaction: live undo records \
                         pin absolute slot addresses"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Re-points the cached undo-log reference after a compacting
    /// collection moved the log array.
    fn relocate_txn_log(&mut self, report: &crate::GcReport) {
        if let Some(log) = self.txn.log {
            if let Some(&new) = report.relocations.get(&log.addr()) {
                self.txn.log = Some(Ref::new(Space::Persistent, new));
            }
        }
    }

    /// The per-region live summaries as persisted in the metadata segment
    /// (live words / live objects per region, as of the last collection;
    /// conservative between collections).
    pub fn region_summaries(&self) -> Vec<RegionSummary> {
        self.read_summaries()
    }

    /// Recomputes per-region live summaries with a from-scratch
    /// reachability scan (no cached state). The persisted table must agree
    /// with this immediately after a completed or recovered collection.
    pub fn scan_region_summaries(&self) -> Vec<RegionSummary> {
        crate::gc::scan_summaries(self)
    }

    // ---- iteration, census, verification ----

    /// Size in words of the object at device offset `off`.
    pub(crate) fn object_words_at(&self, off: usize) -> usize {
        let seg = self.dev.read_u64(off + 8);
        let k = self.resolve_seg(seg).expect("dangling class word");
        match k.kind() {
            ObjKind::Instance => k.instance_words(),
            _ => k.array_words(self.dev.read_u64(off + 16) as usize),
        }
    }

    /// Walks every object image physically present in region `region`
    /// (including unreachable ones left behind by in-place compaction).
    pub(crate) fn for_each_object_in_region(
        &self,
        region: usize,
        mut f: impl FnMut(usize, &Arc<Klass>, usize),
    ) {
        let start = self.layout.region_start(region);
        let end = self.layout.region_end(region);
        let mut pos = start;
        while pos + (HEADER_WORDS * WORD) <= end {
            let w0 = self.dev.read_u64(pos);
            if w0 & FILLER_FLAG != 0 {
                pos += ((w0 & !FILLER_FLAG) as usize) * WORD;
                continue;
            }
            let seg = self.dev.read_u64(pos + 8);
            if seg == 0 {
                break; // hole: end of allocated prefix
            }
            let klass = self
                .resolve_seg(seg)
                .unwrap_or_else(|| panic!("corrupt class word {seg:#x} at offset {pos:#x}"));
            let words = match klass.kind() {
                ObjKind::Instance => klass.instance_words(),
                _ => klass.array_words(self.dev.read_u64(pos + 16) as usize),
            };
            f(pos, &klass, words);
            pos += words * WORD;
        }
    }

    /// Walks every object image in non-free regions.
    pub(crate) fn for_each_object_off(&self, mut f: impl FnMut(usize, &Arc<Klass>, usize)) {
        for region in 0..self.layout.num_regions {
            if !self.free.get(region) {
                self.for_each_object_in_region(region, &mut f);
            }
        }
    }

    /// Visits every object as `(ref, klass)`.
    pub fn for_each_object(&self, mut f: impl FnMut(Ref, &Arc<Klass>)) {
        self.for_each_object_off(|off, klass, _| {
            f(
                Ref::new(Space::Persistent, self.layout.to_vaddr(off)),
                klass,
            );
        });
    }

    /// Rewrites every reference slot in the heap through `f` (no flushing:
    /// the VM uses this to patch DRAM pointers held in NVM after a
    /// volatile collection moves objects, and those pointers carry no
    /// cross-restart meaning). Root entries are rewritten too.
    pub fn rewrite_refs(&mut self, mut f: impl FnMut(Ref) -> Ref) {
        let mut writes = Vec::new();
        self.for_each_object_off(|off, klass, _| {
            for slot in ref_slots(off, klass, &self.dev) {
                let old = Ref::from_raw(self.dev.read_u64(slot));
                let new = f(old);
                if new != old {
                    writes.push((slot, new.to_raw()));
                }
            }
        });
        for (slot, raw) in writes {
            self.dev.write_u64(slot, raw);
        }
        self.names
            .rewrite_values(&self.dev, EntryKind::Root, |v| f(Ref::from_raw(v)).to_raw());
        // Keep the cached undo-log pointer coherent with its root entry.
        if let Some(log) = self.txn.log {
            self.txn.log = Some(f(log));
        }
        // References changed wholesale behind the dirty tracking.
        self.invalidate_incremental_state();
    }

    /// Collects every volatile (DRAM) reference stored anywhere in the
    /// persistent heap. The VM passes these as extra roots to the volatile
    /// collectors: NVM-held pointers keep DRAM objects alive (§3.4).
    pub fn volatile_refs(&self) -> Vec<Ref> {
        let mut out = Vec::new();
        self.for_each_object_off(|off, klass, _| {
            for slot in ref_slots(off, klass, &self.dev) {
                let v = Ref::from_raw(self.dev.read_u64(slot));
                if v.is_volatile() {
                    out.push(v);
                }
            }
        });
        out
    }

    /// Counts objects, words, and regions.
    pub fn census(&self) -> HeapCensus {
        let mut objects = 0;
        let mut object_words = 0;
        self.for_each_object_off(|_, _, words| {
            objects += 1;
            object_words += words;
        });
        HeapCensus {
            objects,
            object_words,
            free_regions: self.free.count(),
            total_regions: self.layout.num_regions,
            segment_klasses: self.klasses.segment_klasses(),
        }
    }

    /// Structural integrity check: every class word resolves, every
    /// persistent reference points at the start of a live object image.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistency found.
    pub fn verify_integrity(&self) -> std::result::Result<(), String> {
        let mut starts = HashSet::new();
        self.for_each_object_off(|off, _, _| {
            starts.insert(self.layout.to_vaddr(off));
        });
        let mut problem = None;
        self.for_each_object_off(|off, klass, _| {
            if problem.is_some() {
                return;
            }
            for slot in ref_slots(off, klass, &self.dev) {
                let r = Ref::from_raw(self.dev.read_u64(slot));
                if r.is_persistent() && !starts.contains(&r.addr()) {
                    problem = Some(format!(
                        "object at {off:#x} ({}) references {:#x}, which is not an object start",
                        klass.name(),
                        r.addr()
                    ));
                }
            }
        });
        // Root entries must also resolve.
        for (name, r) in self.roots() {
            if r.is_persistent() && !starts.contains(&r.addr()) {
                problem.get_or_insert(format!("root {name:?} references {:#x}", r.addr()));
            }
        }
        match problem {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    // ---- accessors ----

    /// The backing device.
    pub fn device(&self) -> &NvmDevice {
        &self.dev
    }

    /// The resolved layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The class registry.
    pub fn registry(&self) -> &espresso_object::KlassRegistry {
        self.klasses.registry()
    }

    /// The configured safety level.
    pub fn safety(&self) -> SafetyLevel {
        self.safety
    }

    /// Changes the safety level for subsequent operations.
    pub fn set_safety(&mut self, safety: SafetyLevel) {
        self.meta_gen += 1;
        self.safety = safety;
    }

    /// Current global GC timestamp (§4.2).
    pub fn global_timestamp(&self) -> u32 {
        self.global_ts
    }

    /// Completed persistent-space collections.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// Completed full (compacting) collections, a subset of
    /// [`gc_count`](Self::gc_count).
    pub fn gc_full_count(&self) -> u64 {
        self.gc_full_count
    }

    /// Enables or disables the v3 slot-reuse path (DRAM-only knob; the
    /// persisted image is identical either way). The churn benchmark
    /// turns it off to measure the bump-only baseline.
    pub fn set_slot_reuse(&mut self, enabled: bool) {
        self.reuse_enabled = enabled;
        if !enabled {
            self.free_lists.clear();
        }
    }

    /// Allocator and collector statistics. Cheap — no heap walk.
    pub fn heap_stats(&self) -> HeapStats {
        HeapStats {
            bump_top_words: (self.alloc_top - self.layout.region_start(self.alloc_region)) / WORD,
            free_regions: self.free.count(),
            total_regions: self.layout.num_regions,
            free_list_slots: self.free_lists.ready_slots(),
            free_list_words: self.free_lists.ready_words(),
            free_list_by_class: self.free_lists.by_class(),
            deferred_slots: self.free_lists.deferred_slots(),
            deferred_regions: self.deferred_free.len(),
            reused_slots: self.free_lists.reused,
            gc_count: self.gc_count,
            gc_full_count: self.gc_full_count,
        }
    }
}

/// Device offsets of the reference slots of the object at `off`.
pub(crate) fn ref_slots(off: usize, klass: &Arc<Klass>, dev: &NvmDevice) -> Vec<usize> {
    match klass.kind() {
        ObjKind::Instance => klass
            .ref_field_indices()
            .map(|i| off + (HEADER_WORDS + i) * WORD)
            .collect(),
        ObjKind::ObjArray => {
            let len = dev.read_u64(off + 16) as usize;
            (0..len)
                .map(|i| off + (ARRAY_HEADER_WORDS + i) * WORD)
                .collect()
        }
        ObjKind::PrimArray => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    fn new_heap() -> (NvmDevice, Pjh) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let heap = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, heap)
    }

    fn person(h: &mut Pjh) -> KlassId {
        h.register_instance(
            "Person",
            vec![FieldDesc::prim("id"), FieldDesc::reference("next")],
        )
        .unwrap()
    }

    #[test]
    fn pnew_and_field_roundtrip() {
        let (_dev, mut h) = new_heap();
        let k = person(&mut h);
        let p = h.alloc_instance(k).unwrap();
        assert!(p.is_persistent());
        h.set_field(p, 0, 7);
        assert_eq!(h.field(p, 0), 7);
        assert_eq!(h.klass_of(p).name(), "Person");
    }

    #[test]
    fn arrays_roundtrip() {
        let (_dev, mut h) = new_heap();
        let pa = h.register_prim_array();
        let a = h.alloc_array(pa, 5).unwrap();
        assert_eq!(h.array_len(a), 5);
        h.array_set(a, 2, 77);
        assert_eq!(h.array_get(a, 2), 77);
    }

    #[test]
    fn persisted_object_survives_crash_and_load() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.set_field(p, 0, 99);
        h.flush_object(p);
        h.set_root("me", p).unwrap();
        dev.crash();
        let (h2, report) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert!(!report.recovered_gc);
        assert_eq!(report.klasses_reloaded, 1);
        let p2 = h2.get_root("me").unwrap();
        assert_eq!(p2, p, "same virtual address without remap");
        assert_eq!(h2.field(p2, 0), 99);
    }

    #[test]
    fn unflushed_field_is_lost_header_survives() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.set_field(p, 0, 123); // never flushed
        h.set_root("me", p).unwrap();
        dev.crash();
        let (h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let p2 = h2.get_root("me").unwrap();
        assert_eq!(h2.field(p2, 0), 0, "unflushed data lost");
        assert_eq!(h2.klass_of(p2).name(), "Person", "header persisted by pnew");
    }

    #[test]
    fn torn_allocation_is_invisible() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        for _ in 0..3 {
            h.alloc_instance(k).unwrap();
        }
        let before = h.census().objects;
        // The buffer watermark already covers the next allocation, so the
        // only flush it issues is the header persist — drop it.
        dev.schedule_crash_after_line_flushes(0);
        let _ = h.alloc_instance(k);
        dev.recover();
        let (h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert_eq!(
            h2.census().objects,
            before,
            "torn object must not be visible"
        );
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn filler_padding_spans_regions() {
        let (_dev, mut h) = new_heap();
        let pa = h.register_prim_array();
        // Each array takes 3+120 words = 984 bytes; a 4096-byte region fits
        // 4, leaving a 160-byte tail filler.
        let mut refs = Vec::new();
        for i in 0..9 {
            let a = h.alloc_array(pa, 120).unwrap();
            h.array_set(a, 0, i);
            refs.push(a);
        }
        assert_eq!(h.census().objects, 9);
        for (i, a) in refs.iter().enumerate() {
            assert_eq!(h.array_get(*a, 0), i as u64);
        }
    }

    #[test]
    fn object_too_large_is_rejected() {
        let (_dev, mut h) = new_heap();
        let pa = h.register_prim_array();
        assert!(matches!(
            h.alloc_array(pa, 4096),
            Err(PjhError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn heap_fills_up() {
        let (_dev, mut h) = new_heap();
        let pa = h.register_prim_array();
        let mut n = 0;
        loop {
            match h.alloc_array(pa, 61) {
                Ok(_) => n += 1,
                Err(PjhError::HeapFull { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(n < 1_000_000, "never filled");
        }
        assert!(n > 100);
    }

    #[test]
    fn roots_update_and_remove() {
        let (_dev, mut h) = new_heap();
        let k = person(&mut h);
        let a = h.alloc_instance(k).unwrap();
        let b = h.alloc_instance(k).unwrap();
        h.set_root("r", a).unwrap();
        h.set_root("r", b).unwrap();
        assert_eq!(h.get_root("r"), Some(b));
        assert!(h.remove_root("r"));
        assert_eq!(h.get_root("r"), None);
    }

    #[test]
    fn zeroing_safety_nullifies_volatile_pointers() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let p = h.alloc_instance(k).unwrap();
        let q = h.alloc_instance(k).unwrap();
        // p.next -> volatile object (simulated DRAM address).
        h.set_field_ref(p, 1, Ref::new(Space::Volatile, 0xABCD0))
            .unwrap();
        // q.next -> p (persistent: must survive).
        h.set_field_ref(q, 1, p).unwrap();
        h.flush_object(p);
        h.flush_object(q);
        h.set_root("p", p).unwrap();
        h.set_root("q", q).unwrap();
        dev.crash();
        let (h2, report) = Pjh::load(
            dev,
            LoadOptions {
                safety: SafetyLevel::Zeroing,
                ..LoadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.zeroed_refs, 1);
        assert!(report.objects_scanned >= 2);
        let p2 = h2.get_root("p").unwrap();
        assert!(h2.field_ref(p2, 1).is_null(), "volatile pointer nullified");
        let q2 = h2.get_root("q").unwrap();
        assert_eq!(h2.field_ref(q2, 1), p2, "persistent pointer kept");
    }

    #[test]
    fn user_guaranteed_load_keeps_volatile_pointers() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.set_field_ref(p, 1, Ref::new(Space::Volatile, 0xABCD0))
            .unwrap();
        h.flush_object(p);
        h.set_root("p", p).unwrap();
        dev.crash();
        let (h2, report) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert_eq!(report.objects_scanned, 0, "UG load never scans objects");
        let p2 = h2.get_root("p").unwrap();
        assert!(h2.field_ref(p2, 1).is_volatile(), "pointer left in place");
    }

    #[test]
    fn type_based_safety_blocks_volatile_stores_and_unmarked_classes() {
        let (_dev, mut h) = new_heap();
        let k = person(&mut h);
        h.set_safety(SafetyLevel::TypeBased);
        assert!(matches!(
            h.alloc_instance(k),
            Err(PjhError::SafetyViolation { .. })
        ));
        h.mark_persistent_capable("Person");
        let p = h.alloc_instance(k).unwrap();
        assert!(matches!(
            h.set_field_ref(p, 1, Ref::new(Space::Volatile, 0x10)),
            Err(PjhError::SafetyViolation { .. })
        ));
        let q = h.alloc_instance(k).unwrap();
        h.set_field_ref(p, 1, q).unwrap();
    }

    #[test]
    fn remap_rewrites_all_pointers() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let a = h.alloc_instance(k).unwrap();
        let b = h.alloc_instance(k).unwrap();
        h.set_field(b, 0, 5);
        h.set_field_ref(a, 1, b).unwrap();
        h.flush_object(a);
        h.flush_object(b);
        h.set_root("a", a).unwrap();
        dev.crash();
        let new_base = 0x7777_0000_0000;
        let (h2, report) = Pjh::load(
            dev,
            LoadOptions {
                base_override: Some(new_base),
                ..LoadOptions::default()
            },
        )
        .unwrap();
        assert!(report.remapped);
        let a2 = h2.get_root("a").unwrap();
        assert!(a2.addr() >= new_base);
        let b2 = h2.field_ref(a2, 1);
        assert_eq!(h2.field(b2, 0), 5);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn census_counts_objects_and_regions() {
        let (_dev, mut h) = new_heap();
        let k = person(&mut h);
        for _ in 0..10 {
            h.alloc_instance(k).unwrap();
        }
        let c = h.census();
        assert_eq!(c.objects, 10);
        assert_eq!(c.object_words, 40);
        assert_eq!(c.segment_klasses, 1);
        assert!(c.free_regions < c.total_regions);
    }

    #[test]
    fn load_rejects_blank_device() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        assert!(matches!(
            Pjh::load(dev, LoadOptions::default()),
            Err(PjhError::NotAHeap)
        ));
    }

    #[test]
    fn allocation_across_many_regions_survives_reload() {
        // Regression: the free-region bitmap is updated word-by-word in
        // place during allocation; its on-NVM layout must match what load
        // reads back, including past the 64-region boundary.
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let mut count = 0;
        // 4 KiB regions hold 128 32-byte objects; cross 70+ regions.
        for i in 0..9000u64 {
            let p = h.alloc_instance(k).unwrap();
            h.set_field(p, 0, i);
            count += 1;
        }
        let before = h.census();
        assert!(
            before.total_regions - before.free_regions > 64,
            "test must span 64+ regions"
        );
        dev.crash();
        let (h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert_eq!(h2.census().objects, count);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn plab_batches_cursor_persists() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        h.alloc_instance(k).unwrap(); // reserves the buffer
        let flushes = dev.stats().line_flushes;
        // Subsequent in-buffer allocations persist only their headers:
        // one line flush each, no cursor traffic.
        for _ in 0..3 {
            h.alloc_instance(k).unwrap();
        }
        assert_eq!(dev.stats().line_flushes - flushes, 3);
        assert_eq!(
            dev.read_u64(meta::ALLOC_TOP) as usize,
            h.plab_end,
            "persisted top is the buffer watermark"
        );
        assert!(h.plab_end > h.alloc_top);
    }

    #[test]
    fn crash_mid_buffer_resumes_at_true_top() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        for i in 0..5 {
            let p = h.alloc_instance(k).unwrap();
            h.set_field(p, 0, i);
            h.flush_object(p);
            h.set_root(&format!("o{i}"), p).unwrap();
        }
        let true_top = h.alloc_top;
        assert!(h.plab_end > true_top, "buffer must be mid-flight");
        dev.crash();
        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert_eq!(h2.alloc_top, true_top, "gap walk finds the real top");
        assert_eq!(h2.census().objects, 5);
        // New allocations fill the gap below the watermark and stay
        // visible to the walker.
        let k2 = person(&mut h2);
        let extra = h2.alloc_instance(k2).unwrap();
        h2.set_root("extra", extra).unwrap();
        assert_eq!(h2.census().objects, 6);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn crash_between_filler_and_region_switch_exhausts_region() {
        // Regression: a persisted filler always runs to the region end and
        // may span past the buffer watermark. If power fails before the
        // region switch it precedes becomes durable, reload must not
        // resume allocating inside the filler span (the walker skips it).
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let cfg = PjhConfig {
            plab_size: 512,
            ..PjhConfig::small()
        };
        let mut h = Pjh::create(dev.clone(), cfg).unwrap();
        let pa = h.register_prim_array();
        for _ in 0..30 {
            h.alloc_array(pa, 2).unwrap(); // 40-byte objects drift the grid
        }
        assert!(h.plab_end < h.layout.region_end(h.alloc_region));
        let before = h.census().objects;
        // Oversized for the region remainder: writes + persists the filler,
        // then crashes before the new region becomes durable.
        dev.schedule_crash_after_line_flushes(1);
        let _ = h.alloc_array(pa, 497);
        dev.recover();
        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert_eq!(h2.census().objects, before);
        let p = h2.alloc_array(pa, 2).unwrap();
        h2.set_root("fresh", p).unwrap();
        assert_eq!(h2.census().objects, before + 1, "new object visible");
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn zero_plab_restores_per_object_cursor_persist() {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let cfg = PjhConfig {
            plab_size: 0,
            ..PjhConfig::small()
        };
        let mut h = Pjh::create(dev.clone(), cfg).unwrap();
        let k = person(&mut h);
        h.alloc_instance(k).unwrap();
        let flushes = dev.stats().line_flushes;
        h.alloc_instance(k).unwrap();
        // Cursor flush + header flush.
        assert_eq!(dev.stats().line_flushes - flushes, 2);
        assert_eq!(h.plab_end, h.alloc_top);
        // The strict mode survives reload: the buffer size is part of the
        // persisted heap configuration.
        dev.crash();
        let (mut h2, _) = Pjh::load(dev.clone(), LoadOptions::default()).unwrap();
        assert_eq!(h2.plab_size, 0);
        let k2 = person(&mut h2);
        h2.alloc_instance(k2).unwrap();
        assert_eq!(h2.plab_end, h2.alloc_top, "no buffering after reload");
    }

    #[test]
    fn klass_registration_survives_reload() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.set_root("p", p).unwrap();
        dev.crash();
        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        // Re-register with real field names; layout must reconcile.
        let k2 = person(&mut h2);
        let p2 = h2.get_root("p").unwrap();
        assert_eq!(h2.klass_of(p2).id(), k2);
        assert_eq!(h2.klass_of(p2).field_index("next"), Some(1));
    }

    #[test]
    fn incremental_gc_feeds_free_lists_and_alloc_reuses_the_slot() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let keep = h.alloc_instance(k).unwrap();
        h.set_root("keep", keep).unwrap();
        h.gc_full(&[]).unwrap();
        // A dead object in the (dirty) allocation region: the next
        // incremental cycle proves its death and harvests the slot.
        let dead = h.alloc_instance(k).unwrap();
        let dead_off = h.obj_off(dead);
        let report = h.gc(&[]).unwrap();
        assert_eq!(report.kind, crate::GcKind::Incremental);
        let stats = h.heap_stats();
        assert!(stats.free_list_slots >= 1, "dead slot not harvested");
        // Same size class → the dead slot itself comes back.
        let reused = h.alloc_instance(k).unwrap();
        assert_eq!(h.obj_off(reused), dead_off);
        assert_eq!(h.heap_stats().reused_slots, 1);
        // The reused object is a fully functional, durable object.
        h.set_field(reused, 0, 77);
        h.flush_object(reused);
        h.set_root("r", reused).unwrap();
        dev.crash();
        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        person(&mut h2);
        let r2 = h2.get_root("r").unwrap();
        assert_eq!(h2.field(r2, 0), 77);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn free_lists_rebuild_from_summaries_on_load() {
        let (dev, mut h) = new_heap();
        let k = person(&mut h);
        let keep = h.alloc_instance(k).unwrap();
        h.set_root("keep", keep).unwrap();
        h.gc_full(&[]).unwrap();
        for _ in 0..5 {
            h.alloc_instance(k).unwrap(); // garbage
        }
        h.gc(&[]).unwrap();
        let before = h.heap_stats();
        assert_eq!(before.free_list_slots, 5);
        dev.crash();
        let (h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let after = h2.heap_stats();
        assert_eq!(after.free_list_slots, before.free_list_slots);
        assert_eq!(after.free_list_words, before.free_list_words);
        assert_eq!(after.free_list_by_class, before.free_list_by_class);
    }

    #[test]
    fn bump_only_heap_never_consults_free_lists() {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let mut h = Pjh::create(
            dev,
            PjhConfig {
                alloc_reuse: false,
                ..PjhConfig::small()
            },
        )
        .unwrap();
        let k = person(&mut h);
        let keep = h.alloc_instance(k).unwrap();
        h.set_root("keep", keep).unwrap();
        h.gc_full(&[]).unwrap();
        let dead = h.alloc_instance(k).unwrap();
        let dead_off = h.obj_off(dead);
        h.gc(&[]).unwrap();
        assert_eq!(h.heap_stats().free_list_slots, 0);
        let next = h.alloc_instance(k).unwrap();
        assert_ne!(h.obj_off(next), dead_off, "bump-only heap reused a slot");
        assert_eq!(h.heap_stats().reused_slots, 0);
    }

    #[test]
    fn prune_deferred_keeps_undrained_entries_in_push_order() {
        let (_dev, mut h) = new_heap();
        let clock = Arc::new(espresso_nvm::EpochClock::new());
        h.attach_epoch_clock(Arc::clone(&clock));
        // One entry at the pre-pin epoch, two behind a pinned reader.
        let e1 = clock.now();
        h.deferred_free.push((e1, 3));
        clock.advance();
        let pin = clock.pin();
        let e2 = clock.now();
        h.deferred_free.push((e2, 7));
        h.deferred_free.push((e2, 5));
        h.prune_deferred();
        // e1 drained (the pin sits above it); the pinned entries survive
        // in exactly their push order.
        assert_eq!(h.deferred_free, vec![(e2, 7), (e2, 5)]);
        drop(pin);
        h.prune_deferred();
        assert!(h.deferred_free.is_empty());
    }

    #[test]
    fn prune_deferred_without_a_clock_clears_everything() {
        let (_dev, mut h) = new_heap();
        h.deferred_free.push((1, 2));
        h.deferred_free.push((9, 4));
        h.prune_deferred();
        assert!(h.deferred_free.is_empty());
    }
}
