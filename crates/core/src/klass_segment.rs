//! The persistent Klass segment (§3.1, §3.3).
//!
//! Klasses used by persistent objects are serialized into an append-only
//! NVM segment, separate from the volatile Meta Space, so that objects stay
//! interpretable after a restart. Records act as *placeholders*: reloading
//! a heap re-creates klass metadata **in place** (same segment offsets), so
//! the class words stored in object headers remain valid without touching
//! any object — this is why user-guaranteed heap loading is O(#klasses),
//! not O(#objects) (Figure 18).
//!
//! A record stores everything recovery and the zeroing-safety scan need to
//! trace objects with no application code loaded: the shape, the field
//! count, and the reference bitmap. Field *names* are reconciled when the
//! application re-registers the class ("class reinitialization", §3.3).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use espresso_nvm::NvmDevice;
use espresso_object::{FieldDesc, FieldKind, Klass, KlassId, KlassRegistry, ObjKind};

use crate::layout::{meta, Layout};
use crate::name_table::{EntryKind, NameTable};
use crate::PjhError;

const KIND_INSTANCE: u64 = 0;
const KIND_OBJ_ARRAY: u64 = 1;
const KIND_PRIM_ARRAY: u64 = 2;

/// Fixed header words of a klass record (committed, kind, field count,
/// name length, ref-bitmap word count).
const RECORD_HEADER_WORDS: usize = 5;

fn record_len(field_count: usize, name_len: usize) -> usize {
    let rb_words = field_count.div_ceil(64).max(1);
    (RECORD_HEADER_WORDS + rb_words) * 8 + name_len.next_multiple_of(8)
}

/// DRAM-side mirror of the Klass segment plus the class registry it feeds.
#[derive(Debug, Clone)]
pub struct PKlassTable {
    registry: KlassRegistry,
    seg_of: HashMap<u32, u64>,
    id_of_seg: HashMap<u64, u32>,
    placeholders: HashSet<u32>,
    top: usize,
}

impl PKlassTable {
    /// Scans the segment and rebuilds the registry ("class
    /// reinitialization in place", §3.3). Returns the table; the number of
    /// reloaded klasses is [`segment_klasses`](Self::segment_klasses).
    pub fn attach(dev: &NvmDevice, layout: &Layout) -> PKlassTable {
        let mut t = PKlassTable {
            registry: KlassRegistry::new(),
            seg_of: HashMap::new(),
            id_of_seg: HashMap::new(),
            placeholders: HashSet::new(),
            top: dev.read_u64(meta::KLASS_SEGMENT_TOP) as usize,
        };
        let mut pos = layout.klass_segment_off;
        while pos < t.top {
            if dev.read_u64(pos) != 1 {
                break; // uncommitted tail record
            }
            let kind = dev.read_u64(pos + 8);
            let field_count = dev.read_u64(pos + 16) as usize;
            let name_len = dev.read_u64(pos + 24) as usize;
            let rb_words = dev.read_u64(pos + 32) as usize;
            let mut bitmap = vec![0u64; rb_words];
            for (i, w) in bitmap.iter_mut().enumerate() {
                *w = dev.read_u64(pos + 40 + i * 8);
            }
            let name_off = pos + (RECORD_HEADER_WORDS + rb_words) * 8;
            let mut name_buf = vec![0u8; name_len];
            dev.read_bytes(name_off, &mut name_buf);
            let name = String::from_utf8(name_buf).expect("corrupt klass name");
            let id = match kind {
                KIND_INSTANCE => {
                    let fields: Vec<FieldDesc> = (0..field_count)
                        .map(|i| {
                            let is_ref = bitmap[i / 64] & (1 << (i % 64)) != 0;
                            FieldDesc {
                                name: format!("f{i}"),
                                kind: if is_ref {
                                    FieldKind::Reference
                                } else {
                                    FieldKind::Prim
                                },
                            }
                        })
                        .collect();
                    let id = t.registry.register_instance(&name, fields);
                    t.placeholders.insert(id.0);
                    id
                }
                KIND_OBJ_ARRAY => {
                    let elem = name
                        .strip_prefix("[L")
                        .and_then(|s| s.strip_suffix(';'))
                        .expect("corrupt obj-array klass name");
                    t.registry.register_obj_array(elem)
                }
                _ => t.registry.register_prim_array(),
            };
            t.seg_of.insert(id.0, pos as u64);
            t.id_of_seg.insert(pos as u64, id.0);
            pos += record_len(field_count, name_len);
        }
        t
    }

    /// The registry backing this table.
    pub fn registry(&self) -> &KlassRegistry {
        &self.registry
    }

    /// Number of klasses present in the NVM segment.
    pub fn segment_klasses(&self) -> usize {
        self.seg_of.len()
    }

    /// Registers an instance class, reconciling against a placeholder
    /// reloaded from the segment if one exists.
    ///
    /// # Errors
    ///
    /// [`PjhError::KlassLayoutMismatch`] if a persisted layout disagrees
    /// with the registration.
    pub fn register_instance(
        &mut self,
        name: &str,
        fields: Vec<FieldDesc>,
    ) -> Result<KlassId, PjhError> {
        if let Some(existing) = self.registry.by_name(name) {
            let id = existing.id();
            let candidate = Klass::instance(id, name, fields.clone());
            if existing.fields().len() != fields.len()
                || existing.ref_bitmap() != candidate.ref_bitmap()
            {
                return Err(PjhError::KlassLayoutMismatch {
                    name: name.to_string(),
                });
            }
            if self.placeholders.remove(&id.0) {
                self.registry.redefine_instance(id, fields);
            }
            return Ok(id);
        }
        Ok(self.registry.register_instance(name, fields))
    }

    /// Registers the object-array class for `elem_name`.
    pub fn register_obj_array(&mut self, elem_name: &str) -> KlassId {
        self.registry.register_obj_array(elem_name)
    }

    /// Registers the primitive array class.
    pub fn register_prim_array(&mut self) -> KlassId {
        self.registry.register_prim_array()
    }

    /// The klass whose record lives at segment offset `seg`.
    pub fn klass_by_seg(&self, seg: u64) -> Option<&Arc<Klass>> {
        self.id_of_seg
            .get(&seg)
            .and_then(|&id| self.registry.by_id(KlassId(id)))
    }

    /// The segment offset of `id`'s record, if already persisted.
    pub fn seg_of(&self, id: KlassId) -> Option<u64> {
        self.seg_of.get(&id.0).copied()
    }

    /// Resolves `seg` by re-parsing the persisted segment itself,
    /// bypassing the DRAM maps.
    ///
    /// This is the miss path for *frozen metadata replicas*: a pinned
    /// read session resolves class words through a replica snapshotted
    /// at session open, but object data reads are live — so a reader
    /// can reach an object whose klass record was appended (on first
    /// allocation of that class) after the snapshot. Every class word
    /// ever written references an already-committed record, so walking
    /// the segment always resolves a legitimate word; anything else —
    /// a misaligned offset, an uncommitted tail, garbage — returns
    /// `None` and the caller keeps treating it as corruption.
    ///
    /// The returned klass is *detached*: it carries the persisted shape
    /// (kind, field count, reference bitmap) and the real class name,
    /// but placeholder field names and a sentinel id, exactly like a
    /// not-yet-reconciled record after [`attach`](Self::attach). Read
    /// paths consult only name and shape, so that is sufficient.
    pub fn parse_by_seg(&self, dev: &NvmDevice, layout: &Layout, seg: u64) -> Option<Arc<Klass>> {
        let detached = KlassId(u32::MAX);
        let top = dev.read_u64(meta::KLASS_SEGMENT_TOP) as usize;
        let mut pos = layout.klass_segment_off;
        while pos < top.min(layout.klass_segment_off + layout.klass_segment_size) {
            if dev.read_u64(pos) != 1 {
                return None; // uncommitted tail record
            }
            let field_count = dev.read_u64(pos + 16) as usize;
            let name_len = dev.read_u64(pos + 24) as usize;
            if pos as u64 == seg {
                let kind = dev.read_u64(pos + 8);
                let rb_words = dev.read_u64(pos + 32) as usize;
                let mut bitmap = vec![0u64; rb_words];
                for (i, w) in bitmap.iter_mut().enumerate() {
                    *w = dev.read_u64(pos + 40 + i * 8);
                }
                let name_off = pos + (RECORD_HEADER_WORDS + rb_words) * 8;
                let mut name_buf = vec![0u8; name_len];
                dev.read_bytes(name_off, &mut name_buf);
                let name = String::from_utf8(name_buf).ok()?;
                let klass = match kind {
                    KIND_INSTANCE => {
                        let fields: Vec<FieldDesc> = (0..field_count)
                            .map(|i| {
                                let is_ref =
                                    bitmap.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0);
                                FieldDesc {
                                    name: format!("f{i}"),
                                    kind: if is_ref {
                                        FieldKind::Reference
                                    } else {
                                        FieldKind::Prim
                                    },
                                }
                            })
                            .collect();
                        Klass::instance(detached, &name, fields)
                    }
                    KIND_OBJ_ARRAY => Klass::array(detached, &name, ObjKind::ObjArray),
                    KIND_PRIM_ARRAY => Klass::array(detached, &name, ObjKind::PrimArray),
                    _ => return None,
                };
                return Some(Arc::new(klass));
            }
            pos += record_len(field_count, name_len);
        }
        None
    }

    /// Appends `id`'s record to the segment if absent (the paper's "set by
    /// JVM when an object is created in NVM while its Klass does not exist
    /// in the Klass segment", §3.1). Crash-consistent: payload persists
    /// before the commit word, the commit word before the segment top.
    ///
    /// # Errors
    ///
    /// [`PjhError::KlassSegmentFull`] when out of segment space.
    pub fn ensure_in_segment(
        &mut self,
        dev: &NvmDevice,
        layout: &Layout,
        names: &mut NameTable,
        id: KlassId,
    ) -> Result<u64, PjhError> {
        if let Some(seg) = self.seg_of(id) {
            return Ok(seg);
        }
        let klass = self.registry.by_id(id).expect("unknown klass").clone();
        let name = klass.name().to_string();
        let field_count = klass.fields().len();
        let len = record_len(field_count, name.len());
        let pos = self.top;
        if pos + len > layout.klass_segment_off + layout.klass_segment_size {
            return Err(PjhError::KlassSegmentFull);
        }
        let kind = match klass.kind() {
            ObjKind::Instance => KIND_INSTANCE,
            ObjKind::ObjArray => KIND_OBJ_ARRAY,
            ObjKind::PrimArray => KIND_PRIM_ARRAY,
        };
        // Payload with committed = 0.
        dev.write_u64(pos, 0);
        dev.write_u64(pos + 8, kind);
        dev.write_u64(pos + 16, field_count as u64);
        dev.write_u64(pos + 24, name.len() as u64);
        let bitmap = klass.ref_bitmap();
        dev.write_u64(pos + 32, bitmap.len() as u64);
        for (i, w) in bitmap.iter().enumerate() {
            dev.write_u64(pos + 40 + i * 8, *w);
        }
        let name_off = pos + (RECORD_HEADER_WORDS + bitmap.len()) * 8;
        dev.write_bytes(name_off, name.as_bytes());
        dev.persist(pos, len);
        // Commit.
        dev.write_u64(pos, 1);
        dev.persist(pos, 8);
        // Advance the persisted top.
        self.top = pos + len;
        dev.write_u64(meta::KLASS_SEGMENT_TOP, self.top as u64);
        dev.persist(meta::KLASS_SEGMENT_TOP, 8);
        // Name-table Klass entry (§3.1).
        names.set(dev, EntryKind::Klass, &name, pos as u64)?;
        self.seg_of.insert(id.0, pos as u64);
        self.id_of_seg.insert(pos as u64, id.0);
        Ok(pos as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PjhConfig;
    use espresso_nvm::NvmConfig;

    fn setup() -> (NvmDevice, Layout) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let layout = Layout::compute(dev.size(), &PjhConfig::default()).unwrap();
        layout.write_meta(&dev);
        (dev, layout)
    }

    fn person_fields() -> Vec<FieldDesc> {
        vec![FieldDesc::prim("id"), FieldDesc::reference("name")]
    }

    #[test]
    fn register_and_persist_roundtrip() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let id = t.register_instance("Person", person_fields()).unwrap();
        let seg = t.ensure_in_segment(&dev, &layout, &mut names, id).unwrap();
        assert_eq!(t.seg_of(id), Some(seg));
        assert_eq!(names.get(&dev, EntryKind::Klass, "Person"), Some(seg));

        dev.crash();
        let t2 = PKlassTable::attach(&dev, &layout);
        assert_eq!(t2.segment_klasses(), 1);
        let k = t2.klass_by_seg(seg).unwrap();
        assert_eq!(k.name(), "Person");
        assert_eq!(k.fields().len(), 2);
        assert_eq!(k.ref_bitmap(), vec![0b10]);
        // Placeholder field names until reconciliation.
        assert_eq!(k.fields()[0].name, "f0");
    }

    #[test]
    fn placeholder_reconciliation_restores_names() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let id = t.register_instance("Person", person_fields()).unwrap();
        t.ensure_in_segment(&dev, &layout, &mut names, id).unwrap();
        dev.crash();
        let mut t2 = PKlassTable::attach(&dev, &layout);
        let id2 = t2.register_instance("Person", person_fields()).unwrap();
        let k = t2.registry().by_id(id2).unwrap();
        assert_eq!(k.field_index("name"), Some(1));
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let id = t.register_instance("Person", person_fields()).unwrap();
        t.ensure_in_segment(&dev, &layout, &mut names, id).unwrap();
        dev.crash();
        let mut t2 = PKlassTable::attach(&dev, &layout);
        let swapped = vec![FieldDesc::reference("id"), FieldDesc::prim("name")];
        assert!(matches!(
            t2.register_instance("Person", swapped),
            Err(PjhError::KlassLayoutMismatch { .. })
        ));
        let extra = vec![
            FieldDesc::prim("a"),
            FieldDesc::reference("b"),
            FieldDesc::prim("c"),
        ];
        assert!(matches!(
            t2.register_instance("Person", extra),
            Err(PjhError::KlassLayoutMismatch { .. })
        ));
    }

    #[test]
    fn arrays_roundtrip() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let oa = t.register_obj_array("Person");
        let pa = t.register_prim_array();
        let so = t.ensure_in_segment(&dev, &layout, &mut names, oa).unwrap();
        let sp = t.ensure_in_segment(&dev, &layout, &mut names, pa).unwrap();
        dev.crash();
        let t2 = PKlassTable::attach(&dev, &layout);
        assert_eq!(t2.klass_by_seg(so).unwrap().name(), "[LPerson;");
        assert_eq!(t2.klass_by_seg(sp).unwrap().name(), "[J");
    }

    #[test]
    fn ensure_is_idempotent() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let id = t.register_instance("Person", person_fields()).unwrap();
        let a = t.ensure_in_segment(&dev, &layout, &mut names, id).unwrap();
        let b = t.ensure_in_segment(&dev, &layout, &mut names, id).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.segment_klasses(), 1);
    }

    #[test]
    fn parse_by_seg_resolves_without_the_dram_maps() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let id = t.register_instance("Person", person_fields()).unwrap();
        let seg = t.ensure_in_segment(&dev, &layout, &mut names, id).unwrap();
        let oa = t.register_obj_array("Person");
        let soa = t.ensure_in_segment(&dev, &layout, &mut names, oa).unwrap();

        // A table attached *before* the appends models a frozen replica:
        // its maps have never seen these records, but the segment walk
        // resolves them anyway.
        let stale = PKlassTable {
            registry: KlassRegistry::new(),
            seg_of: HashMap::new(),
            id_of_seg: HashMap::new(),
            placeholders: HashSet::new(),
            top: layout.klass_segment_off,
        };
        assert!(stale.klass_by_seg(seg).is_none());
        let k = stale.parse_by_seg(&dev, &layout, seg).unwrap();
        assert_eq!(k.name(), "Person");
        assert_eq!(k.kind(), ObjKind::Instance);
        assert_eq!(k.instance_words(), 2 + 2);
        assert_eq!(k.ref_bitmap(), vec![0b10]);
        let ka = stale.parse_by_seg(&dev, &layout, soa).unwrap();
        assert_eq!(ka.name(), "[LPerson;");
        assert_eq!(ka.kind(), ObjKind::ObjArray);

        // Garbage words stay unresolvable: misaligned offsets, offsets
        // past the persisted top, and arbitrary values all miss.
        assert!(stale.parse_by_seg(&dev, &layout, seg + 8).is_none());
        assert!(stale
            .parse_by_seg(&dev, &layout, dev.read_u64(meta::KLASS_SEGMENT_TOP))
            .is_none());
        assert!(stale.parse_by_seg(&dev, &layout, 0xDEAD_BEEF).is_none());
    }

    #[test]
    fn torn_append_is_ignored_after_crash() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let a = t.register_instance("A", person_fields()).unwrap();
        t.ensure_in_segment(&dev, &layout, &mut names, a).unwrap();
        // Crash after only the payload flush of the next record: the commit
        // word and segment top never persist.
        dev.schedule_crash_after_line_flushes(1);
        let b = t.register_instance("B", person_fields()).unwrap();
        let _ = t.ensure_in_segment(&dev, &layout, &mut names, b);
        dev.recover();
        let t2 = PKlassTable::attach(&dev, &layout);
        assert_eq!(t2.segment_klasses(), 1, "only A survives");
    }

    #[test]
    fn segment_fills_up() {
        let (dev, layout) = setup();
        let mut names = NameTable::attach(&dev, &layout);
        let mut t = PKlassTable::attach(&dev, &layout);
        let mut err = None;
        for i in 0..100_000 {
            let id = t
                .register_instance(&format!("C{i}"), person_fields())
                .unwrap();
            match t.ensure_in_segment(&dev, &layout, &mut names, id) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            err,
            Some(PjhError::KlassSegmentFull) | Some(PjhError::NameTableFull)
        ));
    }
}
