//! On-NVM layout of a PJH instance (§3.1, Figure 7/8).
//!
//! ```text
//! +--------------------+  offset 0
//! | metadata area      |  address hint, heap size, alloc cursor ("top"),
//! |                    |  global timestamp, gc-in-progress flag, offsets
//! +--------------------+
//! | name table         |  string -> Klass entry | root entry
//! +--------------------+
//! | Klass segment      |  append-only persistent klass records
//! +--------------------+
//! | mark bitmap (begin)|  1 bit per data-heap word   (§4.2)
//! | mark bitmap (end)  |  1 bit per data-heap word
//! | region done bitmap |  1 bit per region           (§4.2)
//! | region free bitmap |  1 bit per region
//! | region summaries   |  16 bytes per region (live words / live objects /
//! |                    |  reclaimable words / scan timestamp)
//! +--------------------+
//! | data heap          |  fixed-size regions, bump-allocated
//! +--------------------+
//! ```

use espresso_nvm::NvmDevice;

use crate::{PjhConfig, PjhError};

/// Magic number identifying a formatted PJH image.
pub const MAGIC: u64 = 0x4553_5052_4553_4f31; // "ESPRESO1"
/// Format version. Bumped to 2 when the per-region summary table was
/// added to the metadata segment; to 3 when summary entries widened from
/// 8 to 16 bytes to carry reclaimable words and the region's last scan
/// timestamp (the free-list rebuild inputs).
pub const VERSION: u64 = 3;

/// Byte offsets of the metadata-area fields (Figure 8 plus bookkeeping).
pub mod meta {
    /// Magic number.
    pub const MAGIC: usize = 0;
    /// Format version.
    pub const VERSION: usize = 8;
    /// Address hint: virtual base address the heap was created at (§3.3).
    pub const ADDRESS_HINT: usize = 16;
    /// Total device size in bytes.
    pub const HEAP_SIZE: usize = 24;
    /// Current allocation region index.
    pub const ALLOC_REGION: usize = 32;
    /// Allocation top: device offset of the next free byte (§4.1).
    pub const ALLOC_TOP: usize = 40;
    /// Global GC timestamp (§4.2).
    pub const GLOBAL_TIMESTAMP: usize = 48;
    /// Non-zero while a collection of the persistent space is in flight.
    pub const GC_IN_PROGRESS: usize = 56;
    /// Klass segment: device offset of the next free byte.
    pub const KLASS_SEGMENT_TOP: usize = 64;
    /// Region size in bytes.
    pub const REGION_SIZE: usize = 72;
    /// Number of data regions.
    pub const NUM_REGIONS: usize = 80;
    /// Offset of the name table.
    pub const NAME_TABLE_OFF: usize = 88;
    /// Name table capacity in entries.
    pub const NAME_TABLE_CAP: usize = 96;
    /// Offset of the klass segment.
    pub const KLASS_SEGMENT_OFF: usize = 104;
    /// Size of the klass segment in bytes.
    pub const KLASS_SEGMENT_SIZE: usize = 112;
    /// Offset of the begin-mark bitmap.
    pub const MARK_BEGIN_OFF: usize = 120;
    /// Offset of the end-mark bitmap.
    pub const MARK_END_OFF: usize = 128;
    /// Bytes per mark bitmap.
    pub const BITMAP_BYTES: usize = 136;
    /// Offset of the region done bitmap.
    pub const REGION_DONE_OFF: usize = 144;
    /// Offset of the region free bitmap.
    pub const REGION_FREE_OFF: usize = 152;
    /// Bytes per region bitmap.
    pub const REGION_BITMAP_BYTES: usize = 160;
    /// Offset of the data heap.
    pub const DATA_OFF: usize = 168;
    /// Size of the data heap in bytes.
    pub const DATA_SIZE: usize = 176;
    /// Offset of the free-bitmap snapshot taken at GC start (recovery input).
    pub const SAVED_FREE_OFF: usize = 184;
    /// Allocation region index saved at GC start (recovery input).
    pub const SAVED_ALLOC_REGION: usize = 192;
    /// Allocation top saved at GC start (recovery input).
    pub const SAVED_ALLOC_TOP: usize = 200;
    /// Offset of the per-region summary table (16 bytes per region: live
    /// words, live objects, reclaimable words, and the scan timestamp,
    /// each packed as a u32).
    pub const REGION_SUMMARY_OFF: usize = 208;
    /// GC timestamp the summary table was last written at (0 = table has
    /// never been written, or a write was torn and must not be trusted).
    pub const SUMMARY_TS: usize = 216;
    /// Configured allocation-buffer size in bytes (so the batching policy
    /// survives reload; 0 = strict per-object cursor persists).
    pub const PLAB_SIZE: usize = 224;
    /// Total bytes reserved for the metadata area.
    pub const AREA_SIZE: usize = 512;
}

/// Size in bytes of one name-table entry.
pub const NAME_ENTRY_SIZE: usize = 128;
/// Longest name storable in a name-table entry.
pub const MAX_NAME_LEN: usize = NAME_ENTRY_SIZE - 24;

/// Resolved byte offsets of every PJH area, cached in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Virtual base address of the mapping (address hint, possibly
    /// overridden at load time after a remap).
    pub base: u64,
    /// Region size in bytes.
    pub region_size: usize,
    /// Number of regions in the data heap.
    pub num_regions: usize,
    /// Name table offset.
    pub name_table_off: usize,
    /// Name table capacity (entries).
    pub name_table_cap: usize,
    /// Klass segment offset.
    pub klass_segment_off: usize,
    /// Klass segment size in bytes.
    pub klass_segment_size: usize,
    /// Begin-mark bitmap offset.
    pub mark_begin_off: usize,
    /// End-mark bitmap offset.
    pub mark_end_off: usize,
    /// Bytes per mark bitmap.
    pub bitmap_bytes: usize,
    /// Region done bitmap offset.
    pub region_done_off: usize,
    /// Region free bitmap offset.
    pub region_free_off: usize,
    /// Offset of the GC-start snapshot of the free bitmap (§4.3: the
    /// summary must be recomputable from state as of the *start* of the
    /// collection, so the pre-GC free bitmap is preserved here while the
    /// live one is rewritten at GC end).
    pub saved_free_off: usize,
    /// Bytes per region bitmap.
    pub region_bitmap_bytes: usize,
    /// Offset of the per-region summary table (the incremental collector's
    /// persisted live/free accounting; one 16-byte record per region).
    pub region_summary_off: usize,
    /// Bytes reserved for the region summary table.
    pub region_summary_bytes: usize,
    /// Data heap offset.
    pub data_off: usize,
    /// Data heap size in bytes.
    pub data_size: usize,
}

impl Layout {
    /// Computes a layout for a fresh heap on a device of `device_size`
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`PjhError::HeapTooSmall`] if the device cannot hold the metadata
    /// plus at least two regions.
    pub fn compute(device_size: usize, config: &PjhConfig) -> Result<Layout, PjhError> {
        let region_size = config.region_size.next_power_of_two().max(4096);
        let name_table_cap = config.name_table_capacity.max(16);
        let name_bytes = name_table_cap * NAME_ENTRY_SIZE;
        let klass_bytes = config.klass_segment_size.max(4096).next_multiple_of(64);
        let fixed = meta::AREA_SIZE + name_bytes + klass_bytes;
        if device_size <= fixed + 2 * region_size {
            return Err(PjhError::HeapTooSmall { size: device_size });
        }
        let remaining = device_size - fixed;
        // Solve data_size + 2*data_size/64 + 2*(data_size/region)/8 <= remaining,
        // rounding data down to a whole number of regions.
        let mut num_regions = remaining / region_size;
        loop {
            if num_regions < 2 {
                return Err(PjhError::HeapTooSmall { size: device_size });
            }
            let data_size = num_regions * region_size;
            let bitmap_bytes = (data_size / 64 + 64).next_multiple_of(64);
            let region_bitmap_bytes = (num_regions.div_ceil(8) + 64).next_multiple_of(64);
            let region_summary_bytes = (num_regions * 16).next_multiple_of(64);
            if fixed + data_size + 2 * bitmap_bytes + 3 * region_bitmap_bytes + region_summary_bytes
                <= device_size
            {
                let name_table_off = meta::AREA_SIZE;
                let klass_segment_off = name_table_off + name_bytes;
                let mark_begin_off = klass_segment_off + klass_bytes;
                let mark_end_off = mark_begin_off + bitmap_bytes;
                let region_done_off = mark_end_off + bitmap_bytes;
                let region_free_off = region_done_off + region_bitmap_bytes;
                let saved_free_off = region_free_off + region_bitmap_bytes;
                let region_summary_off = saved_free_off + region_bitmap_bytes;
                let data_off = region_summary_off + region_summary_bytes;
                return Ok(Layout {
                    base: config.base_address,
                    region_size,
                    num_regions,
                    name_table_off,
                    name_table_cap,
                    klass_segment_off,
                    klass_segment_size: klass_bytes,
                    mark_begin_off,
                    mark_end_off,
                    bitmap_bytes,
                    region_done_off,
                    region_free_off,
                    saved_free_off,
                    region_bitmap_bytes,
                    region_summary_off,
                    region_summary_bytes,
                    data_off,
                    data_size,
                });
            }
            num_regions -= 1;
        }
    }

    /// Writes the metadata area for a freshly formatted heap.
    pub fn write_meta(&self, dev: &NvmDevice) {
        let w = |off, v: u64| dev.write_u64(off, v);
        w(meta::MAGIC, MAGIC);
        w(meta::VERSION, VERSION);
        w(meta::ADDRESS_HINT, self.base);
        w(meta::HEAP_SIZE, dev.size() as u64);
        w(meta::ALLOC_REGION, 0);
        w(meta::ALLOC_TOP, self.data_off as u64);
        w(meta::GLOBAL_TIMESTAMP, 1);
        w(meta::GC_IN_PROGRESS, 0);
        w(meta::KLASS_SEGMENT_TOP, self.klass_segment_off as u64);
        w(meta::REGION_SIZE, self.region_size as u64);
        w(meta::NUM_REGIONS, self.num_regions as u64);
        w(meta::NAME_TABLE_OFF, self.name_table_off as u64);
        w(meta::NAME_TABLE_CAP, self.name_table_cap as u64);
        w(meta::KLASS_SEGMENT_OFF, self.klass_segment_off as u64);
        w(meta::KLASS_SEGMENT_SIZE, self.klass_segment_size as u64);
        w(meta::MARK_BEGIN_OFF, self.mark_begin_off as u64);
        w(meta::MARK_END_OFF, self.mark_end_off as u64);
        w(meta::BITMAP_BYTES, self.bitmap_bytes as u64);
        w(meta::REGION_DONE_OFF, self.region_done_off as u64);
        w(meta::REGION_FREE_OFF, self.region_free_off as u64);
        w(meta::SAVED_FREE_OFF, self.saved_free_off as u64);
        w(meta::REGION_BITMAP_BYTES, self.region_bitmap_bytes as u64);
        w(meta::SAVED_ALLOC_REGION, 0);
        w(meta::SAVED_ALLOC_TOP, 0);
        w(meta::REGION_SUMMARY_OFF, self.region_summary_off as u64);
        w(meta::SUMMARY_TS, 0);
        w(meta::DATA_OFF, self.data_off as u64);
        w(meta::DATA_SIZE, self.data_size as u64);
        dev.persist(0, meta::AREA_SIZE);
    }

    /// Reads the layout back from a formatted device.
    ///
    /// # Errors
    ///
    /// [`PjhError::NotAHeap`] if the magic or version do not match, or the
    /// recorded size disagrees with the device.
    pub fn read_meta(dev: &NvmDevice) -> Result<Layout, PjhError> {
        if dev.size() < meta::AREA_SIZE {
            return Err(PjhError::NotAHeap);
        }
        let r = |off| dev.read_u64(off);
        if r(meta::MAGIC) != MAGIC || r(meta::VERSION) != VERSION {
            return Err(PjhError::NotAHeap);
        }
        if r(meta::HEAP_SIZE) != dev.size() as u64 {
            return Err(PjhError::NotAHeap);
        }
        Ok(Layout {
            base: r(meta::ADDRESS_HINT),
            region_size: r(meta::REGION_SIZE) as usize,
            num_regions: r(meta::NUM_REGIONS) as usize,
            name_table_off: r(meta::NAME_TABLE_OFF) as usize,
            name_table_cap: r(meta::NAME_TABLE_CAP) as usize,
            klass_segment_off: r(meta::KLASS_SEGMENT_OFF) as usize,
            klass_segment_size: r(meta::KLASS_SEGMENT_SIZE) as usize,
            mark_begin_off: r(meta::MARK_BEGIN_OFF) as usize,
            mark_end_off: r(meta::MARK_END_OFF) as usize,
            bitmap_bytes: r(meta::BITMAP_BYTES) as usize,
            region_done_off: r(meta::REGION_DONE_OFF) as usize,
            region_free_off: r(meta::REGION_FREE_OFF) as usize,
            saved_free_off: r(meta::SAVED_FREE_OFF) as usize,
            region_bitmap_bytes: r(meta::REGION_BITMAP_BYTES) as usize,
            region_summary_off: r(meta::REGION_SUMMARY_OFF) as usize,
            region_summary_bytes: (r(meta::NUM_REGIONS) as usize * 16).next_multiple_of(64),
            data_off: r(meta::DATA_OFF) as usize,
            data_size: r(meta::DATA_SIZE) as usize,
        })
    }

    /// Device offset of the first byte of region `i`.
    pub fn region_start(&self, i: usize) -> usize {
        debug_assert!(i < self.num_regions);
        self.data_off + i * self.region_size
    }

    /// Exclusive end offset of region `i`.
    pub fn region_end(&self, i: usize) -> usize {
        self.region_start(i) + self.region_size
    }

    /// Device offset of region `i`'s summary record.
    pub fn region_summary_entry(&self, i: usize) -> usize {
        debug_assert!(i < self.num_regions);
        self.region_summary_off + i * 16
    }

    /// Region index containing device offset `off`.
    pub fn region_of(&self, off: usize) -> usize {
        debug_assert!(off >= self.data_off && off < self.data_off + self.data_size);
        (off - self.data_off) / self.region_size
    }

    /// Data-heap word index of device offset `off` (for the mark bitmaps).
    pub fn word_of(&self, off: usize) -> usize {
        debug_assert!(off >= self.data_off);
        (off - self.data_off) / 8
    }

    /// Device offset of data-heap word index `w`.
    pub fn off_of_word(&self, w: usize) -> usize {
        self.data_off + w * 8
    }

    /// Translates a virtual address to a device offset.
    ///
    /// # Panics
    ///
    /// Panics if the address is below the base (a corrupted reference).
    pub fn to_off(&self, vaddr: u64) -> usize {
        assert!(
            vaddr >= self.base,
            "virtual address {vaddr:#x} below heap base {:#x}",
            self.base
        );
        (vaddr - self.base) as usize
    }

    /// Translates a device offset to a virtual address.
    pub fn to_vaddr(&self, off: usize) -> u64 {
        self.base + off as u64
    }

    /// Whether a device offset lies inside the data heap.
    pub fn in_data(&self, off: usize) -> bool {
        off >= self.data_off && off < self.data_off + self.data_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    fn config() -> PjhConfig {
        PjhConfig::default()
    }

    #[test]
    fn compute_fits_device() {
        let cfg = config();
        let l = Layout::compute(8 << 20, &cfg).unwrap();
        assert!(l.data_off + l.data_size <= 8 << 20);
        assert_eq!(l.data_size % l.region_size, 0);
        assert!(l.num_regions >= 2);
        // Bitmaps must cover the data heap.
        assert!(l.bitmap_bytes * 8 >= l.data_size / 8);
        assert!(l.region_bitmap_bytes * 8 >= l.num_regions);
    }

    #[test]
    fn too_small_is_rejected() {
        assert!(matches!(
            Layout::compute(4096, &config()),
            Err(PjhError::HeapTooSmall { .. })
        ));
    }

    #[test]
    fn meta_roundtrip() {
        let cfg = config();
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let l = Layout::compute(dev.size(), &cfg).unwrap();
        l.write_meta(&dev);
        dev.crash(); // meta must already be persisted
        let l2 = Layout::read_meta(&dev).unwrap();
        assert_eq!(l, l2);
    }

    #[test]
    fn read_meta_rejects_blank_device() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        assert!(matches!(Layout::read_meta(&dev), Err(PjhError::NotAHeap)));
    }

    #[test]
    fn region_math() {
        let cfg = config();
        let l = Layout::compute(8 << 20, &cfg).unwrap();
        assert_eq!(l.region_start(0), l.data_off);
        assert_eq!(l.region_of(l.data_off), 0);
        assert_eq!(l.region_of(l.data_off + l.region_size), 1);
        assert_eq!(l.off_of_word(l.word_of(l.data_off + 16)), l.data_off + 16);
    }

    #[test]
    fn vaddr_translation() {
        let cfg = config();
        let l = Layout::compute(8 << 20, &cfg).unwrap();
        let off = l.data_off + 64;
        assert_eq!(l.to_off(l.to_vaddr(off)), off);
    }
}
