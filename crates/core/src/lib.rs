//! Persistent Java Heap (PJH) — the paper's primary contribution (§3, §4).
//!
//! An NVM-backed heap for a managed runtime that stores ordinary objects
//! (same header layout as the volatile heap), keeps its own metadata —
//! name table, Klass segment, metadata area — in NVM, and guarantees that
//! *heap metadata* is crash consistent:
//!
//! * **Crash-consistent allocation** (§4.1): the persisted allocation top
//!   is advanced before an object header becomes visible, so recovery never
//!   interprets torn allocations.
//! * **Crash-consistent GC** (§4.2): a region-based mark-summarize-compact
//!   collector that persists its mark bitmap before moving anything, uses
//!   the source copy of each object as an undo log, stamps objects with a
//!   global timestamp as they are processed, and tracks finished regions in
//!   a persisted region bitmap.
//! * **Recovery** (§4.3): reloading a heap that crashed mid-collection
//!   re-derives the idempotent summary from the persisted bitmaps and
//!   finishes the compaction.
//!
//! Heap instances are managed by name through [`HeapManager`]
//! (`createHeap` / `loadHeap` / `existsHeap` of Table 1), which hands out
//! shared live [`HeapHandle`]s: opening the same name twice yields the
//! same instance, [`HeapHandle::commit`] is the explicit (incremental)
//! durability boundary, and [`HeapHandle::txn`] runs undo-logged ACID
//! transactions (see [`HeapTxn`]). [`ShardedHeap`] spreads one logical
//! heap over N instances by key hash for multi-heap workloads. Objects
//! are published across restarts through named roots (`setRoot` /
//! `getRoot`).
//!
//! # Example
//!
//! ```
//! use espresso_core::{Pjh, PjhConfig};
//! use espresso_nvm::{NvmConfig, NvmDevice};
//! use espresso_object::FieldDesc;
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
//! let mut heap = Pjh::create(dev.clone(), PjhConfig::small())?;
//! let person = heap.register_instance(
//!     "Person",
//!     vec![FieldDesc::prim("id"), FieldDesc::reference("name")],
//! )?;
//! let p = heap.alloc_instance(person)?;   // `pnew Person(...)`
//! heap.set_field(p, 0, 42);
//! heap.flush_object(p);
//! heap.set_root("boss", p)?;
//!
//! // Power failure, then reload from the same device.
//! dev.crash();
//! let (mut heap, report) = Pjh::load(dev, espresso_core::LoadOptions::default())?;
//! assert!(!report.recovered_gc);
//! let p = heap.get_root("boss").expect("root survived");
//! assert_eq!(heap.field(p, 0), 42);
//! # let _ = &mut heap;
//! # Ok(())
//! # }
//! ```

mod bitmap;
mod gc;
mod heap;
mod klass_segment;
mod layout;
mod manager;
mod name_table;
mod shard;
mod txn;
mod typed;

pub use bitmap::Bitmap;
pub use gc::{GcEscalation, GcKind, GcReport, RegionSummary};
pub use heap::{HeapCensus, HeapStats, LoadOptions, LoadReport, Pjh, SafetyLevel};
pub use klass_segment::PKlassTable;
pub use layout::{Layout, MAX_NAME_LEN};
pub use manager::{
    CommitReport, CommitState, CommitTicket, HeapHandle, HeapManager, ReadSession, WriteSession,
};
pub use name_table::EntryKind;
pub use shard::{hash_key, ShardRef, ShardedCommitTicket, ShardedHeap, ShardedKlass};
pub use txn::HeapTxn;
// Re-export the schema vocabulary so typed callers need only this crate.
pub use espresso_object::{
    ArrFld, FieldType, Fld, PArr, PClass, PClassBuilder, PObject, PRef, PValue, RefFld, Schema,
    SchemaError, SchemaField, StrFld,
};

use std::fmt;

/// Construction parameters for a PJH instance.
#[derive(Debug, Clone)]
pub struct PjhConfig {
    /// Region size in bytes (power of two, minimum 4 KiB).
    pub region_size: usize,
    /// Name table capacity in entries.
    pub name_table_capacity: usize,
    /// Klass segment size in bytes.
    pub klass_segment_size: usize,
    /// Virtual base address the heap is created at (the address hint).
    pub base_address: u64,
    /// When `false`, the collector skips every flush/fence it issues for
    /// crash consistency — the §6.4 baseline ("remove all the clflush
    /// operations").
    pub recoverable_gc: bool,
    /// Allocation-buffer (PLAB) size in bytes: the persisted allocation
    /// top advances a whole buffer at a time, so `pnew` amortizes its
    /// metadata persist over `plab_size / object_size` allocations instead
    /// of flushing the cursor per object (§4.1 batching). The buffer never
    /// crosses a region boundary; `0` restores the strict per-object
    /// cursor persist.
    pub plab_size: usize,
    /// Whether the v3 allocation path may serve allocations from the
    /// per-size-class free lists over dead object slots. DRAM-only policy
    /// (the persisted image is identical either way); `false` gives the
    /// bump-only baseline the churn benchmark compares against.
    pub alloc_reuse: bool,
}

impl PjhConfig {
    /// Small regions and tables, for tests.
    pub fn small() -> Self {
        PjhConfig {
            region_size: 4096,
            ..PjhConfig::default()
        }
    }
}

impl Default for PjhConfig {
    fn default() -> Self {
        PjhConfig {
            region_size: 64 << 10,
            name_table_capacity: 256,
            klass_segment_size: 256 << 10,
            base_address: 0x5000_0000_0000,
            recoverable_gc: true,
            plab_size: 8 << 10,
            alloc_reuse: true,
        }
    }
}

/// Errors reported by PJH operations.
#[derive(Debug)]
pub enum PjhError {
    /// The device is too small for metadata plus two regions.
    HeapTooSmall {
        /// Device size in bytes.
        size: usize,
    },
    /// The device does not contain a formatted PJH image.
    NotAHeap,
    /// Allocation failed; run a collection and retry.
    HeapFull {
        /// Words requested by the failing allocation.
        requested_words: usize,
    },
    /// An object larger than one region was requested (objects never span
    /// regions; see DESIGN.md).
    ObjectTooLarge {
        /// Words requested.
        requested_words: usize,
    },
    /// The name table is out of slots.
    NameTableFull,
    /// A name exceeds [`MAX_NAME_LEN`].
    NameTooLong {
        /// The offending name.
        name: String,
    },
    /// The Klass segment is out of space.
    KlassSegmentFull,
    /// A class registration disagrees with the layout persisted in the
    /// Klass segment.
    KlassLayoutMismatch {
        /// The class name.
        name: String,
    },
    /// A typed-layer violation: a declared schema disagrees with the
    /// schema persisted in the heap (schema evolution), a field was
    /// accessed with the wrong type, or a typed handle's class check
    /// failed.
    SchemaMismatch {
        /// The class name.
        class: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A store or allocation violated the configured safety level (§3.4).
    SafetyViolation {
        /// Human-readable description.
        reason: String,
    },
    /// An underlying device error (image I/O).
    Nvm(espresso_nvm::NvmError),
    /// A named heap was not found by the manager.
    NoSuchHeap {
        /// The heap name.
        name: String,
    },
    /// A heap with this name already exists (open or on disk).
    HeapExists {
        /// The heap name.
        name: String,
    },
}

impl fmt::Display for PjhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PjhError::HeapTooSmall { size } => {
                write!(f, "device of {size} bytes is too small for a heap")
            }
            PjhError::NotAHeap => write!(f, "device does not contain a persistent heap image"),
            PjhError::HeapFull { requested_words } => {
                write!(f, "persistent heap full allocating {requested_words} words")
            }
            PjhError::ObjectTooLarge { requested_words } => {
                write!(
                    f,
                    "object of {requested_words} words exceeds the region size"
                )
            }
            PjhError::NameTableFull => write!(f, "name table is full"),
            PjhError::NameTooLong { name } => write!(f, "name too long: {name:?}"),
            PjhError::KlassSegmentFull => write!(f, "klass segment is full"),
            PjhError::KlassLayoutMismatch { name } => {
                write!(f, "class {name} disagrees with the persisted layout")
            }
            PjhError::SchemaMismatch { class, detail } => {
                write!(f, "schema mismatch on class {class}: {detail}")
            }
            PjhError::SafetyViolation { reason } => write!(f, "memory safety violation: {reason}"),
            PjhError::Nvm(e) => write!(f, "nvm device error: {e}"),
            PjhError::NoSuchHeap { name } => write!(f, "no heap named {name:?}"),
            PjhError::HeapExists { name } => write!(f, "heap {name:?} already exists"),
        }
    }
}

impl std::error::Error for PjhError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PjhError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<espresso_nvm::NvmError> for PjhError {
    fn from(e: espresso_nvm::NvmError) -> Self {
        PjhError::Nvm(e)
    }
}

impl From<espresso_object::SchemaError> for PjhError {
    fn from(e: espresso_object::SchemaError) -> Self {
        PjhError::SchemaMismatch {
            class: e.class,
            detail: e.detail,
        }
    }
}

/// Result alias for PJH operations.
pub type Result<T> = std::result::Result<T, PjhError>;
