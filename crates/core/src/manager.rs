//! The external name manager behind the Table 1 heap APIs:
//! `createHeap(name, size)`, `loadHeap(name)`, `existsHeap(name)`.
//!
//! Maps heap names to persisted device images in a directory, one file per
//! PJH instance. The image written on [`save`](HeapManager::save) is the
//! device's *persistence domain* — exactly what a power failure would have
//! preserved — so crash-recovery behaviour carries across processes.

use std::path::{Path, PathBuf};

use espresso_nvm::{LatencyModel, NvmConfig, NvmDevice};

use crate::heap::{LoadOptions, LoadReport, Pjh};
use crate::{PjhConfig, PjhError};

/// A directory of named persistent heaps.
#[derive(Debug, Clone)]
pub struct HeapManager {
    dir: PathBuf,
}

impl HeapManager {
    /// Opens (creating if needed) a heap directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> crate::Result<HeapManager> {
        std::fs::create_dir_all(dir.as_ref()).map_err(espresso_nvm::NvmError::Io)?;
        Ok(HeapManager {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// Opens a manager over a fresh unique temporary directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn temp() -> crate::Result<HeapManager> {
        let unique = format!(
            "espresso-heaps-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        HeapManager::open(std::env::temp_dir().join(unique))
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.pjh"))
    }

    /// `existsHeap`: whether a heap image with this name exists.
    pub fn exists_heap(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    /// `createHeap(name, size)`: formats a new heap on a fresh device and
    /// registers the name mapping.
    ///
    /// # Errors
    ///
    /// Layout errors; I/O errors writing the initial image.
    pub fn create_heap(&self, name: &str, size: usize, config: PjhConfig) -> crate::Result<Pjh> {
        let dev = NvmDevice::new(NvmConfig::with_size(size));
        let heap = Pjh::create(dev, config)?;
        heap.device().save_image(&self.path(name))?;
        Ok(heap)
    }

    /// `loadHeap(name)`: locates the image, maps it, and runs the loading
    /// pipeline (recovery, optional remap, optional zeroing scan).
    ///
    /// # Errors
    ///
    /// [`PjhError::NoSuchHeap`] if the name is unknown; image and format
    /// errors otherwise.
    pub fn load_heap(&self, name: &str, options: LoadOptions) -> crate::Result<(Pjh, LoadReport)> {
        if !self.exists_heap(name) {
            return Err(PjhError::NoSuchHeap {
                name: name.to_string(),
            });
        }
        let dev = NvmDevice::load_image(&self.path(name), LatencyModel::zero())?;
        Pjh::load(dev, options)
    }

    /// Persists the heap's durable image back to its file (the moral
    /// equivalent of the NVDIMM keeping its contents at shutdown).
    ///
    /// # Errors
    ///
    /// I/O errors writing the image.
    pub fn save(&self, name: &str, heap: &Pjh) -> crate::Result<()> {
        heap.device().save_image(&self.path(name))?;
        Ok(())
    }

    /// Deletes a heap image; returns whether it existed.
    pub fn delete_heap(&self, name: &str) -> bool {
        std::fs::remove_file(self.path(name)).is_ok()
    }

    /// Names of all heaps in this directory, sorted.
    pub fn heap_names(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.flatten()
                    .filter_map(|e| {
                        let p = e.path();
                        (p.extension().is_some_and(|x| x == "pjh"))
                            .then(|| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                            .flatten()
                    })
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_object::FieldDesc;

    #[test]
    fn create_exists_load_roundtrip() {
        let mgr = HeapManager::temp().unwrap();
        assert!(!mgr.exists_heap("jimmy"));
        let mut h = mgr
            .create_heap("jimmy", 4 << 20, PjhConfig::small())
            .unwrap();
        assert!(mgr.exists_heap("jimmy"));

        let k = h
            .register_instance(
                "Person",
                vec![FieldDesc::prim("id"), FieldDesc::reference("next")],
            )
            .unwrap();
        let p = h.alloc_instance(k).unwrap();
        h.set_field(p, 0, 31);
        h.flush_object(p);
        h.set_root("jimmy_info", p).unwrap();
        mgr.save("jimmy", &h).unwrap();

        let (h2, _) = mgr.load_heap("jimmy", LoadOptions::default()).unwrap();
        let p2 = h2.get_root("jimmy_info").unwrap();
        assert_eq!(h2.field(p2, 0), 31);
    }

    #[test]
    fn load_missing_heap_errors() {
        let mgr = HeapManager::temp().unwrap();
        assert!(matches!(
            mgr.load_heap("ghost", LoadOptions::default()),
            Err(PjhError::NoSuchHeap { .. })
        ));
    }

    #[test]
    fn unsaved_changes_do_not_reach_the_image() {
        let mgr = HeapManager::temp().unwrap();
        let mut h = mgr.create_heap("a", 4 << 20, PjhConfig::small()).unwrap();
        let k = h
            .register_instance("T", vec![FieldDesc::prim("x")])
            .unwrap();
        let t = h.alloc_instance(k).unwrap();
        h.set_root("t", t).unwrap();
        // No save: loading sees the freshly created image.
        let (h2, _) = mgr.load_heap("a", LoadOptions::default()).unwrap();
        assert_eq!(h2.get_root("t"), None);
        assert_eq!(h2.census().objects, 0);
    }

    #[test]
    fn delete_and_list() {
        let mgr = HeapManager::temp().unwrap();
        mgr.create_heap("x", 4 << 20, PjhConfig::small()).unwrap();
        mgr.create_heap("y", 4 << 20, PjhConfig::small()).unwrap();
        assert_eq!(mgr.heap_names(), vec!["x", "y"]);
        assert!(mgr.delete_heap("x"));
        assert!(!mgr.delete_heap("x"));
        assert_eq!(mgr.heap_names(), vec!["y"]);
    }
}
