//! The session-based heap manager behind the Table 1 heap APIs:
//! `createHeap(name, size)`, `loadHeap(name)`, `existsHeap(name)`.
//!
//! A [`HeapManager`] maps heap names to persisted device images in a
//! directory (one file per PJH instance) and keeps a **live registry** of
//! the heaps currently open: loading the same name twice yields the *same*
//! shared [`HeapHandle`], so every part of a process observes one
//! consistent heap.
//!
//! Durability is an explicit, **pipelined** commit point.
//! [`HeapHandle::commit`] *seals an epoch*: it snapshots the cache lines
//! persisted since the previous commit (copying their bytes under the
//! heap lock) and hands the snapshot to a per-heap background
//! [`FlushPipeline`], returning a [`CommitTicket`] immediately — mutations
//! in the next epoch proceed while the image sync runs off-thread, and
//! re-dirtied lines cannot leak into the sealed epoch because the snapshot
//! pinned their bytes. [`CommitTicket::wait`] (or the
//! [`HeapHandle::commit_sync`] shorthand) is the durability barrier: when
//! it returns, the image file holds at least the sealed epoch.
//!
//! # Example
//!
//! ```
//! use espresso_core::{HeapManager, LoadOptions, PjhConfig};
//! use espresso_object::FieldDesc;
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let jimmy = mgr.create("jimmy", 4 << 20, PjhConfig::small())?;
//! let p = jimmy.with_mut(|heap| {
//!     let k = heap.register_instance("Person", vec![FieldDesc::prim("id")])?;
//!     let p = heap.alloc_instance(k)?;
//!     heap.set_field(p, 0, 31);
//!     heap.flush_object(p);
//!     heap.set_root("jimmy_info", p)?;
//!     Ok::<_, espresso_core::PjhError>(p)
//! })?;
//! let ticket = jimmy.commit()?; // seals the epoch, sync runs off-thread
//! // ... epoch N+1 mutations would proceed here ...
//! ticket.wait()?;              // durability barrier
//!
//! // A second open anywhere in the process sees the same live heap.
//! let again = mgr.load("jimmy", LoadOptions::default())?;
//! assert_eq!(again.with(|heap| heap.get_root("jimmy_info")), Some(p));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};

use espresso_nvm::{
    EpochClock, EpochPin, EpochState, FlushPipeline, LatencyModel, NvmConfig, NvmDevice,
};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};

use crate::heap::{LoadOptions, LoadReport, Pjh};
use crate::txn::HeapTxn;
use crate::{PjhConfig, PjhError};

/// What a commit sealed (and, once its ticket resolves, synced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitReport {
    /// Cache lines captured for the image file.
    pub synced_lines: usize,
    /// Bytes captured for the image file.
    pub synced_bytes: usize,
    /// The whole image was rewritten (first commit of a fresh file).
    pub full_rewrite: bool,
    /// Whether the handle is bound to an image file at all. Unmanaged
    /// handles (wrapped raw heaps) report `false` and sync nothing — their
    /// device's persistence domain is the durability boundary.
    pub managed: bool,
}

/// Where a sealed commit epoch stands, answered non-consumingly by
/// [`CommitTicket::state`].
///
/// `is_durable()` alone cannot distinguish "still applying" from "the
/// apply failed": a failed or aborted epoch would read as `false`
/// forever, with the I/O error observable only by consuming
/// [`CommitTicket::wait`]. `state()` closes that gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitState {
    /// Sealed, apply not yet completed (queued, paused, or running).
    InFlight,
    /// The epoch's content is durably in the image file — its own apply
    /// landed, or a later apply covered its restored lines.
    Durable,
    /// The apply failed or was aborted and no later apply has covered it
    /// yet; the payload is the same reason [`CommitTicket::wait`] would
    /// return as an error. The lines were restored to the device, so a
    /// fresh commit heals — after which the state becomes
    /// [`Durable`](Self::Durable).
    Failed(String),
}

/// A sealed-but-possibly-not-yet-durable commit epoch, returned by
/// [`HeapHandle::commit`].
///
/// The epoch's contents were snapshotted when the ticket was issued;
/// [`wait`](Self::wait) blocks until the background apply has written them
/// to the image file and is the durability barrier. Dropping a ticket
/// without waiting is fine — the commit still becomes durable in the
/// background: the manager retains the heap's pipeline, and a later
/// `load` of the name waits for pending applies before mapping the
/// image.
#[derive(Debug)]
pub struct CommitTicket {
    /// Per-heap commit epoch this ticket seals (0 for unmanaged handles).
    epoch: u64,
    report: CommitReport,
    pipeline: Option<Arc<FlushPipeline>>,
}

impl CommitTicket {
    /// The sealed epoch (0 for unmanaged handles, whose commits have
    /// nothing to sync).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// What the commit sealed: delta sizes known at seal time.
    pub fn sealed_report(&self) -> CommitReport {
        self.report
    }

    /// Whether the epoch has already reached the image file. `false`
    /// covers both "still in flight" and "failed" — use
    /// [`state`](Self::state) to tell them apart.
    pub fn is_durable(&self) -> bool {
        matches!(self.state(), CommitState::Durable)
    }

    /// Where the sealed epoch stands right now, without consuming the
    /// ticket or blocking: in flight, durable, or failed (with the apply
    /// error's reason). Consistent with the pipeline's failure cascade —
    /// an aborted or failed epoch reports [`CommitState::Failed`] until a
    /// later commit re-captures its restored lines, after which it reads
    /// [`CommitState::Durable`], exactly as [`wait`](Self::wait) would
    /// resolve. Unmanaged handles' no-op commits are trivially durable.
    pub fn state(&self) -> CommitState {
        match &self.pipeline {
            None => CommitState::Durable,
            Some(p) => match p.epoch_state(self.epoch) {
                EpochState::Durable => CommitState::Durable,
                EpochState::InFlight => CommitState::InFlight,
                EpochState::Failed(reason) => CommitState::Failed(reason),
            },
        }
    }

    /// Blocks until the sealed epoch is durable in the image file.
    ///
    /// # Errors
    ///
    /// I/O errors from the background apply (the epoch's lines were
    /// restored, so a later commit re-captures them).
    pub fn wait(self) -> crate::Result<CommitReport> {
        if let Some(pipeline) = &self.pipeline {
            pipeline.wait_durable(self.epoch)?;
        }
        Ok(self.report)
    }
}

/// Lock order, outermost first — every multi-lock path must acquire in
/// this order (levels may be skipped, never reversed):
///
/// ```text
/// manager.live → manager.pipelines → handle.heap → handle.path
///              → handle.pipeline → handle.replica
/// ```
///
/// Notable holders: `commit` takes `heap.read → path → pipeline`;
/// `delete_heap` scopes `live`, then `pipelines`, then takes
/// `path → pipeline`; `create` takes `live → pipelines`; `load` takes
/// `pipelines` and `live` in *separate* scopes and never blocks on the
/// pipeline while holding either (see its body); a closing
/// `WriteSession` holds `heap.write` while briefly taking `replica`.
/// Read sessions take only `replica` (no `RwLock` at all).
struct HandleInner {
    name: String,
    /// Image file backing this heap; `None` for unmanaged handles and for
    /// handles detached by [`HeapManager::delete_heap`] (a stale commit
    /// must never clobber a successor heap's image).
    path: Mutex<Option<PathBuf>>,
    report: LoadReport,
    /// Background apply worker; shared by every clone of the handle so
    /// commits form one FIFO epoch sequence. Manager-backed handles get
    /// their name's pipeline at construction (the manager retains it, so
    /// applies outlive the handle and a reopen waits for them);
    /// unmanaged handles spawn one lazily if the crash hooks ask.
    pipeline: Mutex<Option<Arc<FlushPipeline>>>,
    heap: RwLock<Pjh>,
    /// Reclamation clock for lock-free read sessions: readers pin it, GC
    /// defers region reuse past it. For managed handles this *is* the
    /// commit pipeline's clock, so sealed commit epochs and reclamation
    /// epochs share one timeline.
    clock: Arc<EpochClock>,
    /// The published read replica and the metadata generation it was
    /// taken at: an owned snapshot of the heap's DRAM metadata over the
    /// same (internally synchronized) device. A closing write section
    /// republishes only when the generation moved (registrations, roots,
    /// GC — not plain object stores); readers clone the `Arc` and go —
    /// they never touch `heap`'s `RwLock`.
    replica: Mutex<(u64, Arc<Pjh>)>,
}

/// A shared, live handle to one open PJH instance.
///
/// Cheap to clone; all clones (and every [`HeapManager::load`] of the same
/// name while the heap stays open) refer to the same heap behind one
/// reader-writer lock. See [`HeapManager`] for the lifecycle.
#[derive(Clone)]
pub struct HeapHandle {
    inner: Arc<HandleInner>,
}

impl std::fmt::Debug for HeapHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapHandle")
            .field("name", &self.inner.name)
            .field("managed", &self.is_managed())
            .finish()
    }
}

/// A lock-free read-only session over one heap, returned by
/// [`HeapHandle::read`] — it derefs to [`Pjh`], so every raw and typed
/// getter works unchanged.
///
/// **What "non-blocking" guarantees.** Opening a session never waits on
/// the heap's writer lock: it pins the reclamation epoch (two atomic
/// stores on the hot path) and clones an `Arc` to the latest published
/// metadata replica. Concurrent writers, transactions, commits, and
/// collections all proceed while any number of sessions are open.
///
/// **What a session observes.** Data reads go to the shared device,
/// which is internally synchronized — a session sees committed object
/// *contents* live, including stores a concurrent writer lands after the
/// session opened. The session's *metadata* (klass table, name index,
/// summaries) is the snapshot published at the last write-section close.
/// There is no snapshot isolation across multiple fields; what the pin
/// buys is memory safety, not serializability.
///
/// **What a pinned epoch holds back.** GC may run and relocate objects
/// while sessions are open, but every region it frees is deferred: not
/// zeroed, not reallocated, not reused as an evacuation target until all
/// sessions pinned at or before the freeing epoch drop. Refs obtained
/// inside the session therefore stay readable (old images are kept
/// intact) for the session's whole lifetime. The cost of holding a
/// session across collections is space: deferred regions count as free
/// but are not reusable, so a long-pinned reader can drive an allocating
/// writer to [`PjhError::HeapFull`](crate::PjhError::HeapFull) until the
/// session drops.
pub struct ReadSession {
    replica: Arc<Pjh>,
    _pin: EpochPin,
}

impl ReadSession {
    /// The reclamation epoch this session pins: regions freed at or
    /// after it stay readable until the session drops.
    pub fn epoch(&self) -> u64 {
        self._pin.epoch()
    }
}

impl Deref for ReadSession {
    type Target = Pjh;
    fn deref(&self) -> &Pjh {
        &self.replica
    }
}

impl std::fmt::Debug for ReadSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSession")
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// An exclusive write session over one heap, returned by
/// [`HeapHandle::write`]; derefs to [`Pjh`]. Holds the heap's writer
/// lock; on drop it publishes a fresh metadata replica so later read
/// sessions observe everything this section changed.
pub struct WriteSession<'a> {
    guard: Option<RwLockWriteGuard<'a, Pjh>>,
    inner: &'a HandleInner,
}

impl Deref for WriteSession<'_> {
    type Target = Pjh;
    fn deref(&self) -> &Pjh {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl DerefMut for WriteSession<'_> {
    fn deref_mut(&mut self) -> &mut Pjh {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl Drop for WriteSession<'_> {
    fn drop(&mut self) {
        // Publish while still holding the write lock: a reader pinning
        // between the publication and the lock release sees either this
        // replica or a later one, never a half-written section... of the
        // *metadata*; device contents are always live. Runs on unwind
        // too, so a panicking transaction still publishes its (aborted,
        // rolled-back) state. Skipped entirely when the section touched
        // no reader-visible metadata — the common store/alloc path stays
        // clone-free.
        let guard = self.guard.take().expect("dropped once");
        let gen = guard.meta_gen;
        let mut replica = self.inner.replica.lock();
        if replica.0 != gen {
            *replica = (gen, Arc::new(guard.read_replica()));
        }
    }
}

impl HeapHandle {
    fn build(
        name: String,
        path: Option<PathBuf>,
        mut heap: Pjh,
        report: LoadReport,
        pipeline: Option<Arc<FlushPipeline>>,
        clock: Arc<EpochClock>,
    ) -> HeapHandle {
        heap.attach_epoch_clock(Arc::clone(&clock));
        let replica = (heap.meta_gen, Arc::new(heap.read_replica()));
        HeapHandle {
            inner: Arc::new(HandleInner {
                name,
                path: Mutex::new(path),
                report,
                pipeline: Mutex::new(pipeline),
                heap: RwLock::new(heap),
                clock,
                replica: Mutex::new(replica),
            }),
        }
    }

    fn managed(
        name: String,
        path: PathBuf,
        heap: Pjh,
        report: LoadReport,
        pipeline: Arc<FlushPipeline>,
    ) -> HeapHandle {
        // Managed handles pin readers against the pipeline's own clock:
        // sealed commit epochs tick the same counter GC defers against.
        let clock = pipeline.epoch_clock();
        HeapHandle::build(name, Some(path), heap, report, Some(pipeline), clock)
    }

    /// Wraps a raw heap in an unmanaged handle (no backing image file).
    /// [`commit`](Self::commit) becomes a no-op ticket; everything else —
    /// sharing, [`txn`](Self::txn), locking — works identically, which
    /// lets device-level tests and benches use the session API without a
    /// filesystem.
    pub fn from_pjh(heap: Pjh) -> HeapHandle {
        HeapHandle::build(
            "<unmanaged>".to_string(),
            None,
            heap,
            LoadReport::default(),
            None,
            Arc::new(EpochClock::new()),
        )
    }

    /// The heap's flush pipeline, spawned on first use.
    fn pipeline(&self) -> Arc<FlushPipeline> {
        let mut slot = self.inner.pipeline.lock();
        slot.get_or_insert_with(|| Arc::new(FlushPipeline::new()))
            .clone()
    }

    /// The heap's registered name (`"<unmanaged>"` for wrapped raw heaps).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Whether this handle is bound to an image file (false for wrapped
    /// raw heaps, and for handles detached by `delete_heap`).
    pub fn is_managed(&self) -> bool {
        self.inner.path.lock().is_some()
    }

    /// What happened when the heap was loaded (all-default for heaps
    /// created fresh this session).
    pub fn load_report(&self) -> LoadReport {
        self.inner.report
    }

    /// Opens a **lock-free read-only session**: every typed getter
    /// (`get`, `get_ref`, `get_str`, `root::<T>`, …) and every raw read
    /// takes `&Pjh` through the returned [`ReadSession`]. Opening never
    /// blocks on (or takes) the heap's writer lock — it pins the
    /// reclamation epoch and borrows the latest published metadata
    /// replica, so any number of sessions run concurrently with writers,
    /// commits, and GC. See [`ReadSession`] for the exact guarantees and
    /// for what a long-held pin holds back.
    pub fn read(&self) -> ReadSession {
        // Pin FIRST, then take the replica: a GC completing in between
        // would defer its freed regions against an epoch ≥ ours, so
        // every ref this session can reach stays un-reclaimed.
        let pin = self.inner.clock.pin();
        let replica = Arc::clone(&self.inner.replica.lock().1);
        ReadSession { replica, _pin: pin }
    }

    /// Acquires the heap for writing (exclusive). The returned session
    /// publishes a fresh read replica when dropped.
    pub fn write(&self) -> WriteSession<'_> {
        WriteSession {
            guard: Some(self.inner.heap.write()),
            inner: &self.inner,
        }
    }

    /// Runs `f` in a read-only session (see [`read`](Self::read) — `f`
    /// takes no lock and runs concurrently with writers).
    pub fn with<R>(&self, f: impl FnOnce(&Pjh) -> R) -> R {
        f(&self.read())
    }

    /// Runs `f` with exclusive write access to the heap.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Pjh) -> R) -> R {
        f(&mut self.write())
    }

    /// Allocator/collector statistics straight from the live heap (under
    /// the read lock rather than via the replica: free-list churn does
    /// not republish, so a replica's counters can lag).
    pub fn heap_stats(&self) -> crate::HeapStats {
        self.inner.heap.read().heap_stats()
    }

    /// Runs `f` inside an undo-logged transaction with exclusive access:
    /// commit on `Ok`, abort on `Err`, abort on panic (see
    /// [`Pjh::txn`]). Do not call [`commit`](Self::commit) or re-enter the
    /// handle from inside `f` — the heap lock is held for the whole scope.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after aborting.
    pub fn txn<T>(&self, f: impl FnOnce(&mut HeapTxn<'_>) -> crate::Result<T>) -> crate::Result<T> {
        self.write().txn(f)
    }

    /// The explicit commit point: **seals an epoch**. Every cache line
    /// persisted since the previous commit is snapshotted (bytes copied)
    /// and handed to the heap's background flush pipeline; the returned
    /// [`CommitTicket`] resolves when the image sync finishes. Mutations
    /// in the next epoch proceed immediately — lines dirtied again before
    /// the apply lands cannot contaminate the sealed epoch, because the
    /// snapshot pinned their contents.
    ///
    /// What lands in the file is exactly the device's persistence domain
    /// at seal time — a transaction torn by a mid-transaction commit is
    /// rolled back by the next load, like any crash.
    ///
    /// Use [`commit_sync`](Self::commit_sync) (or `ticket.wait()`) when
    /// the caller needs the durability barrier.
    ///
    /// # Errors
    ///
    /// None today at seal time; the I/O of the apply surfaces through the
    /// ticket. The `Result` keeps the seal fallible for future layouts.
    pub fn commit(&self) -> crate::Result<CommitTicket> {
        // A read guard suffices: it excludes every `&mut Pjh` mutator, and
        // the device snapshot below reads only the persisted image. The
        // path lock is held across the snapshot so a concurrent
        // `delete_heap` (which detaches the path and aborts queued
        // applies) serializes with in-flight seals instead of letting a
        // stale sync race a successor's image.
        let heap = self.inner.heap.read();
        let path = self.inner.path.lock();
        match path.as_ref() {
            Some(path) => {
                // The generation is read before the snapshot: if a failed
                // apply restores lines while we are snapshotting, the
                // pipeline refuses this (incomplete) snapshot instead of
                // applying it over the restored lines.
                let pipeline = self.pipeline();
                let seal_gen = pipeline.seal_generation();
                let snapshot = heap.device().snapshot_sync(path);
                let report = CommitReport {
                    synced_lines: snapshot.lines(),
                    synced_bytes: snapshot.bytes(),
                    full_rewrite: snapshot.is_full_rewrite(),
                    managed: true,
                };
                let epoch = pipeline.submit_sealed(seal_gen, heap.device(), path.clone(), snapshot);
                Ok(CommitTicket {
                    epoch,
                    report,
                    pipeline: Some(pipeline),
                })
            }
            None => Ok(CommitTicket {
                epoch: 0,
                report: CommitReport {
                    managed: false,
                    ..CommitReport::default()
                },
                pipeline: None,
            }),
        }
    }

    /// Commit with the durability barrier inline: seals the epoch and
    /// blocks until it reaches the image file. Equivalent to
    /// `self.commit()?.wait()`.
    ///
    /// # Errors
    ///
    /// I/O errors from the image sync.
    pub fn commit_sync(&self) -> crate::Result<CommitReport> {
        self.commit()?.wait()
    }

    /// Highest commit epoch sealed on this heap (0 before the first
    /// commit).
    pub fn sealed_epoch(&self) -> u64 {
        self.inner
            .pipeline
            .lock()
            .as_ref()
            .map_or(0, |p| p.sealed_epoch())
    }

    /// Highest commit epoch whose image sync has completed.
    pub fn durable_epoch(&self) -> u64 {
        self.inner
            .pipeline
            .lock()
            .as_ref()
            .map_or(0, |p| p.durable_epoch())
    }

    /// Commit epochs sealed but not yet applied: the depth of the flush
    /// pipeline's queue. A serving layer polls this to decide when the
    /// pipeline is lagging and new writes should be refused (backpressure)
    /// instead of queueing unboundedly behind a slow or paused apply.
    pub fn pending_commits(&self) -> usize {
        self.inner
            .pipeline
            .lock()
            .as_ref()
            .map_or(0, |p| p.pending())
    }

    /// Whether background applies are currently paused (see
    /// [`set_flush_paused`](Self::set_flush_paused)) — the observation
    /// half of the crash-injection hook, so callers can tell a paused
    /// pipeline from a merely slow one.
    pub fn flush_paused(&self) -> bool {
        self.inner
            .pipeline
            .lock()
            .as_ref()
            .is_some_and(|p| p.is_paused())
    }

    /// Pauses (or resumes) the background applies — with
    /// [`abort_pending_commits`](Self::abort_pending_commits), the
    /// deterministic crash-injection hook for the window between a sealed
    /// epoch and its image sync. While paused, `wait`/`commit_sync` on
    /// newly sealed epochs block — and so does a `HeapManager::load` of
    /// the name after the handles drop (it waits for pending applies), so
    /// resume or abort before closing the session.
    pub fn set_flush_paused(&self, paused: bool) {
        self.pipeline().set_paused(paused);
    }

    /// Discards every sealed-but-not-yet-applied commit, as if the
    /// process died between seal and apply: their tickets report errors,
    /// their lines are restored so the next commit re-captures them, and
    /// the image file keeps the last applied epoch. Returns how many
    /// commits were discarded.
    pub fn abort_pending_commits(&self) -> usize {
        self.inner
            .pipeline
            .lock()
            .as_ref()
            .map_or(0, |p| p.abort_pending())
    }
}

impl From<Pjh> for HeapHandle {
    fn from(heap: Pjh) -> HeapHandle {
        HeapHandle::from_pjh(heap)
    }
}

struct ManagerInner {
    dir: PathBuf,
    /// `temp()` managers own their directory and remove it on drop.
    owns_dir: bool,
    /// Live registry: name → open handle. Weak so dropping every handle
    /// closes the heap (a later load re-reads the image).
    live: Mutex<HashMap<String, Weak<HandleInner>>>,
    /// name → that heap's flush pipeline, retained **strongly** so
    /// background applies outlive their handles: a `load` of a
    /// just-closed name waits for the pipeline to go idle before mapping
    /// the image (otherwise it could read a half-applied epoch), and
    /// `delete_heap` waits before removing the file. Entries live until
    /// the heap is deleted or the manager drops.
    pipelines: Mutex<HashMap<String, Arc<FlushPipeline>>>,
}

impl Drop for ManagerInner {
    fn drop(&mut self) {
        // Drain every pipeline (applying still-queued commits) before the
        // directory disappears under them.
        for (_, pipeline) in self.pipelines.get_mut().drain() {
            drop(pipeline);
        }
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// A directory of named persistent heaps with a live-handle registry.
///
/// Cheap to clone; clones share the registry (and, for
/// [`temp`](Self::temp) managers, ownership of the directory).
#[derive(Clone)]
pub struct HeapManager {
    inner: Arc<ManagerInner>,
}

impl std::fmt::Debug for HeapManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapManager")
            .field("dir", &self.inner.dir)
            .field("owns_dir", &self.inner.owns_dir)
            .finish()
    }
}

impl HeapManager {
    fn new(dir: PathBuf, owns_dir: bool) -> crate::Result<HeapManager> {
        std::fs::create_dir_all(&dir).map_err(espresso_nvm::NvmError::Io)?;
        Ok(HeapManager {
            inner: Arc::new(ManagerInner {
                dir,
                owns_dir,
                live: Mutex::new(HashMap::new()),
                pipelines: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// Opens (creating if needed) a heap directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> crate::Result<HeapManager> {
        HeapManager::new(dir.as_ref().to_path_buf(), false)
    }

    /// Opens a manager over a fresh unique temporary directory. The
    /// manager owns the directory: when the last clone drops, the
    /// directory and every image in it are removed.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn temp() -> crate::Result<HeapManager> {
        let unique = format!(
            "espresso-heaps-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        HeapManager::new(std::env::temp_dir().join(unique), true)
    }

    /// The directory holding the images.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.inner.dir.join(format!("{name}.pjh"))
    }

    /// The retained flush pipeline for `name`, created on first use and
    /// reused across close/reopen cycles of the heap (so every apply to
    /// one image file funnels through one FIFO worker).
    fn pipeline_for(&self, name: &str) -> Arc<FlushPipeline> {
        self.inner
            .pipelines
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(FlushPipeline::new()))
            .clone()
    }

    /// `existsHeap`: whether a heap with this name exists — open in the
    /// live registry or persisted as an image.
    pub fn exists_heap(&self, name: &str) -> bool {
        self.live_handle(name).is_some() || self.path(name).exists()
    }

    fn live_handle(&self, name: &str) -> Option<HeapHandle> {
        let mut live = self.inner.live.lock();
        match live.get(name).and_then(Weak::upgrade) {
            Some(inner) => Some(HeapHandle { inner }),
            None => {
                live.remove(name); // prune the dead entry
                None
            }
        }
    }

    /// `createHeap(name, size)`: formats a new heap on a fresh device,
    /// writes its initial image, and registers the live handle.
    ///
    /// # Errors
    ///
    /// [`PjhError::HeapExists`] if the name is already taken (open or on
    /// disk); layout errors; I/O errors writing the initial image.
    pub fn create(&self, name: &str, size: usize, config: PjhConfig) -> crate::Result<HeapHandle> {
        let mut live = self.inner.live.lock();
        let open = live.get(name).and_then(Weak::upgrade).is_some();
        if open || self.path(name).exists() {
            return Err(PjhError::HeapExists {
                name: name.to_string(),
            });
        }
        let dev = NvmDevice::new(NvmConfig::with_size(size));
        let heap = Pjh::create(dev, config)?;
        let path = self.path(name);
        heap.device().save_image(&path)?;
        let handle = HeapHandle::managed(
            name.to_string(),
            path,
            heap,
            LoadReport::default(),
            self.pipeline_for(name),
        );
        live.insert(name.to_string(), Arc::downgrade(&handle.inner));
        Ok(handle)
    }

    /// `loadHeap(name)`: returns the live handle if the heap is already
    /// open (`options` are ignored then — they applied when it was first
    /// opened); otherwise maps the image and runs the loading pipeline
    /// (recovery, optional remap, optional zeroing scan, rollback of any
    /// transaction the last commit point captured mid-flight).
    ///
    /// # Errors
    ///
    /// [`PjhError::NoSuchHeap`] if the name is unknown; image and format
    /// errors otherwise.
    pub fn load(&self, name: &str, options: LoadOptions) -> crate::Result<HeapHandle> {
        // Lock discipline (this used to deadlock the whole manager): the
        // registry lock must NOT be held while waiting for the retained
        // pipeline to go idle — a paused pipeline makes that wait
        // unbounded, and with `live` held it would wedge every unrelated
        // `create`/`load` on the manager. So: check, wait with no locks
        // held, then re-take the registry lock and re-validate before
        // mapping.
        loop {
            if let Some(handle) = self.live_handle(name) {
                return Ok(handle);
            }
            let path = self.path(name);
            if !path.exists() {
                return Err(PjhError::NoSuchHeap {
                    name: name.to_string(),
                });
            }
            // The previous session's handles may be gone while their
            // commits are still applying (outstanding tickets, or a drain
            // in progress): wait for the retained pipeline to go idle so
            // the image read below can never observe a half-applied epoch.
            let pipeline = self.pipeline_for(name);
            pipeline.wait_idle();
            let mut live = self.inner.live.lock();
            // Re-validate under the lock: a racing load may have opened
            // the heap while we waited (use its live instance), and a
            // racing open-then-close may have queued fresh applies (wait
            // again) — two racing loads must never map two divergent
            // live heaps over the same image.
            if let Some(inner) = live.get(name).and_then(Weak::upgrade) {
                return Ok(HeapHandle { inner });
            }
            if !pipeline.is_idle() {
                drop(live);
                continue;
            }
            let dev = NvmDevice::load_image(&path, LatencyModel::zero())?;
            let (mut heap, report) = Pjh::load(dev, options)?;
            heap.txn_recover()?;
            let handle = HeapHandle::managed(name.to_string(), path, heap, report, pipeline);
            live.insert(name.to_string(), Arc::downgrade(&handle.inner));
            return Ok(handle);
        }
    }

    /// Loads the heap if it exists, creating it otherwise.
    ///
    /// # Errors
    ///
    /// Creation or loading errors.
    pub fn open_or_create(
        &self,
        name: &str,
        size: usize,
        config: PjhConfig,
    ) -> crate::Result<HeapHandle> {
        if self.exists_heap(name) {
            self.load(name, LoadOptions::default())
        } else {
            self.create(name, size, config)
        }
    }

    /// Deletes a heap image and drops its registry entry; returns whether
    /// the image existed. A live handle keeps operating on its in-memory
    /// device but is **detached** — its later commits become no-op
    /// tickets, and any commit still queued in its flush pipeline is
    /// aborted — rather than clobbering (or resurrecting the file under)
    /// whatever heap takes the name next.
    pub fn delete_heap(&self, name: &str) -> bool {
        // The registry lock is scoped to the lookup: waiting out an
        // in-flight image apply below must not stall unrelated
        // create/load traffic on the manager.
        let doomed = self
            .inner
            .live
            .lock()
            .remove(name)
            .and_then(|w| w.upgrade());
        let retained = self.inner.pipelines.lock().remove(name);
        if let Some(inner) = doomed {
            // Take the path lock first: `commit` holds it across
            // snapshot + submit, so once we hold it no new job can slip
            // into the pipeline behind the abort. An apply that already
            // left the queue cannot be aborted — wait it out, so a stale
            // in-flight sync never writes into (or re-creates the file
            // under) a successor heap.
            let mut path = inner.path.lock();
            if let Some(pipeline) = inner.pipeline.lock().as_ref() {
                pipeline.abort_pending();
                pipeline.wait_idle();
            }
            *path = None;
        } else if let Some(pipeline) = &retained {
            // No live handle, but the last session's applies may still be
            // in flight on the retained pipeline.
            pipeline.abort_pending();
            pipeline.wait_idle();
        }
        std::fs::remove_file(self.path(name)).is_ok()
    }

    /// Names of all heaps persisted in this directory, sorted.
    pub fn heap_names(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.inner.dir)
            .map(|rd| {
                rd.flatten()
                    .filter_map(|e| {
                        let p = e.path();
                        (p.extension().is_some_and(|x| x == "pjh"))
                            .then(|| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                            .flatten()
                    })
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcEscalation, GcKind};
    use espresso_object::FieldDesc;

    #[test]
    fn create_exists_load_roundtrip() {
        let mgr = HeapManager::temp().unwrap();
        assert!(!mgr.exists_heap("jimmy"));
        let jimmy = mgr.create("jimmy", 4 << 20, PjhConfig::small()).unwrap();
        assert!(mgr.exists_heap("jimmy"));

        jimmy
            .with_mut(|h| {
                let k = h.register_instance(
                    "Person",
                    vec![FieldDesc::prim("id"), FieldDesc::reference("next")],
                )?;
                let p = h.alloc_instance(k)?;
                h.set_field(p, 0, 31);
                h.flush_object(p);
                h.set_root("jimmy_info", p)
            })
            .unwrap();
        let report = jimmy.commit_sync().unwrap();
        assert!(report.managed);
        assert!(report.synced_lines > 0);

        // Drop the live handle: the next load maps the committed image.
        drop(jimmy);
        let again = mgr.load("jimmy", LoadOptions::default()).unwrap();
        again.with(|h| {
            let p = h.get_root("jimmy_info").unwrap();
            assert_eq!(h.field(p, 0), 31);
        });
    }

    #[test]
    fn loading_twice_yields_the_same_live_instance() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("app", 4 << 20, PjhConfig::small()).unwrap();
        let b = mgr.load("app", LoadOptions::default()).unwrap();
        // Writes through one handle are visible through the other without
        // any commit: they are the same heap.
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.set_field(t, 0, 7);
            h.set_root("t", t)
        })
        .unwrap();
        b.with(|h| {
            let t = h.get_root("t").unwrap();
            assert_eq!(h.field(t, 0), 7);
        });
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn create_rejects_existing_names() {
        let mgr = HeapManager::temp().unwrap();
        let live = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        assert!(matches!(
            mgr.create("a", 4 << 20, PjhConfig::small()),
            Err(PjhError::HeapExists { .. })
        ));
        // Still taken after the handle closes: the image remains.
        drop(live);
        assert!(matches!(
            mgr.create("a", 4 << 20, PjhConfig::small()),
            Err(PjhError::HeapExists { .. })
        ));
        // Deleting frees the name.
        assert!(mgr.delete_heap("a"));
        mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
    }

    #[test]
    fn load_missing_heap_errors() {
        let mgr = HeapManager::temp().unwrap();
        assert!(matches!(
            mgr.load("ghost", LoadOptions::default()),
            Err(PjhError::NoSuchHeap { .. })
        ));
    }

    #[test]
    fn uncommitted_changes_do_not_reach_the_image() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.set_root("t", t)
        })
        .unwrap();
        // No commit: a reload sees the freshly created image.
        drop(a);
        let a2 = mgr.load("a", LoadOptions::default()).unwrap();
        a2.with(|h| {
            assert_eq!(h.get_root("t"), None);
            assert_eq!(h.census().objects, 0);
        });
    }

    #[test]
    fn commit_is_incremental() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.set_field(t, 0, 1);
            h.flush_object(t);
            h.set_root("t", t)
        })
        .unwrap();
        let first = a.commit_sync().unwrap();
        assert!(first.synced_lines > 0);
        // Nothing persisted since: the second commit writes nothing.
        let second = a.commit_sync().unwrap();
        assert_eq!(second.synced_lines, 0);
        // One more persisted field: the next commit is proportional to the
        // delta, not the heap size.
        a.with_mut(|h| {
            let t = h.get_root("t").unwrap();
            h.set_field(t, 0, 2);
            h.flush_field(t, 0);
        });
        let third = a.commit_sync().unwrap();
        assert!(third.synced_lines >= 1 && third.synced_lines < first.synced_lines);
    }

    #[test]
    fn commit_mid_txn_is_rolled_back_on_reload() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        let t = a
            .txn(|t| {
                let k = t.register_instance("T", vec![FieldDesc::prim("x")])?;
                let obj = t.alloc_instance(k)?;
                t.set_field(obj, 0, 5);
                Ok(obj)
            })
            .unwrap();
        a.with_mut(|h| h.set_root("t", t)).unwrap();
        // Open a transaction, apply a store, and take a commit point
        // before it finishes — the image captures a torn transaction.
        a.with_mut(|h| {
            h.txn_begin().unwrap();
            h.txn_set_field(t, 0, 99);
        });
        a.commit_sync().unwrap();
        drop(a);
        let a2 = mgr.load("a", LoadOptions::default()).unwrap();
        a2.with(|h| {
            let t = h.get_root("t").unwrap();
            assert_eq!(h.field(t, 0), 5, "torn transaction rolled back");
        });
    }

    #[test]
    fn delete_detaches_live_handles_from_the_image() {
        let mgr = HeapManager::temp().unwrap();
        let stale = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        stale
            .with_mut(|h| {
                let k = h.register_instance("Old", vec![FieldDesc::prim("x")])?;
                let t = h.alloc_instance(k)?;
                h.flush_object(t);
                h.set_root("old", t)
            })
            .unwrap();
        assert!(mgr.delete_heap("a"));
        assert!(!stale.is_managed(), "deleted ⇒ detached");
        // A successor takes the name; the stale handle's commit must not
        // splice its lines into the successor's image.
        let fresh = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        fresh
            .with_mut(|h| {
                let k = h.register_instance("New", vec![FieldDesc::prim("y")])?;
                let t = h.alloc_instance(k)?;
                h.set_field(t, 0, 5);
                h.flush_object(t);
                h.set_root("new", t)
            })
            .unwrap();
        let stale_commit = stale.commit_sync().unwrap();
        assert!(!stale_commit.managed, "stale commit is a no-op");
        fresh.commit_sync().unwrap();
        drop(fresh);
        let reloaded = mgr.load("a", LoadOptions::default()).unwrap();
        reloaded.with(|h| {
            assert_eq!(h.get_root("old"), None, "no bleed-through");
            let t = h.get_root("new").unwrap();
            assert_eq!(h.field(t, 0), 5);
        });
    }

    #[test]
    fn temp_manager_removes_its_directory_on_drop() {
        let mgr = HeapManager::temp().unwrap();
        let dir = mgr.dir().to_path_buf();
        mgr.create("x", 4 << 20, PjhConfig::small()).unwrap();
        assert!(dir.exists());
        let clone = mgr.clone();
        drop(mgr);
        assert!(dir.exists(), "clone keeps the directory alive");
        drop(clone);
        assert!(!dir.exists(), "last clone removes the directory");
    }

    #[test]
    fn delete_and_list() {
        let mgr = HeapManager::temp().unwrap();
        mgr.create("x", 4 << 20, PjhConfig::small()).unwrap();
        mgr.create("y", 4 << 20, PjhConfig::small()).unwrap();
        assert_eq!(mgr.heap_names(), vec!["x", "y"]);
        assert!(mgr.delete_heap("x"));
        assert!(!mgr.delete_heap("x"));
        assert_eq!(mgr.heap_names(), vec!["y"]);
    }

    #[test]
    fn commit_pipeline_overlaps_the_next_epoch() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        let (k, t) = a
            .with_mut(|h| {
                let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
                let t = h.alloc_instance(k)?;
                h.set_field(t, 0, 1);
                h.flush_object(t);
                h.set_root("t", t)?;
                Ok::<_, PjhError>((k, t))
            })
            .unwrap();
        // Hold the apply in the pipeline: epoch 1 is sealed, not durable.
        a.set_flush_paused(true);
        let ticket = a.commit().unwrap();
        assert_eq!(ticket.epoch(), 1);
        assert!(!ticket.is_durable());
        assert_eq!(a.sealed_epoch(), 1);
        assert_eq!(a.durable_epoch(), 0);
        // Epoch 2 mutations proceed while epoch 1 is in flight — including
        // re-dirtying the very line epoch 1 sealed.
        a.with_mut(|h| {
            h.set_field(t, 0, 2);
            h.flush_field(t, 0);
            let t2 = h.alloc_instance(k)?;
            h.flush_object(t2);
            Ok::<_, PjhError>(())
        })
        .unwrap();
        a.set_flush_paused(false);
        let report = ticket.wait().unwrap();
        assert!(report.managed && report.synced_lines > 0);
        assert_eq!(a.durable_epoch(), 1);
        // The sealed epoch pinned its bytes: the image holds x == 1.
        drop(a);
        let a2 = mgr.load("a", LoadOptions::default()).unwrap();
        a2.with(|h| {
            let t = h.get_root("t").unwrap();
            assert_eq!(h.field(t, 0), 1, "epoch 2's store stayed out");
        });
    }

    #[test]
    fn reopen_after_async_commit_waits_for_the_apply() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.set_field(t, 0, 7);
            h.flush_object(t);
            h.set_root("t", t)
        })
        .unwrap();
        // Async commit; the ticket (which keeps the pipeline alive) and
        // the handle are dropped with the apply possibly still queued.
        drop(a.commit().unwrap());
        drop(a);
        // The manager retains the pipeline: load waits for it to go idle
        // before mapping the image, so the committed epoch is always
        // visible — never a torn, half-applied file.
        let a2 = mgr.load("a", LoadOptions::default()).unwrap();
        a2.with(|h| {
            let t = h.get_root("t").expect("async commit landed before load");
            assert_eq!(h.field(t, 0), 7);
        });
    }

    #[test]
    fn delete_after_close_cannot_be_resurrected_by_a_late_apply() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("Old", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.flush_object(t);
            h.set_root("old", t)
        })
        .unwrap();
        drop(a.commit().unwrap()); // async, maybe still queued
        drop(a); // close the session with the apply in flight
        assert!(mgr.delete_heap("a"), "image existed");
        // The retained pipeline was waited out before the file removal,
        // so no stale apply re-creates or rewrites it.
        assert!(!mgr.exists_heap("a"));
        let fresh = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        fresh.commit_sync().unwrap();
        drop(fresh);
        let reloaded = mgr.load("a", LoadOptions::default()).unwrap();
        reloaded.with(|h| assert_eq!(h.get_root("old"), None, "no bleed-through"));
    }

    #[test]
    fn ticket_state_distinguishes_in_flight_failed_and_durable() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.set_field(t, 0, 1);
            h.flush_object(t);
            h.set_root("t", t)
        })
        .unwrap();
        a.set_flush_paused(true);
        let ticket = a.commit().unwrap();
        // Queued behind a paused pipeline: in flight, and saying so does
        // not consume the ticket.
        assert_eq!(ticket.state(), CommitState::InFlight);
        assert!(!ticket.is_durable());
        assert_eq!(ticket.state(), CommitState::InFlight);
        // Abort: the ticket turns observably Failed — before this, the
        // only way to see the failure was consuming `wait()`.
        assert_eq!(a.abort_pending_commits(), 1);
        match ticket.state() {
            CommitState::Failed(reason) => assert!(!reason.is_empty(), "reason is surfaced"),
            other => panic!("aborted epoch reads {other:?}, expected Failed"),
        }
        assert!(!ticket.is_durable());
        // A healing commit re-captures the restored lines; once it lands,
        // the old epoch's content is durably in the image and the ticket
        // reads Durable — exactly the pipeline's failure-cascade rule.
        a.set_flush_paused(false);
        let healed = a.commit().unwrap();
        healed.wait().unwrap();
        assert_eq!(ticket.state(), CommitState::Durable);
        assert!(ticket.is_durable());
    }

    #[test]
    fn load_blocked_on_a_paused_pipeline_does_not_wedge_the_manager() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.set_field(t, 0, 7);
            h.flush_object(t);
            h.set_root("t", t)
        })
        .unwrap();
        // Seal an epoch into a paused pipeline, then close the session:
        // the retained pipeline holds a queued apply that cannot land.
        a.set_flush_paused(true);
        drop(a.commit().unwrap());
        drop(a);
        // The loader must park waiting for that apply WITHOUT holding the
        // registry lock.
        let loader = {
            let mgr = mgr.clone();
            std::thread::spawn(move || mgr.load("a", LoadOptions::default()))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Regression: load() used to hold the registry lock across the
        // unbounded pipeline wait, so this unrelated create deadlocked
        // the whole manager.
        let (tx, rx) = std::sync::mpsc::channel();
        {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                let ok = mgr.create("b", 4 << 20, PjhConfig::small()).is_ok();
                let _ = tx.send(ok);
            });
        }
        assert!(rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("create of an unrelated heap proceeds while a load waits"),);
        // Resume the retained pipeline; the parked loader completes and
        // observes the commit it waited for.
        mgr.inner
            .pipelines
            .lock()
            .get("a")
            .unwrap()
            .set_paused(false);
        let a2 = loader.join().unwrap().unwrap();
        a2.with(|h| {
            let t = h.get_root("t").unwrap();
            assert_eq!(h.field(t, 0), 7);
        });
    }

    #[test]
    fn reloaded_heap_reports_why_gc_escalated_to_full() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        a.with_mut(|h| {
            let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
            let t = h.alloc_instance(k)?;
            h.flush_object(t);
            h.set_root("t", t)
        })
        .unwrap();
        // A fresh heap has no incremental state: auto escalates and says
        // why. The next cycle runs incrementally with no escalation.
        let first = a.with_mut(|h| h.gc(&[])).unwrap();
        assert_eq!(first.kind, GcKind::Full);
        assert_eq!(first.escalation, Some(GcEscalation::IncrementalNotReady));
        let second = a.with_mut(|h| h.gc(&[])).unwrap();
        assert_eq!(second.kind, GcKind::Incremental);
        assert_eq!(second.escalation, None);
        a.commit_sync().unwrap();
        drop(a);
        // A reload drops the DRAM incremental state. This fallback used
        // to be silent — a `gc()` caller budgeting for an incremental
        // pause got a full compaction with no way to tell; now the report
        // carries the reason.
        let a2 = mgr.load("a", LoadOptions::default()).unwrap();
        let report = a2.with_mut(|h| h.gc(&[])).unwrap();
        assert_eq!(report.kind, GcKind::Full);
        assert_eq!(report.escalation, Some(GcEscalation::IncrementalNotReady));
        // An explicitly requested full collection is not an escalation.
        let forced = a2.with_mut(|h| h.gc_full(&[])).unwrap();
        assert_eq!(forced.escalation, None);
    }

    #[test]
    fn read_sessions_open_while_a_writer_holds_the_heap_lock() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        let t = a
            .with_mut(|h| {
                let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
                let t = h.alloc_instance(k)?;
                h.set_field(t, 0, 9);
                h.flush_object(t);
                h.set_root("t", t)?;
                Ok::<_, PjhError>(t)
            })
            .unwrap();
        // Hold the exclusive writer lock for the whole scope.
        let writer = a.write();
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = {
            let a = a.clone();
            std::thread::spawn(move || {
                let session = a.read(); // must not touch the writer lock
                let _ = tx.send(session.field(t, 0));
            })
        };
        // Regression: when read() shared the RwLock, this recv timed out
        // until the writer dropped.
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5))
                .expect("read session opens concurrently with a held write lock"),
            9
        );
        reader.join().unwrap();
        drop(writer);
    }

    #[test]
    fn pinned_reader_defers_region_reclamation_across_full_gc() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 1 << 20, PjhConfig::small()).unwrap();
        let (k, live, garbage) = a
            .with_mut(|h| {
                let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
                let mut garbage = Vec::new();
                for i in 0..64u64 {
                    let g = h.alloc_instance(k)?;
                    h.set_field(g, 0, 1000 + i);
                    h.flush_object(g);
                    garbage.push(g);
                }
                let live = h.alloc_instance(k)?;
                h.set_field(live, 0, 7);
                h.flush_object(live);
                h.set_root("live", live)?;
                Ok::<_, PjhError>((k, live, garbage))
            })
            .unwrap();
        let session = a.read();
        // A full compaction runs concurrently with the pinned session;
        // the regions it frees are deferred, not reclaimed.
        let report = a.with_mut(|h| h.gc_full(&[])).unwrap();
        assert_eq!(report.kind, GcKind::Full);
        // Every ref the session captured before the collection — live
        // (now relocated; its source copy is the one we read) and garbage
        // alike — still reads its original bytes.
        assert_eq!(session.field(live, 0), 7);
        for (i, g) in garbage.iter().enumerate() {
            assert_eq!(
                session.field(*g, 0),
                1000 + i as u64,
                "evacuated source region stays intact while pinned"
            );
        }
        // Deferred regions are unavailable to the allocator: exhaust the
        // reusable space and hit HeapFull even though `free` has slack.
        let exhausted = a.with_mut(|h| loop {
            match h.alloc_instance(k) {
                Ok(_) => {}
                Err(PjhError::HeapFull { .. }) => break true,
                Err(e) => panic!("unexpected allocation error: {e}"),
            }
        });
        assert!(exhausted);
        // Dropping the session drains the pin; the deferred regions
        // become reusable and the very same allocation succeeds.
        drop(session);
        a.with_mut(|h| h.alloc_instance(k))
            .expect("deferred regions reclaimed once the last pin drops");
    }

    #[test]
    fn aborted_pending_commit_recovers_to_last_durable_epoch() {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("a", 4 << 20, PjhConfig::small()).unwrap();
        let t = a
            .with_mut(|h| {
                let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
                let t = h.alloc_instance(k)?;
                h.set_field(t, 0, 10);
                h.flush_object(t);
                h.set_root("t", t)?;
                Ok::<_, PjhError>(t)
            })
            .unwrap();
        a.commit_sync().unwrap(); // epoch 1 durable
        a.with_mut(|h| {
            h.set_field(t, 0, 20);
            h.flush_field(t, 0);
        });
        a.set_flush_paused(true);
        let ticket = a.commit().unwrap(); // epoch 2 sealed, never applied
        assert_eq!(a.abort_pending_commits(), 1);
        assert!(ticket.wait().is_err(), "aborted epoch reports failure");
        // A retry commit re-captures the restored lines and heals.
        a.set_flush_paused(false);
        let healed = a.commit_sync().unwrap();
        assert!(healed.synced_lines > 0, "restored lines were re-captured");
        drop(a);
        let a2 = mgr.load("a", LoadOptions::default()).unwrap();
        a2.with(|h| {
            let t = h.get_root("t").unwrap();
            assert_eq!(h.field(t, 0), 20);
        });
    }
}
