//! The persistent name table (§3.1): string constants → Klass entries and
//! root entries.
//!
//! Fixed-capacity array of 128-byte entries. Insertion is crash-consistent:
//! the payload (value, length, name bytes) is written and persisted before
//! the `state` word that makes the entry visible, so a torn insert leaves
//! an entry that the load-time scan treats as empty.

use std::collections::HashMap;

use espresso_nvm::NvmDevice;

use crate::layout::{Layout, MAX_NAME_LEN, NAME_ENTRY_SIZE};
use crate::PjhError;

/// The entry kinds the table distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// Maps a class name to its record offset in the Klass segment.
    Klass,
    /// Maps a user-chosen name to a root object address (§3.3).
    Root,
    /// Maps a class name to its declared-schema fingerprint (the typed
    /// layer's schema-evolution guard; see `Pjh::register_schema`).
    Schema,
}

impl EntryKind {
    fn tag(self) -> u64 {
        match self {
            EntryKind::Klass => 1,
            EntryKind::Root => 2,
            EntryKind::Schema => 3,
        }
    }

    fn from_tag(tag: u64) -> Option<EntryKind> {
        match tag {
            1 => Some(EntryKind::Klass),
            2 => Some(EntryKind::Root),
            3 => Some(EntryKind::Schema),
            _ => None,
        }
    }
}

/// DRAM-side view of the on-NVM name table.
#[derive(Debug, Clone)]
pub struct NameTable {
    off: usize,
    cap: usize,
    /// (kind, name) → slot index.
    index: HashMap<(EntryKind, String), usize>,
    used: usize,
}

impl NameTable {
    /// Scans the device and rebuilds the in-memory index.
    pub fn attach(dev: &NvmDevice, layout: &Layout) -> NameTable {
        let off = layout.name_table_off;
        let cap = layout.name_table_cap;
        let mut index = HashMap::new();
        let mut used = 0;
        for slot in 0..cap {
            let e = off + slot * NAME_ENTRY_SIZE;
            let Some(kind) = EntryKind::from_tag(dev.read_u64(e)) else {
                continue;
            };
            let len = dev.read_u64(e + 16) as usize;
            if len > MAX_NAME_LEN {
                continue; // torn entry: ignore
            }
            let mut buf = vec![0u8; len];
            dev.read_bytes(e + 24, &mut buf);
            let Ok(name) = String::from_utf8(buf) else {
                continue;
            };
            index.insert((kind, name), slot);
            used += 1;
        }
        NameTable {
            off,
            cap,
            index,
            used,
        }
    }

    fn entry_off(&self, slot: usize) -> usize {
        self.off + slot * NAME_ENTRY_SIZE
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.used
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Looks up the value for `(kind, name)`.
    pub fn get(&self, dev: &NvmDevice, kind: EntryKind, name: &str) -> Option<u64> {
        let slot = *self.index.get(&(kind, name.to_string()))?;
        Some(dev.read_u64(self.entry_off(slot) + 8))
    }

    /// Inserts or updates `(kind, name) -> value`, crash-consistently.
    ///
    /// # Errors
    ///
    /// [`PjhError::NameTooLong`] or [`PjhError::NameTableFull`].
    pub fn set(
        &mut self,
        dev: &NvmDevice,
        kind: EntryKind,
        name: &str,
        value: u64,
    ) -> Result<(), PjhError> {
        if name.len() > MAX_NAME_LEN {
            return Err(PjhError::NameTooLong {
                name: name.to_string(),
            });
        }
        if let Some(&slot) = self.index.get(&(kind, name.to_string())) {
            // 8-byte in-place update: atomic at word granularity.
            let e = self.entry_off(slot);
            dev.write_u64(e + 8, value);
            dev.persist(e + 8, 8);
            return Ok(());
        }
        // Find a free slot.
        let mut free = None;
        for slot in 0..self.cap {
            if EntryKind::from_tag(dev.read_u64(self.entry_off(slot))).is_none() {
                free = Some(slot);
                break;
            }
        }
        let slot = free.ok_or(PjhError::NameTableFull)?;
        let e = self.entry_off(slot);
        // Payload first...
        dev.write_u64(e + 8, value);
        dev.write_u64(e + 16, name.len() as u64);
        dev.write_bytes(e + 24, name.as_bytes());
        dev.persist(e, NAME_ENTRY_SIZE);
        // ...state word last.
        dev.write_u64(e, kind.tag());
        dev.persist(e, 8);
        self.index.insert((kind, name.to_string()), slot);
        self.used += 1;
        Ok(())
    }

    /// Removes an entry if present; returns whether it existed.
    pub fn remove(&mut self, dev: &NvmDevice, kind: EntryKind, name: &str) -> bool {
        let Some(slot) = self.index.remove(&(kind, name.to_string())) else {
            return false;
        };
        let e = self.entry_off(slot);
        dev.write_u64(e, 0);
        dev.persist(e, 8);
        self.used -= 1;
        true
    }

    /// All entries of `kind` as `(name, value)` pairs.
    pub fn entries(&self, dev: &NvmDevice, kind: EntryKind) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .index
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|((_, name), &slot)| (name.clone(), dev.read_u64(self.entry_off(slot) + 8)))
            .collect();
        out.sort();
        out
    }

    /// Rewrites the value of every `kind` entry through `f`, persisting
    /// each change. Used by the collector to forward root addresses.
    pub fn rewrite_values(
        &mut self,
        dev: &NvmDevice,
        kind: EntryKind,
        mut f: impl FnMut(u64) -> u64,
    ) {
        for ((k, _), &slot) in self.index.iter() {
            if *k != kind {
                continue;
            }
            let e = self.entry_off(slot) + 8;
            let old = dev.read_u64(e);
            let new = f(old);
            if new != old {
                dev.write_u64(e, new);
                dev.persist(e, 8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PjhConfig;
    use espresso_nvm::NvmConfig;

    fn setup() -> (NvmDevice, Layout) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let layout = Layout::compute(dev.size(), &PjhConfig::default()).unwrap();
        (dev, layout)
    }

    #[test]
    fn set_get_roundtrip() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        t.set(&dev, EntryKind::Root, "jimmy", 0xBEEF).unwrap();
        t.set(&dev, EntryKind::Klass, "jimmy", 0xF00D).unwrap();
        assert_eq!(t.get(&dev, EntryKind::Root, "jimmy"), Some(0xBEEF));
        assert_eq!(t.get(&dev, EntryKind::Klass, "jimmy"), Some(0xF00D));
        assert_eq!(t.get(&dev, EntryKind::Root, "nope"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn update_in_place() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        t.set(&dev, EntryKind::Root, "r", 1).unwrap();
        t.set(&dev, EntryKind::Root, "r", 2).unwrap();
        assert_eq!(t.get(&dev, EntryKind::Root, "r"), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn persisted_entries_survive_crash_and_reattach() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        t.set(&dev, EntryKind::Root, "kept", 42).unwrap();
        dev.crash();
        let t2 = NameTable::attach(&dev, &layout);
        assert_eq!(t2.get(&dev, EntryKind::Root, "kept"), Some(42));
    }

    #[test]
    fn torn_insert_is_invisible_after_crash() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        t.set(&dev, EntryKind::Root, "a", 1).unwrap();
        // Allow the payload persist (2+ lines) but drop the state persist.
        // The payload of a 128-byte entry takes 2 line flushes; the state
        // flush is the 3rd for the new entry.
        let before = dev.stats().line_flushes;
        t.set(&dev, EntryKind::Root, "b", 2).unwrap();
        let per_insert = dev.stats().line_flushes - before;
        assert!(per_insert >= 2);
        dev.schedule_crash_after_line_flushes(per_insert - 1);
        t.set(&dev, EntryKind::Root, "c", 3).unwrap();
        dev.recover();
        let t2 = NameTable::attach(&dev, &layout);
        assert_eq!(t2.get(&dev, EntryKind::Root, "a"), Some(1));
        assert_eq!(t2.get(&dev, EntryKind::Root, "b"), Some(2));
        assert_eq!(
            t2.get(&dev, EntryKind::Root, "c"),
            None,
            "torn insert must be invisible"
        );
    }

    #[test]
    fn remove_frees_slot() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        t.set(&dev, EntryKind::Root, "r", 1).unwrap();
        assert!(t.remove(&dev, EntryKind::Root, "r"));
        assert!(!t.remove(&dev, EntryKind::Root, "r"));
        assert_eq!(t.get(&dev, EntryKind::Root, "r"), None);
        dev.crash();
        let t2 = NameTable::attach(&dev, &layout);
        assert_eq!(t2.get(&dev, EntryKind::Root, "r"), None);
    }

    #[test]
    fn rejects_long_names() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert!(matches!(
            t.set(&dev, EntryKind::Root, &long, 1),
            Err(PjhError::NameTooLong { .. })
        ));
    }

    #[test]
    fn fills_to_capacity_then_errors() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        for i in 0..layout.name_table_cap {
            t.set(&dev, EntryKind::Root, &format!("r{i}"), i as u64)
                .unwrap();
        }
        assert!(matches!(
            t.set(&dev, EntryKind::Root, "overflow", 0),
            Err(PjhError::NameTableFull)
        ));
        // Removing one slot makes room again.
        t.remove(&dev, EntryKind::Root, "r0");
        t.set(&dev, EntryKind::Root, "overflow", 9).unwrap();
    }

    #[test]
    fn rewrite_values_persists() {
        let (dev, layout) = setup();
        let mut t = NameTable::attach(&dev, &layout);
        t.set(&dev, EntryKind::Root, "a", 10).unwrap();
        t.set(&dev, EntryKind::Klass, "k", 99).unwrap();
        t.rewrite_values(&dev, EntryKind::Root, |v| v + 1);
        dev.crash();
        let t2 = NameTable::attach(&dev, &layout);
        assert_eq!(t2.get(&dev, EntryKind::Root, "a"), Some(11));
        assert_eq!(t2.get(&dev, EntryKind::Klass, "k"), Some(99));
    }
}
