//! A sharded multi-heap façade: one logical persistent heap spread over
//! N PJH instances, routed by key hash.
//!
//! A single PJH instance serializes every mutation behind one lock and
//! compacts as one unit; the multi-heap workloads in the roadmap (many
//! tenants, serving-scale object churn) want independent persistence
//! domains that can allocate, collect, and commit in isolation.
//! [`ShardedHeap`] opens `N` named heaps (`{base}.shard{i}`) through one
//! [`HeapManager`] and routes `register_instance` / `alloc_instance` /
//! root traffic across them by FNV-1a key hash. References never cross
//! shards — a [`ShardRef`] carries its shard index, and cross-shard
//! stores are rejected, so each shard remains an independently
//! crash-consistent, independently collectable heap.
//!
//! # Example
//!
//! ```
//! use espresso_core::{HeapManager, PjhConfig, ShardedHeap};
//! use espresso_object::FieldDesc;
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let heap = ShardedHeap::create(&mgr, "tenants", 4, 4 << 20, PjhConfig::small())?;
//! let k = heap.register_instance("Account", vec![FieldDesc::prim("balance")])?;
//! let acct = heap.alloc_instance("alice", &k)?;
//! heap.set_field(acct, 0, 100);
//! heap.flush_object(acct);
//! heap.set_root("alice", acct)?;
//! heap.commit_sync()?; // commits every shard in parallel, waits for all
//! assert_eq!(heap.get_root("alice"), Some(acct));
//! # Ok(())
//! # }
//! ```

use espresso_object::{FieldDesc, KlassId, PClass, PObject, PRef, Ref};

use crate::heap::{HeapCensus, LoadOptions};
use crate::manager::{
    CommitReport, CommitState, CommitTicket, HeapHandle, HeapManager, ReadSession,
};
use crate::txn::HeapTxn;
use crate::{PjhConfig, PjhError};

/// One sealed commit epoch per shard, returned by [`ShardedHeap::commit`].
///
/// Each shard's image sync runs on that shard's own flush pipeline, so the
/// applies proceed in parallel; [`wait`](Self::wait) is the all-shards
/// durability barrier.
#[derive(Debug)]
pub struct ShardedCommitTicket {
    tickets: Vec<CommitTicket>,
}

impl ShardedCommitTicket {
    /// Per-shard tickets, in shard order.
    pub fn tickets(&self) -> &[CommitTicket] {
        &self.tickets
    }

    /// Where the fan-out stands right now, without consuming the barrier
    /// or blocking — the sharded counterpart of [`CommitTicket::state`]
    /// (which PR 6 added only to the single-heap ticket; a serving
    /// layer's commit leader polls *this* to fan replies out as shards
    /// turn durable). Aggregation rules:
    ///
    /// * [`CommitState::Durable`] once **every** shard's epoch is durable
    ///   — the same condition under which [`wait`](Self::wait) returns
    ///   `Ok`.
    /// * [`CommitState::Failed`] as soon as **any** shard's epoch sits in
    ///   its pipeline's failure cascade uncovered (first failing shard's
    ///   reason, tagged with its index). Like the single-heap state, this
    ///   heals back to in-flight/durable once a later apply covers the
    ///   restored lines.
    /// * [`CommitState::InFlight`] otherwise.
    pub fn state(&self) -> CommitState {
        let mut all_durable = true;
        for (shard, ticket) in self.tickets.iter().enumerate() {
            match ticket.state() {
                CommitState::Durable => {}
                CommitState::InFlight => all_durable = false,
                CommitState::Failed(reason) => {
                    return CommitState::Failed(format!("shard {shard}: {reason}"));
                }
            }
        }
        if all_durable {
            CommitState::Durable
        } else {
            CommitState::InFlight
        }
    }

    /// Whether every shard's epoch has reached its image file — shorthand
    /// for `self.state() == CommitState::Durable`.
    pub fn is_durable(&self) -> bool {
        matches!(self.state(), CommitState::Durable)
    }

    /// Blocks until every shard's sealed epoch is durable, returning the
    /// aggregate report.
    ///
    /// # Errors
    ///
    /// The first shard's apply error (every ticket is still waited, so no
    /// pipeline is left mid-flight).
    pub fn wait(self) -> crate::Result<CommitReport> {
        let mut total = CommitReport::default();
        let mut first_err = None;
        for ticket in self.tickets {
            match ticket.wait() {
                Ok(r) => {
                    total.synced_lines += r.synced_lines;
                    total.synced_bytes += r.synced_bytes;
                    total.full_rewrite |= r.full_rewrite;
                    total.managed |= r.managed;
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(total),
            Some(e) => Err(e),
        }
    }
}

/// A reference into one shard of a [`ShardedHeap`].
///
/// The plain [`Ref`] is only meaningful inside its shard's address space,
/// so the façade pairs it with the shard index and refuses to mix them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardRef {
    /// Which shard the reference lives in.
    pub shard: usize,
    /// The in-shard reference.
    pub r: Ref,
}

/// A class registered on every shard (klass ids may differ per shard, so
/// the façade keeps one id per instance).
#[derive(Debug, Clone)]
pub struct ShardedKlass {
    ids: Vec<KlassId>,
}

impl ShardedKlass {
    /// The klass id within `shard`.
    pub fn id(&self, shard: usize) -> KlassId {
        self.ids[shard]
    }
}

/// FNV-1a hash of a routing key (stable across processes and restarts, so
/// a key always finds the shard that allocated it).
pub fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// N PJH instances behind one key-routed façade: see the module-level
/// overview above for routing and isolation rules.
#[derive(Debug, Clone)]
pub struct ShardedHeap {
    base: String,
    shards: Vec<HeapHandle>,
}

fn shard_name(base: &str, i: usize) -> String {
    format!("{base}.shard{i}")
}

impl ShardedHeap {
    /// Creates `shards` fresh heaps of `shard_size` bytes each under
    /// `base` and opens the façade over them.
    ///
    /// # Errors
    ///
    /// [`PjhError::HeapExists`] if any shard name is taken; creation
    /// errors otherwise.
    pub fn create(
        mgr: &HeapManager,
        base: &str,
        shards: usize,
        shard_size: usize,
        config: PjhConfig,
    ) -> crate::Result<ShardedHeap> {
        assert!(shards > 0, "a sharded heap needs at least one shard");
        let shards = (0..shards)
            .map(|i| mgr.create(&shard_name(base, i), shard_size, config.clone()))
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(ShardedHeap {
            base: base.to_string(),
            shards,
        })
    }

    /// Opens an existing sharded heap, discovering the shard count from
    /// the manager (shards are numbered densely from 0). Shards already
    /// open in the manager's live registry are shared, like any load.
    ///
    /// # Errors
    ///
    /// [`PjhError::NoSuchHeap`] if `base` has no shard 0; loading errors
    /// otherwise.
    pub fn open(mgr: &HeapManager, base: &str, options: LoadOptions) -> crate::Result<ShardedHeap> {
        let mut shards = Vec::new();
        while mgr.exists_heap(&shard_name(base, shards.len())) {
            shards.push(mgr.load(&shard_name(base, shards.len()), options.clone())?);
        }
        if shards.is_empty() {
            return Err(PjhError::NoSuchHeap {
                name: shard_name(base, 0),
            });
        }
        Ok(ShardedHeap {
            base: base.to_string(),
            shards,
        })
    }

    /// Whether `base` names an existing sharded heap under `mgr`.
    pub fn exists(mgr: &HeapManager, base: &str) -> bool {
        mgr.exists_heap(&shard_name(base, 0))
    }

    /// The base name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a routing key maps to.
    pub fn shard_of(&self, key: &str) -> usize {
        (hash_key(key) % self.shards.len() as u64) as usize
    }

    /// The handle of shard `i`.
    pub fn handle(&self, i: usize) -> &HeapHandle {
        &self.shards[i]
    }

    /// The handle the routing key maps to.
    pub fn handle_for(&self, key: &str) -> &HeapHandle {
        &self.shards[self.shard_of(key)]
    }

    // ---- routed class registration and allocation ----

    /// Registers an instance class on every shard.
    ///
    /// # Errors
    ///
    /// [`PjhError::KlassLayoutMismatch`] if any shard persisted a
    /// different layout for this name.
    pub fn register_instance(
        &self,
        name: &str,
        fields: Vec<FieldDesc>,
    ) -> crate::Result<ShardedKlass> {
        let ids = self
            .shards
            .iter()
            .map(|s| s.with_mut(|h| h.register_instance(name, fields.clone())))
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(ShardedKlass { ids })
    }

    // ---- typed surface: schemas, roots, and sessions routed by key ----
    //
    // The façade's typed counterparts of `register_instance`/`set_root`/
    // `get_root`. Typed *transactions* need no new surface: `txn(key, f)`
    // already hands the closure a `HeapTxn`, whose typed allocation and
    // store methods all work per-shard. Field handles resolved from the
    // returned `PClass<T>` are positional (schema order), so one handle
    // set is valid on every shard even though klass ids differ.

    /// Registers (and validates) `T`'s schema on **every** shard, so a
    /// typed workload can touch any key without dropping to the raw word
    /// API. Returns the typed class handle; its field accessors are valid
    /// on all shards.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] / [`PjhError::KlassLayoutMismatch`] if
    /// any shard persisted a different layout or fingerprint for
    /// `T::CLASS_NAME`.
    pub fn register<T: PObject + 'static>(&self) -> crate::Result<PClass<T>> {
        let mut first = None;
        for s in &self.shards {
            let class = s.with_mut(|h| h.register::<T>())?;
            first.get_or_insert(class);
        }
        Ok(first.expect("at least one shard"))
    }

    /// Fetches a typed root from the shard `key` routes to.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] when the root holds a different class.
    pub fn root<T: PObject>(&self, key: &str) -> crate::Result<Option<PRef<T>>> {
        self.handle_for(key).with(|h| h.root::<T>(key))
    }

    /// Publishes a typed reference under `key` in the shard `key` routes
    /// to. The object must live in that same shard — allocate it inside
    /// `txn(key, ...)` (or through [`handle_for`](Self::handle_for)) so
    /// routing and placement agree, exactly as the raw
    /// [`set_root`](Self::set_root) requires of its [`ShardRef`].
    ///
    /// # Errors
    ///
    /// Name-table errors from the target shard.
    pub fn set_root_typed<T: PObject>(&self, key: &str, r: PRef<T>) -> crate::Result<()> {
        self.handle_for(key).with_mut(|h| h.set_root_typed(key, r))
    }

    /// Opens a lock-free read session on the shard `key` routes to (see
    /// `HeapHandle::read`): typed reads, index lookups, and range scans
    /// ride it without blocking that shard's writers.
    pub fn read_for(&self, key: &str) -> ReadSession {
        self.handle_for(key).read()
    }

    /// Allocates an instance in the shard `key` routes to.
    ///
    /// # Errors
    ///
    /// Allocation errors from the target shard.
    pub fn alloc_instance(&self, key: &str, klass: &ShardedKlass) -> crate::Result<ShardRef> {
        let shard = self.shard_of(key);
        let r = self.shards[shard].with_mut(|h| h.alloc_instance(klass.ids[shard]))?;
        Ok(ShardRef { shard, r })
    }

    // ---- field access through the owning shard ----

    /// Reads raw field `index`.
    pub fn field(&self, r: ShardRef, index: usize) -> u64 {
        self.shards[r.shard].with(|h| h.field(r.r, index))
    }

    /// Writes raw field `index` (volatile until flushed).
    pub fn set_field(&self, r: ShardRef, index: usize, value: u64) {
        self.shards[r.shard].with_mut(|h| h.set_field(r.r, index, value));
    }

    /// Reads reference field `index` (stays inside `r`'s shard).
    pub fn field_ref(&self, r: ShardRef, index: usize) -> ShardRef {
        ShardRef {
            shard: r.shard,
            r: self.shards[r.shard].with(|h| h.field_ref(r.r, index)),
        }
    }

    /// Writes reference field `index`.
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] when `value` lives in a different
    /// shard — cross-shard pointers would dangle, every shard being its
    /// own address space and persistence domain.
    pub fn set_field_ref(&self, r: ShardRef, index: usize, value: ShardRef) -> crate::Result<()> {
        if value.shard != r.shard {
            return Err(PjhError::SafetyViolation {
                reason: format!(
                    "cross-shard reference (object in shard {}, value in shard {})",
                    r.shard, value.shard
                ),
            });
        }
        self.shards[r.shard].with_mut(|h| h.set_field_ref(r.r, index, value.r))
    }

    /// Persists every data word of the object (`Object.flush`).
    pub fn flush_object(&self, r: ShardRef) {
        self.shards[r.shard].with(|h| h.flush_object(r.r));
    }

    // ---- routed roots ----

    /// Publishes `r` under `key` in the shard `key` routes to.
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] if `r` lives in a different shard
    /// than `key` routes to (allocate with the same key to colocate);
    /// name-table errors otherwise.
    pub fn set_root(&self, key: &str, r: ShardRef) -> crate::Result<()> {
        let shard = self.shard_of(key);
        if r.shard != shard {
            return Err(PjhError::SafetyViolation {
                reason: format!(
                    "root {key:?} routes to shard {shard} but the object lives in shard {}",
                    r.shard
                ),
            });
        }
        self.shards[shard].with_mut(|h| h.set_root(key, r.r))
    }

    /// Fetches the root published under `key`.
    pub fn get_root(&self, key: &str) -> Option<ShardRef> {
        let shard = self.shard_of(key);
        self.shards[shard]
            .with(|h| h.get_root(key))
            .map(|r| ShardRef { shard, r })
    }

    /// Removes the root published under `key`; returns whether it existed.
    pub fn remove_root(&self, key: &str) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard].with_mut(|h| h.remove_root(key))
    }

    // ---- shard-scoped transactions, commits, maintenance ----

    /// Runs an undo-logged transaction on the shard `key` routes to (see
    /// `HeapHandle::txn`). Transactions never span shards: each shard is
    /// its own atomicity domain.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error after aborting.
    pub fn txn<T>(
        &self,
        key: &str,
        f: impl FnOnce(&mut HeapTxn<'_>) -> crate::Result<T>,
    ) -> crate::Result<T> {
        self.handle_for(key).txn(f)
    }

    /// Commits every shard: seals one epoch per shard and fans the image
    /// syncs out across the shards' flush pipelines — the applies run in
    /// parallel, and mutations of the next epoch proceed on every shard
    /// immediately. The returned [`ShardedCommitTicket`] is the all-shards
    /// durability barrier; [`commit_sync`](Self::commit_sync) waits
    /// inline.
    ///
    /// # Errors
    ///
    /// Seal-time errors from any shard (apply errors surface through the
    /// ticket).
    pub fn commit(&self) -> crate::Result<ShardedCommitTicket> {
        let tickets = self
            .shards
            .iter()
            .map(HeapHandle::commit)
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(ShardedCommitTicket { tickets })
    }

    /// Commits every shard and blocks until all are durable, returning
    /// the aggregate report. Equivalent to `self.commit()?.wait()`.
    ///
    /// # Errors
    ///
    /// The first shard's I/O error.
    pub fn commit_sync(&self) -> crate::Result<CommitReport> {
        self.commit()?.wait()
    }

    /// Deepest per-shard flush-pipeline queue: commit epochs sealed but
    /// not yet applied, maximized over shards. The serving layer's
    /// backpressure signal — when one shard's pipeline lags, writes
    /// routed anywhere may still be waiting on it at the all-shards
    /// barrier, so the worst shard is the honest number.
    pub fn pending_commits(&self) -> usize {
        self.shards
            .iter()
            .map(HeapHandle::pending_commits)
            .max()
            .unwrap_or(0)
    }

    /// Pauses (or resumes) background applies on **every** shard — the
    /// fan-out of [`HeapHandle::set_flush_paused`], used by tests to make
    /// a lagging flush pipeline deterministic.
    pub fn set_flush_paused(&self, paused: bool) {
        for s in &self.shards {
            s.set_flush_paused(paused);
        }
    }

    /// Collects every shard, fanning the collections out on a scoped
    /// thread pool (one thread per shard) — shards are independent GC
    /// domains, so their collections never need to serialize.
    ///
    /// # Errors
    ///
    /// The first shard's device error.
    pub fn gc(&self) -> crate::Result<()> {
        let mut results: Vec<crate::Result<()>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|s| scope.spawn(move || s.with_mut(|h| h.gc(&[]).map(|_| ()))))
                .collect();
            results.extend(
                handles
                    .into_iter()
                    .map(|j| j.join().expect("shard gc thread panicked")),
            );
        });
        results.into_iter().collect()
    }

    /// Aggregate allocator/collector statistics over all shards.
    pub fn heap_stats(&self) -> crate::HeapStats {
        let mut total = crate::HeapStats::default();
        for s in &self.shards {
            total.merge(&s.heap_stats());
        }
        total
    }

    /// Aggregate census over all shards.
    pub fn census(&self) -> HeapCensus {
        let mut total = HeapCensus::default();
        for s in &self.shards {
            let c = s.with(|h| h.census());
            total.objects += c.objects;
            total.object_words += c.object_words;
            total.free_regions += c.free_regions;
            total.total_regions += c.total_regions;
            total.segment_klasses += c.segment_klasses;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<FieldDesc> {
        vec![FieldDesc::prim("v"), FieldDesc::reference("next")]
    }

    #[test]
    fn routes_keys_across_all_shards() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "s", 4, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        let mut used = [false; 4];
        for i in 0..64 {
            let key = format!("key{i}");
            let r = sh.alloc_instance(&key, &k).unwrap();
            used[r.shard] = true;
            sh.set_field(r, 0, i);
            assert_eq!(sh.field(r, 0), i);
        }
        assert!(used.iter().all(|&u| u), "64 keys should hit all 4 shards");
        assert_eq!(sh.census().objects, 64);
    }

    #[test]
    fn cross_shard_references_are_rejected() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "x", 2, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        // Find two keys on different shards.
        let a = sh.alloc_instance("aaa", &k).unwrap();
        let mut i = 0;
        let b = loop {
            let key = format!("b{i}");
            if sh.shard_of(&key) != a.shard {
                break sh.alloc_instance(&key, &k).unwrap();
            }
            i += 1;
        };
        assert!(matches!(
            sh.set_field_ref(a, 1, b),
            Err(PjhError::SafetyViolation { .. })
        ));
        // Same-shard references are fine.
        let a2 = sh.alloc_instance("aaa", &k).unwrap();
        assert_eq!(a2.shard, a.shard);
        sh.set_field_ref(a, 1, a2).unwrap();
        assert_eq!(sh.field_ref(a, 1), a2);
    }

    #[test]
    fn roots_route_with_their_keys() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "r", 4, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        for i in 0..16 {
            let key = format!("user{i}");
            let r = sh.alloc_instance(&key, &k).unwrap();
            sh.set_field(r, 0, i);
            sh.flush_object(r);
            sh.set_root(&key, r).unwrap();
        }
        for i in 0..16 {
            let key = format!("user{i}");
            let r = sh.get_root(&key).unwrap();
            assert_eq!(r.shard, sh.shard_of(&key));
            assert_eq!(sh.field(r, 0), i);
        }
        assert!(sh.remove_root("user3"));
        assert_eq!(sh.get_root("user3"), None);
    }

    #[test]
    fn four_shard_alloc_commit_reload_end_to_end() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "e2e", 4, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        for i in 0..32 {
            let key = format!("k{i}");
            let r = sh.alloc_instance(&key, &k).unwrap();
            sh.txn(&key, |t| {
                t.set_field(r.r, 0, i * 11);
                Ok(())
            })
            .unwrap();
            sh.set_root(&key, r).unwrap();
        }
        let report = sh.commit_sync().unwrap();
        assert!(report.managed && report.synced_lines > 0);
        // Close every shard, then reopen from the images.
        drop(sh);
        let sh2 = ShardedHeap::open(&mgr, "e2e", LoadOptions::default()).unwrap();
        assert_eq!(sh2.num_shards(), 4);
        for i in 0..32 {
            let key = format!("k{i}");
            let r = sh2.get_root(&key).expect("root survived per shard");
            assert_eq!(sh2.field(r, 0), i * 11);
        }
        for i in 0..4 {
            sh2.handle(i).with(|h| h.verify_integrity().unwrap());
        }
    }

    #[test]
    fn txn_routes_and_aborts_per_shard() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "t", 2, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        let r = sh.alloc_instance("k", &k).unwrap();
        sh.txn("k", |t| {
            t.set_field(r.r, 0, 1);
            Ok(())
        })
        .unwrap();
        let out: crate::Result<()> = sh.txn("k", |t| {
            t.set_field(r.r, 0, 99);
            Err(PjhError::NotAHeap)
        });
        assert!(out.is_err());
        assert_eq!(sh.field(r, 0), 1, "shard-local abort rolled back");
    }

    #[test]
    fn commit_fans_out_one_epoch_per_shard() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "fan", 4, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        for i in 0..32 {
            let key = format!("k{i}");
            let r = sh.alloc_instance(&key, &k).unwrap();
            sh.set_field(r, 0, i);
            sh.flush_object(r);
        }
        let ticket = sh.commit().unwrap();
        assert_eq!(ticket.tickets().len(), 4);
        let report = ticket.wait().unwrap();
        assert!(report.managed && report.synced_lines > 0);
        for i in 0..4 {
            assert_eq!(sh.handle(i).sealed_epoch(), 1);
            assert_eq!(sh.handle(i).durable_epoch(), 1);
        }
    }

    #[test]
    fn gc_collects_every_shard_in_parallel() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "gc", 4, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        // Garbage everywhere, one live root per shard-ish key.
        for i in 0..64 {
            let key = format!("g{i}");
            let r = sh.alloc_instance(&key, &k).unwrap();
            if i % 8 == 0 {
                sh.set_root(&key, r).unwrap();
            }
        }
        let before = sh.census().objects;
        sh.gc().unwrap();
        let after = sh.census().objects;
        assert!(after < before, "garbage reclaimed ({before} -> {after})");
        for i in 0..64 {
            let key = format!("g{i}");
            if i % 8 == 0 {
                let r = sh.get_root(&key).expect("live root survived gc");
                assert_eq!(r.shard, sh.shard_of(&key));
            }
        }
        for i in 0..4 {
            sh.handle(i).with(|h| h.verify_integrity().unwrap());
        }
    }

    #[test]
    fn sharded_ticket_state_is_non_consuming_and_aggregates() {
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "st", 2, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", fields()).unwrap();
        for i in 0..16 {
            let key = format!("k{i}");
            let r = sh.alloc_instance(&key, &k).unwrap();
            sh.set_field(r, 0, i);
            sh.flush_object(r);
        }
        // Hold every shard's apply: the fan-out is observably in flight,
        // and asking does not consume the barrier.
        sh.set_flush_paused(true);
        let ticket = sh.commit().unwrap();
        assert_eq!(ticket.state(), CommitState::InFlight);
        assert!(!ticket.is_durable());
        assert_eq!(ticket.state(), CommitState::InFlight);
        assert!(sh.pending_commits() >= 1, "queued applies are observable");
        // Abort one shard's queued apply: the aggregate turns Failed with
        // the shard named, while the other shard is merely in flight.
        assert_eq!(sh.handle(0).abort_pending_commits(), 1);
        match ticket.state() {
            CommitState::Failed(reason) => {
                assert!(reason.starts_with("shard 0:"), "{reason}");
            }
            other => panic!("one aborted shard must surface as Failed, got {other:?}"),
        }
        // Resume and heal shard 0 with a fresh commit; once every shard's
        // epoch is durable the same barrier reads Durable — and `wait`
        // (the consuming path) agrees.
        sh.set_flush_paused(false);
        sh.handle(0).commit_sync().unwrap();
        sh.handle(1).commit_sync().unwrap();
        assert_eq!(ticket.state(), CommitState::Durable);
        assert!(ticket.is_durable());
        assert_eq!(sh.pending_commits(), 0);
    }

    #[test]
    fn typed_surface_routes_by_key() {
        use espresso_object::{PObject, Schema};
        struct Acct;
        impl PObject for Acct {
            const CLASS_NAME: &'static str = "ShardAcct";
            fn schema() -> Schema {
                Schema::builder("ShardAcct")
                    .u64_field("bal")
                    .str_field("owner")
                    .build()
            }
        }
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "ty", 4, 4 << 20, PjhConfig::small()).unwrap();
        let class = sh.register::<Acct>().unwrap();
        let bal = class.field::<u64>("bal").unwrap();
        let owner = class.str_field("owner").unwrap();
        // Typed txn + typed root per key, across all shards.
        for i in 0..16u64 {
            let key = format!("acct{i}");
            let acct = sh
                .txn(&key, |t| {
                    let a = t.alloc::<Acct>()?;
                    t.set(a, bal, i * 100);
                    t.set_str(a, owner, &format!("user{i}"))?;
                    Ok(a)
                })
                .unwrap();
            sh.set_root_typed(&key, acct).unwrap();
        }
        sh.commit_sync().unwrap();
        for i in 0..16u64 {
            let key = format!("acct{i}");
            let session = sh.read_for(&key);
            let a = session.root::<Acct>(&key).unwrap().expect("typed root");
            assert_eq!(session.get(a, bal), i * 100);
            assert_eq!(
                session.get_str(a, owner).as_deref(),
                Some(format!("user{i}").as_str())
            );
        }
        // Reopen: schemas revalidate on every shard, typed roots survive.
        drop(sh);
        let sh2 = ShardedHeap::open(&mgr, "ty", LoadOptions::default()).unwrap();
        sh2.register::<Acct>().unwrap();
        let a = sh2.root::<Acct>("acct3").unwrap().expect("reloaded root");
        assert_eq!(sh2.handle_for("acct3").with(|h| h.get(a, bal)), 300);
    }

    #[test]
    fn open_missing_base_errors() {
        let mgr = HeapManager::temp().unwrap();
        assert!(!ShardedHeap::exists(&mgr, "nope"));
        assert!(matches!(
            ShardedHeap::open(&mgr, "nope", LoadOptions::default()),
            Err(PjhError::NoSuchHeap { .. })
        ));
    }
}
