//! The unified undo-log transaction engine (ACID stores on PJH).
//!
//! Historically every library layered its own word-granular undo log on
//! top of the heap (the collections' `PStore`, PCJ's NVML-style log).
//! This module hoists that machinery into the heap itself: one NVM-resident
//! log per PJH instance, shared by every handle to the heap, with a typed
//! scoped entry point ([`Pjh::txn`] / `HeapHandle::txn`) that commits on
//! success, aborts on error, and — via [`HeapTxn`]'s drop guard — aborts
//! automatically when the closure panics.
//!
//! Log records are self-validating: a `(slot, old value)` pair is live iff
//! its slot word is non-zero (slots are virtual addresses, never 0).
//! Appending persists the pair in one call when it fits a cache line and
//! in old-then-slot order when it straddles two, so a record can never
//! become live with a torn old value. A store is performed and flushed
//! only after its record is durable; commit invalidates the used records
//! by zeroing their slot words (adjacent, so usually one flush), and
//! [`Pjh::txn_recover`] re-zeroes the whole log, so every transaction
//! starts from an all-zero persisted log. If a crash leaves a live record
//! prefix, recovery rolls it back in reverse.

use espresso_nvm::CACHE_LINE;
use espresso_object::{FieldDesc, KlassId, Ref, ARRAY_HEADER_WORDS, HEADER_WORDS, WORD};

use crate::heap::Pjh;

/// Root name under which the undo log array is published.
pub(crate) const TXN_LOG_ROOT: &str = "espresso.txn.log";

/// Undo-log capacity in (address, old-value) entry pairs. Sized so the
/// log array (1 + 2 × entries elements) fits in the smallest supported
/// region (4 KiB = 512 words, 3 of which are the array header).
const LOG_ENTRIES: usize = 240;

/// Per-heap transaction state (DRAM side; the log itself lives in NVM).
#[derive(Debug, Clone, Default)]
pub(crate) struct TxnState {
    /// The published undo-log array, once attached or allocated.
    pub(crate) log: Option<Ref>,
    /// Whether a transaction is open.
    pub(crate) active: bool,
    /// Flattened-nesting depth (inner begins increment, commits decrement).
    pub(crate) depth: u32,
    /// Live records in the log.
    pub(crate) entries: usize,
}

impl Pjh {
    /// Rolls back a transaction that was in flight when a crash (or a
    /// commit point taken mid-transaction) captured the image, and
    /// re-establishes the all-zero persisted log. Returns whether any
    /// record was undone. Called by the manager after every load; safe
    /// (and cheap) on a heap that has never run a transaction.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn txn_recover(&mut self) -> crate::Result<bool> {
        let Some(log) = self.get_root(TXN_LOG_ROOT) else {
            return Ok(false);
        };
        self.txn.log = Some(log);
        // A live record prefix means a transaction was torn: undo it in
        // reverse.
        let mut records = Vec::new();
        for i in 0..LOG_ENTRIES {
            let addr = self.array_get(log, 1 + 2 * i);
            if addr == 0 {
                break;
            }
            records.push((addr, self.array_get(log, 2 + 2 * i)));
        }
        for &(addr, old) in records.iter().rev() {
            self.write_word_at(addr, old);
            self.persist_word_at(addr);
        }
        // Re-zero any slot word left non-zero anywhere in the log: a crash
        // inside a commit's invalidation sweep can leave live-looking
        // records beyond a zeroed prefix, and the validity scan must never
        // find them in a later crash. A clean recover writes (and flushes)
        // nothing.
        let mut stale = false;
        for i in 0..LOG_ENTRIES {
            if self.array_get(log, 1 + 2 * i) != 0 {
                self.array_set(log, 1 + 2 * i, 0);
                stale = true;
            }
        }
        if stale {
            self.flush_object(log);
        }
        self.txn.active = false;
        self.txn.depth = 0;
        self.txn.entries = 0;
        Ok(!records.is_empty())
    }

    /// Attaches to the published log, allocating and publishing one on
    /// first use. The array body comes from a zeroed, persisted region (or
    /// the zeroed tail a collection leaves behind), so the first record's
    /// slot word is already a durable terminator.
    fn txn_log_ref(&mut self) -> crate::Result<Ref> {
        if let Some(log) = self.txn.log {
            return Ok(log);
        }
        if let Some(log) = self.get_root(TXN_LOG_ROOT) {
            self.txn.log = Some(log);
            return Ok(log);
        }
        let kid = self.register_prim_array();
        let log = self.alloc_array(kid, 1 + 2 * LOG_ENTRIES)?;
        self.set_root(TXN_LOG_ROOT, log)?;
        self.txn.log = Some(log);
        Ok(log)
    }

    /// Ensures the undo log is allocated and published, so later
    /// [`txn_begin`](Self::txn_begin) calls cannot fail on allocation.
    /// Wrappers that expose an infallible `begin` (the collections'
    /// `PStore`) call this at construction to surface heap-full errors
    /// early instead of panicking mid-operation.
    ///
    /// # Errors
    ///
    /// Allocation or root-table errors publishing the log.
    pub fn txn_prepare(&mut self) -> crate::Result<()> {
        self.txn_log_ref().map(|_| ())
    }

    /// Begins a transaction; nested begins are flattened.
    ///
    /// # Errors
    ///
    /// Allocation or root-table errors publishing the undo log on the
    /// heap's first-ever transaction.
    pub fn txn_begin(&mut self) -> crate::Result<()> {
        if self.txn.active {
            self.txn.depth += 1;
            return Ok(());
        }
        self.txn_log_ref()?;
        self.txn.active = true;
        self.txn.depth = 0;
        self.txn.entries = 0;
        Ok(())
    }

    /// Whether a transaction is currently open.
    pub fn txn_active(&self) -> bool {
        self.txn.active
    }

    /// Device virtual address of log array element `i` (element 0 is
    /// reserved).
    #[inline]
    fn txn_log_slot(&self, i: usize) -> u64 {
        self.txn.log.expect("log attached").addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64
    }

    /// Zeroes the slot words of records `0..entries` and persists them
    /// with one trailing fence, invalidating the transaction.
    fn txn_invalidate_log(&mut self) {
        if self.txn.entries == 0 {
            return;
        }
        for i in 0..self.txn.entries {
            self.write_word_at(self.txn_log_slot(1 + 2 * i), 0);
        }
        let span = (2 * (self.txn.entries - 1) + 1) * WORD;
        self.persist_range_at(self.txn_log_slot(1), span);
    }

    /// Commits: invalidates the used records (their slot words are 16
    /// bytes apart, so this is typically a single flush).
    pub fn txn_commit(&mut self) {
        if self.txn.depth > 0 {
            self.txn.depth -= 1;
            return;
        }
        self.txn_invalidate_log();
        self.txn.active = false;
        self.txn.entries = 0;
    }

    /// Aborts: applies the undo entries in reverse and truncates the log.
    /// An inner abort aborts the whole flattened transaction.
    pub fn txn_abort(&mut self) {
        for i in (0..self.txn.entries).rev() {
            let addr = self.read_word_at(self.txn_log_slot(1 + 2 * i));
            let old = self.read_word_at(self.txn_log_slot(2 + 2 * i));
            self.write_word_at(addr, old);
            self.persist_word_at(addr);
        }
        self.txn_invalidate_log();
        self.txn.active = false;
        self.txn.depth = 0;
        self.txn.entries = 0;
    }

    /// Appends the `(slot, old value)` record for `slot_vaddr` if a
    /// transaction is active.
    fn txn_log_old(&mut self, slot_vaddr: u64) {
        if !self.txn.active {
            return;
        }
        assert!(
            self.txn.entries < LOG_ENTRIES,
            "undo log overflow (transaction too large)"
        );
        let old = self.read_word_at(slot_vaddr);
        let i = self.txn.entries;
        let entry = self.txn_log_slot(1 + 2 * i);
        self.write_word_at(entry, slot_vaddr);
        self.write_word_at(entry + WORD as u64, old);
        // The record becomes live the instant its slot word is durable,
        // so the old value must never trail it: one persist when the pair
        // shares a cache line, old-then-slot order when it straddles two.
        if self.layout.to_off(entry) % CACHE_LINE + 2 * WORD <= CACHE_LINE {
            self.persist_range_at(entry, 2 * WORD);
        } else {
            self.persist_word_at(entry + WORD as u64);
            self.persist_word_at(entry);
        }
        self.txn.entries = i + 1;
    }

    // ---- logged primitive operations ----
    //
    // Slot addresses are computed once and reused for the log record, the
    // store and the flush, so each logged store costs two persists (log
    // record, data) and no redundant Klass traffic. Outside a transaction
    // these degrade to plain persisted stores.

    /// Logged, persisted field store.
    pub fn txn_set_field(&mut self, obj: Ref, index: usize, value: u64) {
        let slot = obj.addr() + ((HEADER_WORDS + index) * WORD) as u64;
        self.txn_log_old(slot);
        self.write_word_at(slot, value);
        self.persist_word_at(slot);
    }

    /// Logged, persisted reference-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn txn_set_field_ref(&mut self, obj: Ref, index: usize, value: Ref) -> crate::Result<()> {
        let slot = obj.addr() + ((HEADER_WORDS + index) * WORD) as u64;
        self.txn_log_old(slot);
        self.write_ref_word_at(slot, value)?;
        self.persist_word_at(slot);
        Ok(())
    }

    /// Logged, persisted array store.
    pub fn txn_array_set(&mut self, arr: Ref, i: usize, value: u64) {
        debug_assert!(i < self.array_len(arr));
        let slot = arr.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64;
        self.txn_log_old(slot);
        self.write_word_at(slot, value);
        self.persist_word_at(slot);
    }

    /// Logged, persisted array reference store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn txn_array_set_ref(&mut self, arr: Ref, i: usize, value: Ref) -> crate::Result<()> {
        debug_assert!(i < self.array_len(arr));
        let slot = arr.addr() + ((ARRAY_HEADER_WORDS + i) * WORD) as u64;
        self.txn_log_old(slot);
        self.write_ref_word_at(slot, value)?;
        self.persist_word_at(slot);
        Ok(())
    }

    /// Runs `f` inside a transaction: commit on `Ok`, abort on `Err`, and
    /// — because [`HeapTxn`] aborts from its drop guard — abort if `f`
    /// panics. Joins (flattens into) an already-active transaction.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after aborting, and log-publication errors
    /// from [`txn_begin`](Self::txn_begin).
    pub fn txn<T>(
        &mut self,
        f: impl FnOnce(&mut HeapTxn<'_>) -> crate::Result<T>,
    ) -> crate::Result<T> {
        self.txn_begin()?;
        let mut t = HeapTxn {
            heap: self,
            finished: false,
            fresh: std::collections::HashSet::new(),
        };
        match f(&mut t) {
            Ok(v) => {
                t.finished = true;
                t.heap.txn_commit();
                Ok(v)
            }
            Err(e) => {
                t.finished = true;
                t.heap.txn_abort();
                Err(e)
            }
        }
    }
}

/// A scoped transaction over one PJH instance.
///
/// Obtained from [`Pjh::txn`] (or `HeapHandle::txn`). Every store issued
/// through this type is recorded in the heap's NVM undo log and flushed,
/// so whatever the crash point the transaction is atomic: recovery (or an
/// abort) restores every logged slot to its pre-transaction value.
///
/// Dropping a `HeapTxn` whose closure neither returned nor committed —
/// i.e. unwinding out of the closure on panic — aborts the transaction,
/// so a panicking transaction can never leak half-applied state.
#[derive(Debug)]
pub struct HeapTxn<'a> {
    heap: &'a mut Pjh,
    finished: bool,
    /// Objects allocated inside this transaction. They are unreachable
    /// until a logged pointer store publishes them, so stores into them
    /// need no undo records — the `init_*` family below asserts against
    /// this set before skipping the log.
    fresh: std::collections::HashSet<Ref>,
}

impl Drop for HeapTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.heap.txn_abort();
        }
    }
}

impl HeapTxn<'_> {
    /// Mutable heap access for the typed layer (see [`crate::typed`]),
    /// which routes every store back through the logged `txn_*` ops.
    pub(crate) fn heap_internal(&mut self) -> &mut Pjh {
        self.heap
    }

    /// Records an object allocated inside this transaction (called by the
    /// typed allocation paths in [`crate::typed`], which bypass the raw
    /// passthroughs below).
    pub(crate) fn note_fresh(&mut self, r: Ref) {
        self.fresh.insert(r);
    }

    /// Whether `r` was allocated inside this transaction (and is therefore
    /// eligible for unlogged [`init_field`](Self::init_field)-family
    /// stores).
    pub fn is_fresh(&self, r: Ref) -> bool {
        self.fresh.contains(&r)
    }

    // ---- init stores: unlogged writes to objects allocated in this
    //      transaction ----
    //
    // A store into an object the transaction itself allocated needs no
    // undo record: the object is unreachable until a *logged* pointer
    // store publishes it, so on abort or crash-rollback the whole object
    // is garbage and its contents are irrelevant. Builders that construct
    // large object graphs inside a transaction (the index crate's
    // copy-on-write B-tree paths) use these to stay clear of the undo
    // log's fixed capacity — a path of fresh nodes costs zero log records
    // instead of hundreds.
    //
    // Init stores are volatile (like `Pjh::set_field`): the builder MUST
    // persist every initialized object (`self.heap().flush_object(r)`)
    // *before* issuing the logged store that publishes it, or a crash
    // after commit could expose torn contents.

    /// Unlogged field store into an object allocated in this transaction.
    ///
    /// # Panics
    ///
    /// Panics if `obj` was not allocated through this transaction's
    /// allocation passthroughs — logging would be required for atomicity.
    pub fn init_field(&mut self, obj: Ref, index: usize, value: u64) {
        assert!(
            self.fresh.contains(&obj),
            "init store into pre-existing object"
        );
        self.heap.set_field(obj, index, value);
    }

    /// Unlogged reference-field store into an object allocated in this
    /// transaction.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not transaction-fresh.
    pub fn init_field_ref(&mut self, obj: Ref, index: usize, value: Ref) -> crate::Result<()> {
        assert!(
            self.fresh.contains(&obj),
            "init store into pre-existing object"
        );
        self.heap.set_field_ref(obj, index, value)
    }

    /// Unlogged array store into an array allocated in this transaction.
    ///
    /// # Panics
    ///
    /// Panics if `arr` is not transaction-fresh.
    pub fn init_array_set(&mut self, arr: Ref, i: usize, value: u64) {
        assert!(
            self.fresh.contains(&arr),
            "init store into pre-existing array"
        );
        self.heap.array_set(arr, i, value);
    }

    /// Unlogged array reference store into an array allocated in this
    /// transaction.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    ///
    /// # Panics
    ///
    /// Panics if `arr` is not transaction-fresh.
    pub fn init_array_set_ref(&mut self, arr: Ref, i: usize, value: Ref) -> crate::Result<()> {
        assert!(
            self.fresh.contains(&arr),
            "init store into pre-existing array"
        );
        self.heap.array_set_ref(arr, i, value)
    }

    // ---- logged writes ----

    /// Logged, persisted field store.
    pub fn set_field(&mut self, obj: Ref, index: usize, value: u64) {
        self.heap.txn_set_field(obj, index, value);
    }

    /// Logged, persisted reference-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn set_field_ref(&mut self, obj: Ref, index: usize, value: Ref) -> crate::Result<()> {
        self.heap.txn_set_field_ref(obj, index, value)
    }

    /// Logged, persisted array store.
    pub fn array_set(&mut self, arr: Ref, i: usize, value: u64) {
        self.heap.txn_array_set(arr, i, value);
    }

    /// Logged, persisted array reference store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn array_set_ref(&mut self, arr: Ref, i: usize, value: Ref) -> crate::Result<()> {
        self.heap.txn_array_set_ref(arr, i, value)
    }

    // ---- allocation (new objects need no undo: they are unreachable
    // until a logged pointer store publishes them) ----

    /// Allocation passthrough.
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_instance(&mut self, kid: KlassId) -> crate::Result<Ref> {
        let r = self.heap.alloc_instance(kid)?;
        self.fresh.insert(r);
        Ok(r)
    }

    /// Array allocation passthrough.
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_array(&mut self, kid: KlassId, len: usize) -> crate::Result<Ref> {
        let r = self.heap.alloc_array(kid, len)?;
        self.fresh.insert(r);
        Ok(r)
    }

    /// Allocates and fully persists a length-prefixed string (see
    /// [`Pjh::alloc_string`]); the payload is transaction-fresh, so only
    /// the pointer store publishing it needs logging.
    ///
    /// # Errors
    ///
    /// Heap allocation errors.
    pub fn alloc_string(&mut self, s: &str) -> crate::Result<Ref> {
        let r = self.heap.alloc_string(s)?;
        self.fresh.insert(r);
        Ok(r)
    }

    /// Class registration passthrough.
    ///
    /// # Errors
    ///
    /// [`crate::PjhError::KlassLayoutMismatch`] on conflicting layouts.
    pub fn register_instance(
        &mut self,
        name: &str,
        fields: Vec<FieldDesc>,
    ) -> crate::Result<KlassId> {
        self.heap.register_instance(name, fields)
    }

    /// Resolved-klass lookup passthrough.
    pub fn lookup_klass(&self, name: &str) -> Option<KlassId> {
        self.heap.lookup_klass(name)
    }

    /// Primitive-array class registration passthrough.
    pub fn register_prim_array(&mut self) -> KlassId {
        self.heap.register_prim_array()
    }

    /// Object-array class registration passthrough.
    pub fn register_obj_array(&mut self, elem_name: &str) -> KlassId {
        self.heap.register_obj_array(elem_name)
    }

    // ---- reads (never logged) ----

    /// Reads raw field `index`.
    pub fn field(&self, r: Ref, index: usize) -> u64 {
        self.heap.field(r, index)
    }

    /// Reads reference field `index`.
    pub fn field_ref(&self, r: Ref, index: usize) -> Ref {
        self.heap.field_ref(r, index)
    }

    /// Reads array element `i`.
    pub fn array_get(&self, r: Ref, i: usize) -> u64 {
        self.heap.array_get(r, i)
    }

    /// Reads array element `i` as a reference.
    pub fn array_get_ref(&self, r: Ref, i: usize) -> Ref {
        self.heap.array_get_ref(r, i)
    }

    /// Length of an array object.
    pub fn array_len(&self, r: Ref) -> usize {
        self.heap.array_len(r)
    }

    /// Fetches a root.
    pub fn get_root(&self, name: &str) -> Option<Ref> {
        self.heap.get_root(name)
    }

    /// Read-only access to the underlying heap for operations with no
    /// transactional meaning (census, klass lookup, flush accounting).
    /// Mutable access is deliberately not exposed: unlogged stores inside
    /// a transaction would break atomicity.
    pub fn heap(&self) -> &Pjh {
        self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoadOptions, PjhConfig, PjhError};
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn heap() -> (NvmDevice, Pjh) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let h = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, h)
    }

    fn point(h: &mut Pjh) -> KlassId {
        h.register_instance("Point", vec![FieldDesc::prim("x"), FieldDesc::prim("y")])
            .unwrap()
    }

    #[test]
    fn txn_commits_on_ok() {
        let (_dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 10);
            t.set_field(p, 1, 20);
            Ok(())
        })
        .unwrap();
        assert_eq!(h.field(p, 0), 10);
        assert_eq!(h.field(p, 1), 20);
        assert!(!h.txn_active());
    }

    #[test]
    fn txn_aborts_on_err() {
        let (_dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 1);
            Ok(())
        })
        .unwrap();
        let r: crate::Result<()> = h.txn(|t| {
            t.set_field(p, 0, 99);
            Err(PjhError::NotAHeap)
        });
        assert!(r.is_err());
        assert_eq!(h.field(p, 0), 1, "aborted store rolled back");
    }

    #[test]
    fn txn_aborts_on_panic() {
        let (dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 7);
            Ok(())
        })
        .unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: crate::Result<()> = h.txn(|t| {
                t.set_field(p, 0, 1000);
                t.set_field(p, 1, 2000);
                panic!("boom");
            });
        }));
        assert!(caught.is_err());
        assert_eq!(h.field(p, 0), 7, "panic aborted the transaction");
        assert_eq!(h.field(p, 1), 0);
        assert!(!h.txn_active(), "state reset after panic-abort");
        // The heap is still usable and crash-consistent afterwards.
        h.txn(|t| {
            t.set_field(p, 1, 5);
            Ok(())
        })
        .unwrap();
        dev.crash();
        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        h2.txn_recover().unwrap();
        let p2 = h2.get_root(TXN_LOG_ROOT).unwrap();
        assert!(!p2.is_null());
    }

    #[test]
    fn crash_mid_txn_rolls_back_on_recover() {
        let (dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.set_root("p", p).unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 7);
            Ok(())
        })
        .unwrap();
        // Torn transaction: stores logged + applied, commit never runs.
        h.txn_begin().unwrap();
        h.txn_set_field(p, 0, 1000);
        h.txn_set_field(p, 1, 2000);
        dev.crash();
        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        assert!(h2.txn_recover().unwrap(), "torn records were undone");
        let p2 = h2.get_root("p").unwrap();
        assert_eq!(h2.field(p2, 0), 7);
        assert_eq!(h2.field(p2, 1), 0);
    }

    #[test]
    fn nested_txns_flatten() {
        let (_dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.txn_begin().unwrap();
        h.txn_set_field(p, 0, 1);
        h.txn_begin().unwrap();
        h.txn_set_field(p, 1, 2);
        h.txn_commit(); // inner: no effect yet
        assert!(h.txn_active());
        h.txn_commit(); // outer: commits all
        assert!(!h.txn_active());
        assert_eq!(h.field(p, 0), 1);
        assert_eq!(h.field(p, 1), 2);
    }

    #[test]
    fn gc_is_refused_while_a_transaction_is_open() {
        let (_dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        h.set_root("p", p).unwrap();
        h.txn_begin().unwrap();
        h.txn_set_field(p, 0, 1);
        assert!(
            matches!(h.gc(&[]), Err(PjhError::SafetyViolation { .. })),
            "compaction would orphan the live undo records"
        );
        assert!(matches!(
            h.gc_full(&[]),
            Err(PjhError::SafetyViolation { .. })
        ));
        h.txn_commit();
        h.gc_full(&[]).unwrap();
        let p = h.get_root("p").unwrap();
        assert_eq!(h.field(p, 0), 1);
    }

    #[test]
    fn torn_txn_is_rolled_back_before_a_remap() {
        let (dev, mut h) = heap();
        let k = point(&mut h);
        let p = h.alloc_instance(k).unwrap();
        let q = h.alloc_instance(k).unwrap();
        h.set_root("p", p).unwrap();
        h.set_root("q", q).unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 5);
            Ok(())
        })
        .unwrap();
        // Torn transaction captured by the crash: its undo records hold
        // stored-base addresses.
        h.txn_begin().unwrap();
        h.txn_set_field(p, 0, 999);
        h.txn_set_field(q, 1, 888);
        dev.crash();
        // Reload at a different base: rollback must run before the
        // rebase, or the old-base record addresses would corrupt the
        // moved heap.
        let new_base = 0x7000_0000_0000;
        let (mut h2, report) = Pjh::load(
            dev,
            LoadOptions {
                base_override: Some(new_base),
                ..LoadOptions::default()
            },
        )
        .unwrap();
        assert!(report.remapped);
        assert!(
            !h2.txn_recover().unwrap(),
            "load already rolled the torn transaction back"
        );
        let p2 = h2.get_root("p").unwrap();
        let q2 = h2.get_root("q").unwrap();
        assert_eq!(h2.field(p2, 0), 5, "torn store rolled back pre-remap");
        assert_eq!(h2.field(q2, 1), 0);
        h2.verify_integrity().unwrap();
    }

    #[test]
    fn gc_relocates_the_log() {
        let (_dev, mut h) = heap();
        let k = point(&mut h);
        for _ in 0..200 {
            h.alloc_instance(k).unwrap();
        }
        let p = h.alloc_instance(k).unwrap();
        h.set_root("p", p).unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 3);
            Ok(())
        })
        .unwrap();
        h.gc_full(&[]).unwrap();
        // The log must still work after a compacting collection.
        let p = h.get_root("p").unwrap();
        h.txn(|t| {
            t.set_field(p, 0, 4);
            Ok(())
        })
        .unwrap();
        assert_eq!(h.field(p, 0), 4);
        assert_eq!(
            h.txn.log,
            h.get_root(TXN_LOG_ROOT),
            "cached log ref tracks relocation"
        );
    }
}
