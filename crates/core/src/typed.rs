//! The typed persistence layer: schema registration with evolution
//! checks, typed allocation, typed named accessors, typed roots, and
//! read-only sessions.
//!
//! The raw heap surface ([`Pjh::field`], [`Pjh::set_field`], untyped
//! [`Ref`]s) stays available as the documented low-level escape hatch;
//! this module is the API applications are expected to program against:
//!
//! * **Declare** a class once with [`Schema::builder`] and bind it to a
//!   marker type via [`PObject`].
//! * **Register** it on a heap with [`Pjh::register`] /
//!   `HeapHandle::register` — this validates the declaration against the
//!   heap's *persisted* Klass table and schema fingerprint, on create and
//!   on every later load, so an incompatible layout surfaces as
//!   [`PjhError::SchemaMismatch`] instead of silently reinterpreting
//!   words.
//! * **Allocate** with `txn.alloc::<T>()` inside a transaction scope and
//!   mutate through [`Fld`]/[`RefFld`]/[`StrFld`]/[`ArrFld`] handles whose
//!   value types were checked when the handle was resolved (once, by
//!   name, against the schema).
//! * **Publish** with [`Pjh::set_root_typed`] and re-enter with
//!   `root::<T>(name)`, which verifies the stored object's class.
//! * **Read concurrently**: every typed getter takes `&Pjh`, so a
//!   [`HeapHandle::read`] guard (or [`HeapHandle::with`]) is a read-only
//!   session — concurrent readers share the `RwLock` read side instead of
//!   serializing behind writers.
//!
//! # Example
//!
//! ```
//! use espresso_core::{HeapManager, PjhConfig, PObject, PRef, Schema};
//!
//! struct Account;
//! impl PObject for Account {
//!     const CLASS_NAME: &'static str = "Account";
//!     fn schema() -> Schema {
//!         Schema::builder("Account")
//!             .u64_field("id")
//!             .i64_field("balance")
//!             .str_field("owner")
//!             .ref_field::<Account>("parent")
//!             .build()
//!     }
//! }
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let bank = mgr.create("bank", 4 << 20, PjhConfig::small())?;
//! let account = bank.register::<Account>()?;
//! let (id, balance) = (account.field::<u64>("id")?, account.field::<i64>("balance")?);
//! let owner = account.str_field("owner")?;
//!
//! let acct: PRef<Account> = bank.txn(|t| {
//!     let a = t.alloc::<Account>()?;
//!     t.set(a, id, 7u64);
//!     t.set(a, balance, -250i64);
//!     t.set_str(a, owner, "ada")?;
//!     Ok(a)
//! })?;
//! bank.set_root_typed("chief", acct)?;
//! bank.commit_sync()?;
//!
//! // A read-only session: typed getters on the shared read guard.
//! let h = bank.read();
//! let chief = h.root::<Account>("chief")?.expect("published");
//! assert_eq!(h.get(chief, id), 7);
//! assert_eq!(h.get(chief, balance), -250);
//! assert_eq!(h.get_str(chief, owner).as_deref(), Some("ada"));
//! # Ok(())
//! # }
//! ```

use std::any::TypeId;
use std::collections::HashMap;

use espresso_object::{
    ArrFld, Fld, KlassId, PArr, PClass, PObject, PRef, PValue, Ref, RefFld, Schema, StrFld,
};

use crate::heap::Pjh;
use crate::manager::HeapHandle;
use crate::name_table::EntryKind;
use crate::txn::HeapTxn;
use crate::PjhError;

/// DRAM-side typed-layer session state embedded in [`Pjh`].
///
/// Both maps are caches over persisted truth (the Klass table and the
/// fingerprint entries): a reload starts empty, so the first registration
/// of every class after a load re-runs the full validation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SchemaCache {
    /// Class name → fingerprint validated against NVM this session.
    validated: HashMap<String, u64>,
    /// Rust marker type → resolved klass id, so `alloc::<T>()` in a hot
    /// loop costs one `TypeId` hash instead of rebuilding and re-hashing
    /// the schema.
    by_type: HashMap<TypeId, KlassId>,
}

impl Pjh {
    // ---- registration & validation ----

    /// Registers a declared schema, validating it against everything the
    /// heap has persisted about the class. This is the typed counterpart
    /// of [`register_instance`](Self::register_instance) and the
    /// schema-evolution guard: it runs the same field-count and
    /// reference-bitmap reconciliation against the Klass segment, **and**
    /// compares the schema's [`fingerprint`](Schema::fingerprint) (field
    /// names, order, and declared types, including `ref` targets) against
    /// the fingerprint persisted when the class was first registered.
    ///
    /// Call it on a fresh heap to declare the layout and after every load
    /// to re-validate it — an application whose declaration drifted from
    /// the image gets a real error here instead of silently reading
    /// reinterpreted words.
    ///
    /// # Errors
    ///
    /// [`PjhError::KlassLayoutMismatch`] when the field count or reference
    /// bitmap disagrees with the persisted Klass record;
    /// [`PjhError::SchemaMismatch`] when the shape matches but a field's
    /// name or declared type changed; name-table errors persisting a new
    /// fingerprint.
    pub fn register_schema(&mut self, schema: &Schema) -> crate::Result<KlassId> {
        let name = schema.name();
        let fp = schema.fingerprint();
        if let Some(&validated) = self.schemas.validated.get(name) {
            if validated == fp {
                return Ok(self
                    .lookup_klass(name)
                    .expect("validated schema has a registered klass"));
            }
            return Err(PjhError::SchemaMismatch {
                class: name.to_string(),
                detail: format!(
                    "a different schema for this class (fingerprint {validated:#018x}) was \
                     already registered in this session; declared fingerprint is {fp:#018x}"
                ),
            });
        }
        // Shape check (count + reference bitmap) against the Klass
        // segment, reconciling a reloaded placeholder in the process.
        let kid = self.register_instance(name, schema.field_descs())?;
        // Full declared-layout check against the persisted fingerprint.
        match self.names.get(&self.dev, EntryKind::Schema, name) {
            Some(stored) if stored != fp => {
                return Err(PjhError::SchemaMismatch {
                    class: name.to_string(),
                    detail: format!(
                        "declared schema (fingerprint {fp:#018x}) disagrees with the schema \
                         persisted in this heap (fingerprint {stored:#018x}); a field's name \
                         or declared type changed since the class was first registered"
                    ),
                });
            }
            Some(_) => {}
            None => {
                self.names.set(&self.dev, EntryKind::Schema, name, fp)?;
            }
        }
        self.schemas.validated.insert(name.to_string(), fp);
        Ok(kid)
    }

    /// Registers `T`'s schema (see [`register_schema`](Self::register_schema))
    /// and returns the typed class handle used to resolve field accessors.
    ///
    /// # Errors
    ///
    /// Same as [`register_schema`](Self::register_schema).
    pub fn register<T: PObject + 'static>(&mut self) -> crate::Result<PClass<T>> {
        let schema = T::schema();
        let kid = self.register_schema(&schema)?;
        self.schemas.by_type.insert(TypeId::of::<T>(), kid);
        Ok(PClass::new(kid, schema))
    }

    /// Whether `name`'s schema has been validated against this heap in
    /// this session (used by wrappers to skip the write-locking
    /// registration path).
    pub fn schema_validated(&self, name: &str) -> bool {
        self.schemas.validated.contains_key(name)
    }

    /// Resolves the klass id for marker type `T`, registering (and
    /// validating) its schema on first use in this session.
    pub(crate) fn typed_klass<T: PObject + 'static>(&mut self) -> crate::Result<KlassId> {
        if let Some(&kid) = self.schemas.by_type.get(&TypeId::of::<T>()) {
            return Ok(kid);
        }
        let kid = self.register_schema(&T::schema())?;
        self.schemas.by_type.insert(TypeId::of::<T>(), kid);
        Ok(kid)
    }

    // ---- typed allocation ----

    /// Allocates an instance of `T` (registering the schema on first
    /// use), zero-initialized like every `pnew`. Prefer the transactional
    /// [`HeapTxn::alloc`] for mutations that must be atomic with the
    /// stores publishing the object.
    ///
    /// # Errors
    ///
    /// Schema validation errors on first use; allocation errors.
    pub fn alloc<T: PObject + 'static>(&mut self) -> crate::Result<PRef<T>> {
        let kid = self.typed_klass::<T>()?;
        Ok(PRef::from_raw_unchecked(self.alloc_instance(kid)?))
    }

    /// Allocates a primitive (`u64`) array of `len` elements as a typed
    /// array handle.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn alloc_arr(&mut self, len: usize) -> crate::Result<PArr> {
        let kid = self.register_prim_array();
        Ok(PArr::from_raw_unchecked(self.alloc_array(kid, len)?))
    }

    /// Allocates and fully persists a length-prefixed string: word 0 is
    /// the byte length, the following words are the UTF-8 bytes. This is
    /// the representation behind `str`-typed fields ([`StrFld`]).
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn alloc_string(&mut self, s: &str) -> crate::Result<Ref> {
        let kid = self.register_prim_array();
        let arr = self.alloc_array(kid, 1 + s.len().div_ceil(8))?;
        self.array_set(arr, 0, s.len() as u64);
        for (i, chunk) in s.as_bytes().chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.array_set(arr, 1 + i, u64::from_le_bytes(w));
        }
        self.flush_object(arr);
        Ok(arr)
    }

    /// Reads back a string stored by [`alloc_string`](Self::alloc_string).
    ///
    /// # Panics
    ///
    /// Panics on null or non-array references.
    pub fn read_string(&self, arr: Ref) -> String {
        let len = self.array_get(arr, 0) as usize;
        let mut bytes = Vec::with_capacity(len.next_multiple_of(8));
        for i in 0..len.div_ceil(8) {
            bytes.extend_from_slice(&self.array_get(arr, 1 + i).to_le_bytes());
        }
        bytes.truncate(len);
        String::from_utf8_lossy(&bytes).into_owned()
    }

    // ---- typed reads (available on `&Pjh`, i.e. in read sessions) ----

    /// Reads a primitive field through its resolved typed handle.
    pub fn get<T, V: PValue>(&self, obj: PRef<T>, f: Fld<T, V>) -> V {
        V::from_word(self.field(obj.raw(), f.index()))
    }

    /// Reads a reference field; `None` for null.
    pub fn get_ref<T, U>(&self, obj: PRef<T>, f: RefFld<T, U>) -> Option<PRef<U>> {
        let r = self.field_ref(obj.raw(), f.index());
        (!r.is_null()).then(|| PRef::from_raw_unchecked(r))
    }

    /// Reads a string field; `None` for null.
    pub fn get_str<T>(&self, obj: PRef<T>, f: StrFld<T>) -> Option<String> {
        let r = self.field_ref(obj.raw(), f.index());
        (!r.is_null()).then(|| self.read_string(r))
    }

    /// Reads a primitive-array field; `None` for null.
    pub fn get_arr<T>(&self, obj: PRef<T>, f: ArrFld<T>) -> Option<PArr> {
        let r = self.field_ref(obj.raw(), f.index());
        (!r.is_null()).then(|| PArr::from_raw_unchecked(r))
    }

    /// Length of a typed array.
    pub fn arr_len(&self, arr: PArr) -> usize {
        self.array_len(arr.raw())
    }

    /// Reads element `i` of a typed array.
    pub fn arr_get(&self, arr: PArr, i: usize) -> u64 {
        self.array_get(arr.raw(), i)
    }

    /// Checks that `r` points at an instance of `T` and wraps it. The
    /// verified bridge from the raw world into the typed one (the
    /// unverified one is [`PRef::from_raw_unchecked`]).
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] when the object's class is not
    /// `T::CLASS_NAME`.
    ///
    /// # Panics
    ///
    /// Panics on null or foreign references (like
    /// [`klass_of`](Self::klass_of)).
    pub fn cast<T: PObject>(&self, r: Ref) -> crate::Result<PRef<T>> {
        let klass = self.klass_of(r);
        if klass.name() != T::CLASS_NAME {
            return Err(PjhError::SchemaMismatch {
                class: T::CLASS_NAME.to_string(),
                detail: format!("reference {r:?} points at an instance of {}", klass.name()),
            });
        }
        Ok(PRef::from_raw_unchecked(r))
    }

    // ---- typed roots ----

    /// Fetches a typed root: `None` when the name is unknown (or was
    /// nullified by the zeroing scan), the typed handle when the stored
    /// object is an instance of `T`.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] when the root exists but holds an
    /// instance of a different class.
    pub fn root<T: PObject>(&self, name: &str) -> crate::Result<Option<PRef<T>>> {
        match self.get_root(name) {
            None => Ok(None),
            Some(r) => {
                let klass = self.klass_of(r);
                if klass.name() != T::CLASS_NAME {
                    return Err(PjhError::SchemaMismatch {
                        class: T::CLASS_NAME.to_string(),
                        detail: format!(
                            "root {name:?} holds an instance of {}, not {}",
                            klass.name(),
                            T::CLASS_NAME
                        ),
                    });
                }
                Ok(Some(PRef::from_raw_unchecked(r)))
            }
        }
    }

    /// Publishes a typed reference under `name` — the typed `setRoot`.
    ///
    /// # Errors
    ///
    /// Name-table errors.
    pub fn set_root_typed<T: PObject>(&mut self, name: &str, r: PRef<T>) -> crate::Result<()> {
        self.set_root(name, r.raw())
    }

    // ---- typed unlogged writes (volatile until flushed, like
    //      `set_field`; use `HeapTxn` for ACID mutations) ----

    /// Writes a primitive field (volatile until flushed).
    pub fn put<T, V: PValue>(&mut self, obj: PRef<T>, f: Fld<T, V>, value: V) {
        self.set_field(obj.raw(), f.index(), value.to_word());
    }

    /// Writes a reference field (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn put_ref<T, U>(
        &mut self,
        obj: PRef<T>,
        f: RefFld<T, U>,
        value: Option<PRef<U>>,
    ) -> crate::Result<()> {
        let raw = value.map_or(Ref::NULL, PRef::raw);
        self.set_field_ref(obj.raw(), f.index(), raw)
    }

    /// Allocates (and persists) the string payload, then writes the field
    /// reference (the field word itself is volatile until flushed).
    ///
    /// # Errors
    ///
    /// Allocation errors; safety violations.
    pub fn put_str<T>(&mut self, obj: PRef<T>, f: StrFld<T>, s: &str) -> crate::Result<()> {
        let arr = self.alloc_string(s)?;
        self.set_field_ref(obj.raw(), f.index(), arr)
    }

    /// Writes a primitive-array field (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn put_arr<T>(
        &mut self,
        obj: PRef<T>,
        f: ArrFld<T>,
        value: Option<PArr>,
    ) -> crate::Result<()> {
        let raw = value.map_or(Ref::NULL, PArr::raw);
        self.set_field_ref(obj.raw(), f.index(), raw)
    }

    /// Persists every data word of a typed object with one trailing fence
    /// (the typed `Object.flush`).
    pub fn flush<T>(&self, obj: PRef<T>) {
        self.flush_object(obj.raw());
    }
}

impl HeapTxn<'_> {
    // ---- typed transactional surface: allocation plus logged,
    //      persisted stores ----

    /// Typed allocation inside the transaction scope — `pnew T()`.
    /// Registers (and validates) `T`'s schema on its first use on this
    /// heap. New objects need no undo: they are unreachable until a
    /// logged pointer store publishes them.
    ///
    /// # Errors
    ///
    /// Schema validation errors on first use; allocation errors.
    pub fn alloc<T: PObject + 'static>(&mut self) -> crate::Result<PRef<T>> {
        let r = self.heap_internal().alloc::<T>()?;
        self.note_fresh(r.raw());
        Ok(r)
    }

    /// Allocates a primitive array as a typed handle.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn alloc_arr(&mut self, len: usize) -> crate::Result<PArr> {
        let a = self.heap_internal().alloc_arr(len)?;
        self.note_fresh(a.raw());
        Ok(a)
    }

    /// Registers `T`'s schema (validating against the persisted layout)
    /// and returns the typed class handle.
    ///
    /// # Errors
    ///
    /// Same as [`Pjh::register_schema`].
    pub fn register<T: PObject + 'static>(&mut self) -> crate::Result<PClass<T>> {
        self.heap_internal().register::<T>()
    }

    /// Logged, persisted primitive-field store.
    pub fn set<T, V: PValue>(&mut self, obj: PRef<T>, f: Fld<T, V>, value: V) {
        self.set_field(obj.raw(), f.index(), value.to_word());
    }

    /// Logged, persisted reference-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn set_ref<T, U>(
        &mut self,
        obj: PRef<T>,
        f: RefFld<T, U>,
        value: Option<PRef<U>>,
    ) -> crate::Result<()> {
        let raw = value.map_or(Ref::NULL, PRef::raw);
        self.set_field_ref(obj.raw(), f.index(), raw)
    }

    /// Allocates the string payload (no undo needed: unreachable until
    /// published), then stores the field reference through the log.
    ///
    /// # Errors
    ///
    /// Allocation errors; safety violations.
    pub fn set_str<T>(&mut self, obj: PRef<T>, f: StrFld<T>, s: &str) -> crate::Result<()> {
        let arr = self.heap_internal().alloc_string(s)?;
        self.note_fresh(arr);
        self.set_field_ref(obj.raw(), f.index(), arr)
    }

    /// Logged, persisted primitive-array-field store.
    ///
    /// # Errors
    ///
    /// Safety violations from the heap.
    pub fn set_arr<T>(
        &mut self,
        obj: PRef<T>,
        f: ArrFld<T>,
        value: Option<PArr>,
    ) -> crate::Result<()> {
        let raw = value.map_or(Ref::NULL, PArr::raw);
        self.set_field_ref(obj.raw(), f.index(), raw)
    }

    /// Logged, persisted typed-array element store.
    pub fn arr_set(&mut self, arr: PArr, i: usize, value: u64) {
        self.array_set(arr.raw(), i, value);
    }

    // ---- typed reads inside the transaction ----

    /// Reads a primitive field.
    pub fn get<T, V: PValue>(&self, obj: PRef<T>, f: Fld<T, V>) -> V {
        self.heap().get(obj, f)
    }

    /// Reads a reference field; `None` for null.
    pub fn get_ref<T, U>(&self, obj: PRef<T>, f: RefFld<T, U>) -> Option<PRef<U>> {
        self.heap().get_ref(obj, f)
    }

    /// Reads a string field; `None` for null.
    pub fn get_str<T>(&self, obj: PRef<T>, f: StrFld<T>) -> Option<String> {
        self.heap().get_str(obj, f)
    }

    /// Reads a primitive-array field; `None` for null.
    pub fn get_arr<T>(&self, obj: PRef<T>, f: ArrFld<T>) -> Option<PArr> {
        self.heap().get_arr(obj, f)
    }

    /// Reads element `i` of a typed array.
    pub fn arr_get(&self, arr: PArr, i: usize) -> u64 {
        self.heap().arr_get(arr, i)
    }

    /// Length of a typed array.
    pub fn arr_len(&self, arr: PArr) -> usize {
        self.heap().arr_len(arr)
    }

    /// Fetches a typed root.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] when the root holds a different class.
    pub fn root<T: PObject>(&self, name: &str) -> crate::Result<Option<PRef<T>>> {
        self.heap().root(name)
    }
}

impl HeapHandle {
    // ---- typed session conveniences ----

    /// Registers (and validates) `T`'s schema on the shared heap; see
    /// [`Pjh::register_schema`] for the evolution check.
    ///
    /// # Errors
    ///
    /// Same as [`Pjh::register_schema`].
    pub fn register<T: PObject + 'static>(&self) -> crate::Result<PClass<T>> {
        self.with_mut(|h| h.register::<T>())
    }

    /// Fetches a typed root under the shared read lock.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] when the root holds a different class.
    pub fn root<T: PObject>(&self, name: &str) -> crate::Result<Option<PRef<T>>> {
        self.with(|h| h.root(name))
    }

    /// Publishes a typed root.
    ///
    /// # Errors
    ///
    /// Name-table errors.
    pub fn set_root_typed<T: PObject>(&self, name: &str, r: PRef<T>) -> crate::Result<()> {
        self.with_mut(|h| h.set_root_typed(name, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeapManager, LoadOptions, PjhConfig};
    use espresso_nvm::{NvmConfig, NvmDevice};

    struct Person;
    impl PObject for Person {
        const CLASS_NAME: &'static str = "Person";
        fn schema() -> Schema {
            Schema::builder("Person")
                .u64_field("id")
                .i64_field("delta")
                .bool_field("active")
                .f64_field("score")
                .ref_field::<Person>("friend")
                .str_field("name")
                .array_field("history")
                .build()
        }
    }

    struct Dept;
    impl PObject for Dept {
        const CLASS_NAME: &'static str = "Dept";
        fn schema() -> Schema {
            Schema::builder("Dept").u64_field("id").build()
        }
    }

    fn new_heap() -> (NvmDevice, Pjh) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let heap = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
        (dev, heap)
    }

    #[test]
    fn typed_field_roundtrip_every_value_type() {
        let (_dev, mut h) = new_heap();
        let person = h.register::<Person>().unwrap();
        let id = person.field::<u64>("id").unwrap();
        let delta = person.field::<i64>("delta").unwrap();
        let active = person.field::<bool>("active").unwrap();
        let score = person.field::<f64>("score").unwrap();
        let p = h.alloc::<Person>().unwrap();
        h.put(p, id, 42u64);
        h.put(p, delta, -7i64);
        h.put(p, active, true);
        h.put(p, score, 2.5f64);
        assert_eq!(h.get(p, id), 42);
        assert_eq!(h.get(p, delta), -7);
        assert!(h.get(p, active));
        assert_eq!(h.get(p, score), 2.5);
    }

    #[test]
    fn typed_refs_strings_and_arrays() {
        let (_dev, mut h) = new_heap();
        let person = h.register::<Person>().unwrap();
        let friend = person.ref_field::<Person>("friend").unwrap();
        let name = person.str_field("name").unwrap();
        let history = person.arr_field("history").unwrap();
        let a = h.alloc::<Person>().unwrap();
        let b = h.alloc::<Person>().unwrap();
        assert_eq!(h.get_ref(a, friend), None);
        h.put_ref(a, friend, Some(b)).unwrap();
        assert_eq!(h.get_ref(a, friend), Some(b));
        h.put_str(a, name, "ada lovelace").unwrap();
        assert_eq!(h.get_str(a, name).as_deref(), Some("ada lovelace"));
        assert_eq!(h.get_str(b, name), None);
        let arr = h.alloc_arr(3).unwrap();
        h.array_set(arr.raw(), 1, 99);
        h.put_arr(a, history, Some(arr)).unwrap();
        let back = h.get_arr(a, history).unwrap();
        assert_eq!(h.arr_len(back), 3);
        assert_eq!(h.arr_get(back, 1), 99);
        // Clearing a ref field stores null.
        h.put_ref(a, friend, None).unwrap();
        assert_eq!(h.get_ref(a, friend), None);
    }

    #[test]
    fn typed_txn_allocates_and_aborts_atomically() {
        let (_dev, mut h) = new_heap();
        let person = h.register::<Person>().unwrap();
        let id = person.field::<u64>("id").unwrap();
        let p = h
            .txn(|t| {
                let p = t.alloc::<Person>()?;
                t.set(p, id, 5u64);
                Ok(p)
            })
            .unwrap();
        assert_eq!(h.get(p, id), 5);
        let r: crate::Result<()> = h.txn(|t| {
            t.set(p, id, 99u64);
            Err(PjhError::NotAHeap)
        });
        assert!(r.is_err());
        assert_eq!(h.get(p, id), 5, "aborted typed store rolled back");
    }

    #[test]
    fn typed_roots_check_the_class() {
        let (_dev, mut h) = new_heap();
        h.register::<Person>().unwrap();
        h.register::<Dept>().unwrap();
        let p = h.alloc::<Person>().unwrap();
        h.set_root_typed("boss", p).unwrap();
        assert_eq!(h.root::<Person>("boss").unwrap(), Some(p));
        assert_eq!(h.root::<Person>("ghost").unwrap(), None);
        match h.root::<Dept>("boss") {
            Err(PjhError::SchemaMismatch { class, detail }) => {
                assert_eq!(class, "Dept");
                assert!(detail.contains("Person"), "{detail}");
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        // cast: the verified raw→typed bridge.
        let raw = p.raw();
        assert_eq!(h.cast::<Person>(raw).unwrap(), p);
        assert!(h.cast::<Dept>(raw).is_err());
    }

    #[test]
    fn schema_fingerprint_survives_reload_and_rejects_evolution() {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("app", 4 << 20, PjhConfig::small()).unwrap();
        let person = handle.register::<Person>().unwrap();
        let id = person.field::<u64>("id").unwrap();
        let p = handle
            .txn(|t| {
                let p = t.alloc::<Person>()?;
                t.set(p, id, 31u64);
                Ok(p)
            })
            .unwrap();
        handle.set_root_typed("me", p).unwrap();
        handle.commit_sync().unwrap();
        drop(handle);

        // Same declaration revalidates cleanly after the reload.
        let again = mgr.load("app", LoadOptions::default()).unwrap();
        let person = again.register::<Person>().unwrap();
        let id = person.field::<u64>("id").unwrap();
        let me = again.root::<Person>("me").unwrap().unwrap();
        assert_eq!(again.with(|h| h.get(me, id)), 31);
        drop(again);

        // An incompatible declaration with the SAME word shape (u64→f64:
        // count and ref bitmap unchanged) is caught by the fingerprint.
        struct EvolvedPerson;
        impl PObject for EvolvedPerson {
            const CLASS_NAME: &'static str = "Person";
            fn schema() -> Schema {
                Schema::builder("Person")
                    .f64_field("id") // was u64
                    .i64_field("delta")
                    .bool_field("active")
                    .f64_field("score")
                    .ref_field::<EvolvedPerson>("friend")
                    .str_field("name")
                    .array_field("history")
                    .build()
            }
        }
        let reloaded = mgr.load("app", LoadOptions::default()).unwrap();
        match reloaded.register::<EvolvedPerson>() {
            Err(PjhError::SchemaMismatch { class, .. }) => assert_eq!(class, "Person"),
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }

        // A declaration that also changes the ref bitmap fails the shape
        // check (the pre-existing KlassLayoutMismatch error).
        struct RefPerson;
        impl PObject for RefPerson {
            const CLASS_NAME: &'static str = "Person";
            fn schema() -> Schema {
                Schema::builder("Person")
                    .ref_field::<RefPerson>("id") // prim → ref
                    .i64_field("delta")
                    .bool_field("active")
                    .f64_field("score")
                    .ref_field::<RefPerson>("friend")
                    .str_field("name")
                    .array_field("history")
                    .build()
            }
        }
        assert!(matches!(
            reloaded.register::<RefPerson>(),
            Err(PjhError::KlassLayoutMismatch { .. })
        ));
    }

    #[test]
    fn conflicting_schema_in_one_session_is_rejected() {
        let (_dev, mut h) = new_heap();
        h.register::<Person>().unwrap();
        let conflicting = Schema::builder("Person").u64_field("only").build();
        assert!(matches!(
            h.register_schema(&conflicting),
            Err(PjhError::SchemaMismatch { .. })
        ));
        // Re-registering the identical schema stays cheap and fine.
        h.register::<Person>().unwrap();
        assert!(h.schema_validated("Person"));
    }

    #[test]
    fn typed_accessors_survive_gc_relocation() {
        let (_dev, mut h) = new_heap();
        let person = h.register::<Person>().unwrap();
        let id = person.field::<u64>("id").unwrap();
        let friend = person.ref_field::<Person>("friend").unwrap();
        let name = person.str_field("name").unwrap();
        // Garbage + a live typed chain.
        for _ in 0..300 {
            h.alloc::<Person>().unwrap();
        }
        let a = h.alloc::<Person>().unwrap();
        let b = h.alloc::<Person>().unwrap();
        h.put(a, id, 1u64);
        h.put(b, id, 2u64);
        h.put_ref(a, friend, Some(b)).unwrap();
        h.put_str(b, name, "bee").unwrap();
        h.flush(a);
        h.flush(b);
        h.set_root_typed("chain", a).unwrap();
        h.gc_full(&[]).unwrap();
        // Old PRefs are stale after compaction — re-enter via the root.
        let a = h.root::<Person>("chain").unwrap().unwrap();
        assert_eq!(h.get(a, id), 1);
        let b = h.get_ref(a, friend).unwrap();
        assert_eq!(h.get(b, id), 2);
        assert_eq!(h.get_str(b, name).as_deref(), Some("bee"));
        h.verify_integrity().unwrap();
    }

    #[test]
    fn string_roundtrip_odd_lengths() {
        let (_dev, mut h) = new_heap();
        for s in [
            "",
            "a",
            "1234567",
            "12345678",
            "123456789",
            "日本語テキスト",
        ] {
            let arr = h.alloc_string(s).unwrap();
            assert_eq!(h.read_string(arr), s);
        }
    }

    #[test]
    fn dynamic_schema_registration_for_metadata_driven_callers() {
        // The PJO provider path: schemas built at runtime from entity
        // metadata, no marker type.
        let (_dev, mut h) = new_heap();
        let schema = Schema::builder("DBorder")
            .i64_field("id")
            .str_field("label")
            .build();
        let kid = h.register_schema(&schema).unwrap();
        assert_eq!(h.lookup_klass("DBorder"), Some(kid));
        assert_eq!(h.register_schema(&schema).unwrap(), kid, "idempotent");
    }
}
