//! Property suite for the v3 allocation path (per-size-class free lists
//! over dead object slots). The lists are DRAM-only and *derived*: a slot
//! is reusable iff its image's mark timestamp predates its region's
//! persisted scan timestamp. Three things must hold under any
//! interleaving of alloc / free / gc / reload:
//!
//! (a) rebuilding the lists from the persisted region summaries on load
//!     reproduces the pre-reload reuse behavior exactly;
//! (b) a reused slot never aliases an object some live reference — in
//!     particular a pinned read session's pre-GC reference — can still
//!     reach;
//! (c) a crash anywhere inside a recoverable collection leaves a heap
//!     whose rebuilt free lists are safe: possibly empty, never dangling
//!     into live data.

use espresso_core::{GcKind, HeapManager, LoadOptions, Pjh, PjhConfig, PjhError};
use espresso_nvm::{NvmConfig, NvmDevice};
use espresso_object::{FieldDesc, KlassId, Ref};
use proptest::prelude::*;

fn new_heap() -> (NvmDevice, Pjh) {
    let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
    let heap = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
    (dev, heap)
}

fn node(h: &mut Pjh) -> KlassId {
    h.register_instance(
        "Node",
        vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
    )
    .unwrap()
}

/// Builds a rooted chain interleaved with garbage, shaped by the inputs.
fn build_chain(h: &mut Pjh, k: KlassId, live: usize, garbage_every: usize) {
    let mut head = Ref::NULL;
    for i in 0..live {
        if garbage_every > 0 && i % garbage_every == 0 {
            let g = h.alloc_instance(k).unwrap();
            h.set_field(g, 0, 0xDEAD);
        }
        let o = h.alloc_instance(k).unwrap();
        h.set_field(o, 0, i as u64);
        h.set_field_ref(o, 1, head).unwrap();
        h.flush_object(o);
        head = o;
    }
    h.set_root("head", head).unwrap();
}

/// Walks the chain asserting both its length and every payload.
fn assert_chain_intact(h: &Pjh, live: usize) {
    let mut cur = h.get_root("head").unwrap_or(Ref::NULL);
    let mut expect = live;
    while !cur.is_null() {
        assert!(expect > 0, "chain longer than built");
        expect -= 1;
        assert_eq!(h.field(cur, 0), expect as u64, "chain payload clobbered");
        cur = h.field_ref(cur, 1);
    }
    assert_eq!(expect, 0, "chain shorter than built");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// (a) Run a random alloc/free/gc interleaving, finish with a
    /// collection (so summaries are fresh), then reload from the
    /// persisted image. The rebuilt free lists must match the surviving
    /// in-memory lists slot for slot — proven the strong way: identical
    /// subsequent allocation sequences land at identical addresses on
    /// both heaps.
    #[test]
    fn rebuild_from_summaries_matches_pre_reload_reuse(
        ops in proptest::collection::vec(0u8..8, 30..120),
        post in proptest::collection::vec(1usize..12, 5..20),
    ) {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        let ka = h.register_prim_array();
        let nslots = 8usize;
        for (step, &op) in ops.iter().enumerate() {
            let i = (step * 7 + op as usize) % nslots;
            let name = format!("s{i}");
            match op {
                0..=3 => {
                    // Replace slot i with a fresh instance; the old
                    // occupant becomes garbage.
                    let o = h.alloc_instance(k).unwrap();
                    h.set_field(o, 0, step as u64);
                    h.flush_object(o);
                    h.set_root(&name, o).unwrap();
                }
                4 | 5 => {
                    let o = h.alloc_array(ka, 1 + step % 9).unwrap();
                    h.set_root(&name, o).unwrap();
                }
                6 => {
                    h.remove_root(&name);
                }
                _ => {
                    h.gc(&[]).unwrap();
                }
            }
        }
        h.gc(&[]).unwrap(); // fresh summaries for the rebuild

        let image = dev.snapshot_persisted();
        let dev2 = NvmDevice::new(NvmConfig::with_size(dev.size()));
        dev2.write_bytes(0, &image);
        dev2.persist(0, image.len());
        let (mut h2, _) = Pjh::load(dev2, LoadOptions::default()).unwrap();
        let k2 = node(&mut h2);
        let ka2 = h2.register_prim_array();

        let s1 = h.heap_stats();
        let s2 = h2.heap_stats();
        prop_assert_eq!(s2.free_list_slots, s1.free_list_slots);
        prop_assert_eq!(s2.free_list_words, s1.free_list_words);
        prop_assert_eq!(s2.free_list_by_class, s1.free_list_by_class);

        for (j, &len) in post.iter().enumerate() {
            let a1 = if j % 3 == 0 {
                h.alloc_instance(k).unwrap()
            } else {
                h.alloc_array(ka, len).unwrap()
            };
            let a2 = if j % 3 == 0 {
                h2.alloc_instance(k2).unwrap()
            } else {
                h2.alloc_array(ka2, len).unwrap()
            };
            prop_assert_eq!(
                a1.addr(), a2.addr(),
                "reuse diverged after reload at allocation {}", j
            );
        }
        h2.verify_integrity().unwrap();
    }

    /// (b) A pinned read session's pre-GC references never observe a
    /// reused slot: harvested slots stay parked behind the session's
    /// epoch, churn allocations come from the bump path meanwhile, and
    /// only after the pin drops do the slots re-enter circulation.
    #[test]
    fn reuse_never_aliases_pinned_readers(
        dead_count in 4usize..32,
        churn in 4usize..32,
    ) {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("p", 1 << 20, PjhConfig::small()).unwrap();
        let (k, garbage) = a
            .with_mut(|h| {
                let k = h.register_instance("T", vec![FieldDesc::prim("x")])?;
                let live = h.alloc_instance(k)?;
                h.set_field(live, 0, 7);
                h.flush_object(live);
                h.set_root("live", live)?;
                h.gc_full(&[])?; // arm incremental tracking
                let mut garbage = Vec::new();
                for i in 0..dead_count as u64 {
                    let g = h.alloc_instance(k)?;
                    h.set_field(g, 0, 1000 + i);
                    h.flush_object(g);
                    garbage.push(g);
                }
                Ok::<_, PjhError>((k, garbage))
            })
            .unwrap();

        // Pin, then let an incremental cycle prove the garbage dead.
        let session = a.read();
        let report = a.with_mut(|h| h.gc(&[])).unwrap();
        prop_assert_eq!(report.kind, GcKind::Incremental);
        let stats = a.heap_stats();
        prop_assert_eq!(stats.free_list_slots, 0, "slots ready under a pin");
        prop_assert!(stats.deferred_slots >= dead_count, "slots not parked");

        // Churn while pinned: every allocation must leave the parked
        // slots untouched.
        a.with_mut(|h| {
            for _ in 0..churn {
                h.alloc_instance(k).unwrap();
            }
        });
        prop_assert_eq!(a.heap_stats().reused_slots, 0);
        for (i, g) in garbage.iter().enumerate() {
            prop_assert_eq!(
                session.field(*g, 0),
                1000 + i as u64,
                "a reused slot aliased a pinned reader's object"
            );
        }

        // Unpin: the parked slots drain and the very next same-class
        // allocation reuses one.
        drop(session);
        a.with_mut(|h| h.alloc_instance(k)).unwrap();
        prop_assert_eq!(a.heap_stats().reused_slots, 1);
    }

    /// (c) Crash at an arbitrary flush inside a recoverable full
    /// collection. Whatever recovery finds, the rebuilt free lists must
    /// be safe: draining them (and more) with fresh allocations leaves
    /// every live object bit-identical.
    #[test]
    fn crash_mid_gc_recovers_safe_free_lists(
        live in 20usize..120,
        garbage_every in 1usize..4,
        crash_frac in 0u32..100,
    ) {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        build_chain(&mut h, k, live, garbage_every);
        h.gc(&[]).unwrap();
        for _ in 0..80 {
            h.alloc_instance(k).unwrap(); // garbage for the crashed cycle
        }
        // Dry-run the same collection on a copy to learn its flush count.
        let total_flushes = {
            let probe = NvmDevice::new(NvmConfig::with_size(dev.size()));
            let image = dev.snapshot_persisted();
            probe.write_bytes(0, &image);
            probe.persist(0, image.len());
            probe.reset_stats();
            let (mut hp, _) = Pjh::load(probe.clone(), LoadOptions::default()).unwrap();
            hp.gc_full(&[]).unwrap();
            probe.stats().line_flushes
        };
        prop_assert!(total_flushes > 0);
        dev.reset_stats();
        dev.schedule_crash_after_line_flushes((total_flushes * crash_frac as u64) / 100);
        h.gc_full(&[]).unwrap();
        dev.recover();

        let (mut h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let k2 = node(&mut h2);
        h2.verify_integrity().unwrap();
        let drain = h2.heap_stats().free_list_slots + 50;
        for _ in 0..drain {
            match h2.alloc_instance(k2) {
                Ok(o) => {
                    h2.set_field(o, 0, 0xFEED);
                    h2.flush_object(o);
                }
                Err(PjhError::HeapFull { .. }) => break,
                Err(e) => panic!("unexpected allocation error: {e}"),
            }
        }
        assert_chain_intact(&h2, live);
        h2.verify_integrity().unwrap();
    }
}
