//! Property suite for the persisted per-region summaries: whatever the
//! workload — and wherever a crash lands inside a recoverable collection —
//! `Pjh::load` must leave the summary table consistent with a from-scratch
//! reachability scan of the recovered heap.

use espresso_core::{GcKind, LoadOptions, Pjh, PjhConfig};
use espresso_nvm::{NvmConfig, NvmDevice};
use espresso_object::{FieldDesc, KlassId, Ref};
use proptest::prelude::*;

fn new_heap() -> (NvmDevice, Pjh) {
    let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
    let heap = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
    (dev, heap)
}

fn node(h: &mut Pjh) -> KlassId {
    h.register_instance(
        "Node",
        vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
    )
    .unwrap()
}

/// Builds a rooted chain interleaved with garbage, shaped by the inputs.
fn build_workload(h: &mut Pjh, k: KlassId, live: usize, garbage_every: usize) {
    let mut head = Ref::NULL;
    for i in 0..live {
        if garbage_every > 0 && i % garbage_every == 0 {
            let g = h.alloc_instance(k).unwrap();
            h.set_field(g, 0, 0xDEAD);
        }
        let o = h.alloc_instance(k).unwrap();
        h.set_field(o, 0, i as u64);
        h.set_field_ref(o, 1, head).unwrap();
        h.flush_object(o);
        head = o;
    }
    h.set_root("head", head).unwrap();
}

fn chain_len(h: &Pjh) -> usize {
    let mut n = 0;
    let mut cur = h.get_root("head").unwrap_or(Ref::NULL);
    while !cur.is_null() {
        n += 1;
        cur = h.field_ref(cur, 1);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Crash at an arbitrary flush during a full collection of a heap
    /// that already has valid summaries. If load finds the crashed
    /// collection (the in-progress flag was durable), recovery must
    /// rebuild summaries that equal a fresh reachability scan; if the
    /// crash hit before the collection's first durable effect, the
    /// previous table must still be intact (the torn-write guard).
    #[test]
    fn summaries_survive_crash_mid_gc(
        live in 20usize..200,
        garbage_every in 1usize..5,
        crash_frac in 0u32..100,
    ) {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        build_workload(&mut h, k, live, garbage_every);
        h.gc(&[]).unwrap(); // first collection: summaries become valid
        for _ in 0..100 {
            h.alloc_instance(k).unwrap(); // garbage for the second cycle
        }
        let before = h.region_summaries();
        // Dry-run the same (full) collection on a copy of the image to
        // learn its flush count.
        let total_flushes = {
            let probe = NvmDevice::new(NvmConfig::with_size(dev.size()));
            let image = dev.snapshot_persisted();
            probe.write_bytes(0, &image);
            probe.persist(0, image.len());
            probe.reset_stats();
            let (mut hp, _) = Pjh::load(probe.clone(), LoadOptions::default()).unwrap();
            hp.gc_full(&[]).unwrap();
            probe.stats().line_flushes
        };
        prop_assert!(total_flushes > 0);
        let at = (total_flushes * crash_frac as u64) / 100;
        dev.reset_stats();
        dev.schedule_crash_after_line_flushes(at);
        h.gc_full(&[]).unwrap();
        dev.recover();

        let (h2, report) = Pjh::load(dev, LoadOptions::default()).unwrap();
        if report.recovered_gc {
            prop_assert_eq!(h2.region_summaries(), h2.scan_region_summaries());
        } else {
            prop_assert_eq!(h2.region_summaries(), before);
        }
        prop_assert_eq!(chain_len(&h2), live);
        h2.verify_integrity().unwrap();
    }

    /// A clean (crash-free) full collection leaves summaries that agree
    /// with a from-scratch scan, survive reload verbatim, and add up to
    /// the collector's own live count.
    #[test]
    fn summaries_match_scan_after_clean_gc(
        live in 10usize..250,
        garbage_every in 1usize..6,
    ) {
        let (dev, mut h) = new_heap();
        let k = node(&mut h);
        build_workload(&mut h, k, live, garbage_every);
        let report = h.gc(&[]).unwrap();
        prop_assert_eq!(report.kind, GcKind::Full);
        let summaries = h.region_summaries();
        prop_assert_eq!(summaries.clone(), h.scan_region_summaries());
        let total: usize = summaries.iter().map(|s| s.live_objects as usize).sum();
        prop_assert_eq!(total, report.live_objects);

        dev.crash();
        let (h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        prop_assert_eq!(h2.region_summaries(), summaries);
    }

    /// Incremental cycles keep summaries conservative: every region's
    /// recorded liveness covers at least the freshly-scanned liveness, and
    /// regions the scan proves non-empty are never recorded empty.
    #[test]
    fn incremental_summaries_stay_conservative(
        live in 50usize..200,
        churn in 1usize..4,
    ) {
        let (_dev, mut h) = new_heap();
        let k = node(&mut h);
        build_workload(&mut h, k, live, 3);
        h.gc(&[]).unwrap();
        for _ in 0..churn {
            for _ in 0..120 {
                h.alloc_instance(k).unwrap();
            }
            let report = h.gc(&[]).unwrap();
            prop_assert_eq!(report.kind, GcKind::Incremental);
            let persisted = h.region_summaries();
            let scanned = h.scan_region_summaries();
            for (p, s) in persisted.iter().zip(&scanned) {
                prop_assert!(
                    p.live_words >= s.live_words && p.live_objects >= s.live_objects,
                    "summary under-counts a region: persisted {p:?} vs scan {s:?}"
                );
            }
            prop_assert_eq!(chain_len(&h), live);
            h.verify_integrity().unwrap();
        }
    }
}
