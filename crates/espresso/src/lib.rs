//! Espresso: persistent heaps and persistent objects for a managed
//! runtime on non-volatile memory.
//!
//! A from-scratch Rust reproduction of *"Espresso: Brewing Java For More
//! Non-Volatility with Non-volatile Memory"* (Wu et al., ASPLOS 2018).
//! This facade re-exports every crate in the workspace:
//!
//! | Module | Crate | Paper role |
//! |---|---|---|
//! | [`nvm`] | `espresso-nvm` | simulated NVDIMM with crash injection |
//! | [`object`] | `espresso-object` | object headers, Klass metadata, tagged refs |
//! | [`runtime`] | `espresso-runtime` | volatile generational heap (PSHeap) |
//! | [`heap`] | `espresso-core` | **Persistent Java Heap** (§3–§4): PLAB allocation, incremental region GC |
//! | [`vm`] | `espresso-vm` | unified VM, `pnew`, alias Klasses |
//! | [`collections`] | `espresso-collections` | persistent collections atop PJH |
//! | [`pcj`] | `espresso-pcj` | PCJ baseline (off-heap, refcount GC) |
//! | [`minidb`] | `espresso-minidb` | H2-style embedded SQL database |
//! | [`jpa`] | `espresso-jpa` | JPA/DataNucleus baseline |
//! | [`pjo`] | `espresso-pjo` | **Persistent Java Object** provider (§5) |
//!
//! # Quickstart
//!
//! ```
//! use espresso::heap::{HeapManager, LoadOptions, PjhConfig};
//! use espresso::object::FieldDesc;
//!
//! # fn main() -> Result<(), espresso::heap::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let mut heap = mgr.create_heap("jimmy", 4 << 20, PjhConfig::small())?;
//! let person = heap.register_instance(
//!     "Person",
//!     vec![FieldDesc::prim("id"), FieldDesc::reference("next")],
//! )?;
//! let p = heap.alloc_instance(person)?; // pnew Person(...)
//! heap.set_field(p, 0, 7);
//! heap.flush_object(p);
//! heap.set_root("jimmy_info", p)?;
//! mgr.save("jimmy", &heap)?;
//!
//! // A later process:
//! let (heap, _) = mgr.load_heap("jimmy", LoadOptions::default())?;
//! let p = heap.get_root("jimmy_info").expect("survived");
//! assert_eq!(heap.field(p, 0), 7);
//! # Ok(())
//! # }
//! ```

pub use espresso_collections as collections;
pub use espresso_core as heap;
pub use espresso_jpa as jpa;
pub use espresso_minidb as minidb;
pub use espresso_nvm as nvm;
pub use espresso_object as object;
pub use espresso_pcj as pcj;
pub use espresso_pjo as pjo;
pub use espresso_runtime as runtime;
pub use espresso_vm as vm;
