//! Espresso: persistent heaps and persistent objects for a managed
//! runtime on non-volatile memory.
//!
//! A from-scratch Rust reproduction of *"Espresso: Brewing Java For More
//! Non-Volatility with Non-volatile Memory"* (Wu et al., ASPLOS 2018).
//! This facade re-exports every crate in the workspace:
//!
//! | Module | Crate | Paper role |
//! |---|---|---|
//! | [`nvm`] | `espresso-nvm` | simulated NVDIMM with crash injection |
//! | [`object`] | `espresso-object` | object headers, Klass metadata, tagged refs |
//! | [`runtime`] | `espresso-runtime` | volatile generational heap (PSHeap) |
//! | [`heap`] | `espresso-core` | **Persistent Java Heap** (§3–§4): PLAB allocation, incremental region GC |
//! | [`index`] | `espresso-index` | persistent typed secondary indexes (CoW B-tree) with transactional range scans |
//! | [`vm`] | `espresso-vm` | unified VM, `pnew`, alias Klasses |
//! | [`collections`] | `espresso-collections` | persistent collections atop PJH |
//! | [`pcj`] | `espresso-pcj` | PCJ baseline (off-heap, refcount GC) |
//! | [`minidb`] | `espresso-minidb` | H2-style embedded SQL database |
//! | [`jpa`] | `espresso-jpa` | JPA/DataNucleus baseline |
//! | [`pjo`] | `espresso-pjo` | **Persistent Java Object** provider (§5) |
//!
//! Two workspace crates sit beside the facade rather than behind it:
//! `espresso-server` (the networked front end — see `docs/PROTOCOL.md`
//! and `docs/ARCHITECTURE.md`) and `espresso-bench` (figure
//! regeneration and the committed CI baseline).
//!
//! # Quickstart — the typed object API
//!
//! The heap API is session-based: a [`heap::HeapManager`] maps names to
//! images and hands out shared live [`heap::HeapHandle`]s (loading the
//! same name twice yields the same instance). `commit()` is the explicit
//! commit point and `txn(|t| ...)` runs undo-logged ACID transactions
//! that abort on error or panic. On top of the sessions sits the
//! **typed** layer — declared schemas, `PRef<T>` handles, typed roots —
//! which is the surface applications program against:
//!
//! ```
//! use espresso::heap::{HeapManager, LoadOptions, PObject, PjhConfig, Schema};
//!
//! struct Person; // @Persistent class Person { long id; Person next; }
//! impl PObject for Person {
//!     const CLASS_NAME: &'static str = "Person";
//!     fn schema() -> Schema {
//!         Schema::builder("Person")
//!             .u64_field("id")
//!             .ref_field::<Person>("next")
//!             .build()
//!     }
//! }
//!
//! # fn main() -> Result<(), espresso::heap::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let jimmy = mgr.create("jimmy", 4 << 20, PjhConfig::small())?;
//! // Registration validates the declaration against the heap's persisted
//! // Klass table and schema fingerprint — here and after every reload.
//! let person = jimmy.register::<Person>()?;
//! let id = person.field::<u64>("id")?;   // name → offset, resolved once
//! let next = person.ref_field::<Person>("next")?;
//!
//! let p = jimmy.txn(|t| {
//!     let p = t.alloc::<Person>()?;      // pnew Person(...)
//!     t.set(p, id, 7u64);                // logged + persisted, type-checked
//!     t.set_ref(p, next, None)?;         // only a PRef<Person> fits here
//!     Ok(p)
//! })?;
//! jimmy.set_root_typed("jimmy_info", p)?;
//! jimmy.commit_sync()?; // seal the epoch AND wait for the image sync
//!
//! // A later process (drop the session first, then load the image):
//! drop(jimmy);
//! let jimmy = mgr.load("jimmy", LoadOptions::default())?;
//! let person = jimmy.register::<Person>()?; // revalidates the schema
//! let id = person.field::<u64>("id")?;
//! // A read-only session: lock-free — it pins an epoch and reads
//! // through a published metadata replica instead of taking the
//! // writer lock, so readers never serialize behind writers.
//! let heap = jimmy.read();
//! let p = heap.root::<Person>("jimmy_info")?.expect("survived");
//! assert_eq!(heap.get(p, id), 7);
//! # Ok(())
//! # }
//! ```
//!
//! A schema whose field names or declared types drift from what the heap
//! persisted is rejected at registration with
//! `PjhError::SchemaMismatch` — including evolutions the reference
//! bitmap cannot see, like `u64` → `f64`. The word-granular raw surface
//! (`Ref`, `field(r, index)`, `set_field`) remains available as the
//! documented low-level escape hatch; `PRef::raw()` and `Pjh::cast`
//! bridge the two worlds. See the README's "Raw vs typed" table.
//!
//! # Read sessions are lock-free
//!
//! `handle.read()` / `handle.with(..)` never take the heap's writer
//! lock. A [`heap::ReadSession`] pins the heap's epoch clock and holds
//! an `Arc` to the *published replica*: a snapshot of the heap's DRAM
//! metadata (klass tables, roots, region maps) that a closing write
//! section republishes whenever reader-visible metadata changed. The
//! pin buys **memory safety, not snapshot isolation** — object data
//! reads go to the shared device and observe committed writes live,
//! while the metadata view stays frozen at session open. While any
//! session pinned at or before a collection's epoch is open, the GC
//! defers reclaiming the regions it evacuated: stale references read
//! the original, well-formed copies, and allocation pressure surfaces
//! as `PjhError::HeapFull` until the pins drain (never a dangling
//! read). See the README's "Lock-free read sessions" section.
//!
//! # The commit pipeline
//!
//! Commits are asynchronous by default. `handle.commit()` **seals an
//! epoch**: it snapshots every cache line persisted since the previous
//! commit (copying the bytes, so later mutations — even of the same
//! lines — cannot leak in) and hands the snapshot to the heap's
//! background flush pipeline, returning a [`heap::CommitTicket`]
//! immediately. `ticket.wait()` — or the `handle.commit_sync()`
//! shorthand — is the durability barrier: when it returns, the image
//! file holds at least that sealed epoch.
//!
//! The guarantees:
//!
//! * **Epochs apply in order.** The image file only ever steps from one
//!   sealed epoch to the next; a crash of the pipeline between seal and
//!   apply loses exactly the unapplied epochs, and reloading recovers
//!   the last applied one (the discarded epochs' lines are restored so
//!   a later commit re-captures them — nothing is silently lost).
//! * **A dropped ticket still commits.** The pipeline drains when the
//!   last handle drops; tickets exist so callers *can* wait, not so they
//!   must.
//! * **`ShardedHeap::commit` fans out.** Each shard seals its own epoch
//!   on its own pipeline; the returned `ShardedCommitTicket` is the
//!   all-shards barrier, and `ShardedHeap::gc` likewise collects shards
//!   on parallel scoped threads.
//! * **Crash injection for tests:** `handle.set_flush_paused(true)`
//!   holds applies, `handle.abort_pending_commits()` discards them —
//!   the deterministic "died between seal and apply" window.
//!
//! # Migration from the pre-session API
//!
//! The pre-session shims (`create_heap`, `load_heap`, `save`) carried
//! `#[deprecated]` markers for one release; both the shims and the
//! markers are gone now, so code still calling them fails to compile
//! rather than warning. The replacements:
//!
//! | Old (removed) | New |
//! |---|---|
//! | `mgr.create_heap(name, size, cfg)` → `Pjh` | `mgr.create(name, size, cfg)` → [`heap::HeapHandle`] |
//! | `mgr.load_heap(name, opts)` → `(Pjh, report)` | `mgr.load(name, opts)` → handle (`handle.load_report()`) |
//! | `mgr.save(name, &heap)` (whole image) | `handle.commit()` → ticket, or `handle.commit_sync()` to block |
//! | `heap.set_field(..)` on an owned `Pjh` | `handle.with_mut(\|h\| ..)`, or `handle.txn(\|t\| ..)` for ACID |
//! | `PStore::new(pjh)` owning the heap | `PStore::open(&handle)` sharing it |
//! | one `Pjh` per workload | [`heap::ShardedHeap`] routes keys across N instances |

pub use espresso_collections as collections;
pub use espresso_core as heap;
pub use espresso_index as index;
pub use espresso_jpa as jpa;
pub use espresso_minidb as minidb;
pub use espresso_nvm as nvm;
pub use espresso_object as object;
pub use espresso_pcj as pcj;
pub use espresso_pjo as pjo;
pub use espresso_runtime as runtime;
pub use espresso_vm as vm;
