//! [`IndexedHeap`]: a per-class façade that keeps every registered index
//! in sync with object mutations automatically, inside one transaction.

use espresso_core::{HeapHandle, HeapTxn, PjhError, ReadSession};
use espresso_object::{Fld, PClass, PObject, PRef, StrFld};

use crate::tree::Index;
use crate::Key;

/// A heap handle specialised for one object class `T`, carrying the
/// class's registered schema and its set of secondary indexes.
///
/// Mutations issued through this type (`create_object`, `put_*`,
/// `remove_object`) bundle the field write and all affected index
/// maintenance into **one** transaction, so an abort or crash rolls back
/// both together and no path can observe an object whose indexed field
/// disagrees with the index. On [`PjhError::HeapFull`] the transaction is
/// retried once after a full collection.
///
/// Objects mutated through raw [`espresso_core::Pjh`] APIs bypass index
/// maintenance; mix the two styles only for non-indexed fields.
pub struct IndexedHeap<T: PObject> {
    handle: HeapHandle,
    class: PClass<T>,
    indexes: Vec<Index<T>>,
}

impl<T: PObject + 'static> IndexedHeap<T> {
    /// Wraps `handle`, registering `T`'s schema (idempotent).
    ///
    /// # Errors
    ///
    /// Schema registration errors ([`PjhError::SchemaMismatch`] on
    /// fingerprint drift).
    pub fn open(handle: HeapHandle) -> espresso_core::Result<IndexedHeap<T>> {
        let class = handle.with_mut(|h| h.register::<T>())?;
        Ok(IndexedHeap {
            handle,
            class,
            indexes: Vec::new(),
        })
    }

    /// The underlying heap handle.
    pub fn handle(&self) -> &HeapHandle {
        &self.handle
    }

    /// The registered class, for resolving field handles.
    pub fn class(&self) -> &PClass<T> {
        &self.class
    }

    /// A pinned lock-free read session (see
    /// [`HeapHandle::read`]).
    pub fn read(&self) -> ReadSession {
        self.handle.read()
    }

    /// The indexes this façade maintains.
    pub fn indexes(&self) -> &[Index<T>] {
        &self.indexes
    }

    /// Looks up a maintained index by name.
    pub fn index(&self, name: &str) -> Option<&Index<T>> {
        self.indexes.iter().find(|i| i.name() == name)
    }

    /// Creates a new index over `field` and backfills it from every live
    /// instance of `T` already in the heap (a full collection runs first
    /// so dead-but-uncollected objects are not resurrected into the
    /// index). The index is maintained by this façade from then on.
    ///
    /// # Errors
    ///
    /// As [`Index::create`], plus collection and allocation errors during
    /// the backfill.
    pub fn create_index(&mut self, name: &str, field: &str) -> espresso_core::Result<()> {
        let idx = self.handle.with_mut(|h| {
            let idx = Index::<T>::create(h, name, field)?;
            h.gc_full(&[])?;
            let entries = idx.heap_walk(h);
            // Backfill in bounded batches so no transaction outgrows the
            // undo log.
            for chunk in entries.chunks(32) {
                h.txn(|t| {
                    for (k, r) in chunk {
                        idx.insert(t, k, PRef::from_raw_unchecked(*r))?;
                    }
                    Ok(())
                })?;
            }
            Ok::<_, PjhError>(idx)
        })?;
        self.indexes.push(idx);
        Ok(())
    }

    /// Opens an existing index by name and maintains it from then on.
    ///
    /// # Errors
    ///
    /// As [`Index::open`].
    pub fn open_index(&mut self, name: &str) -> espresso_core::Result<()> {
        let idx = self.handle.with_mut(|h| Index::<T>::open(h, name))?;
        self.indexes.push(idx);
        Ok(())
    }

    /// Runs `f` in a transaction, retrying once after a full collection
    /// on [`PjhError::HeapFull`].
    fn txn_retry<R>(
        &self,
        f: impl Fn(&mut HeapTxn<'_>) -> espresso_core::Result<R>,
    ) -> espresso_core::Result<R> {
        match self.handle.txn(&f) {
            Err(PjhError::HeapFull { .. }) => {
                self.handle.with_mut(|h| h.gc_full(&[]))?;
                self.handle.txn(&f)
            }
            r => r,
        }
    }

    /// Allocates a `T`, runs `setup` to populate it, then inserts it into
    /// every maintained index — all in one transaction. Integer fields
    /// `setup` leaves untouched are indexed at their default value `0`;
    /// an unset `str` key field leaves the object out of that index.
    ///
    /// The returned reference is kept live by the index entries (and by
    /// whatever links `setup` created); it is invalidated by the next
    /// collection, so re-find objects through queries, not cached refs.
    ///
    /// # Errors
    ///
    /// Allocation errors, or whatever `setup` returns.
    pub fn create_object(
        &self,
        setup: impl Fn(&mut HeapTxn<'_>, PRef<T>) -> espresso_core::Result<()>,
    ) -> espresso_core::Result<PRef<T>> {
        self.txn_retry(|t| {
            let obj = t.alloc::<T>()?;
            setup(t, obj)?;
            for idx in &self.indexes {
                if let Some(k) = idx.key_of(t.heap(), obj) {
                    idx.insert(t, &k, obj)?;
                }
            }
            Ok(obj)
        })
    }

    /// Removes `obj` from every maintained index (the object itself
    /// becomes garbage once nothing else references it).
    ///
    /// # Errors
    ///
    /// Index-maintenance allocation errors.
    pub fn remove_object(&self, obj: PRef<T>) -> espresso_core::Result<()> {
        self.txn_retry(|t| {
            for idx in &self.indexes {
                if let Some(k) = idx.key_of(t.heap(), obj) {
                    idx.remove(t, &k, obj)?;
                }
            }
            Ok(())
        })
    }

    fn put_keyed(
        &self,
        obj: PRef<T>,
        field_index: usize,
        new_key: &Key,
        apply: impl Fn(&mut HeapTxn<'_>) -> espresso_core::Result<()>,
    ) -> espresso_core::Result<()> {
        self.txn_retry(|t| {
            for idx in self.indexes.iter().filter(|i| i.field_index == field_index) {
                if let Some(old) = idx.key_of(t.heap(), obj) {
                    idx.remove(t, &old, obj)?;
                }
            }
            apply(t)?;
            for idx in self.indexes.iter().filter(|i| i.field_index == field_index) {
                idx.insert(t, new_key, obj)?;
            }
            Ok(())
        })
    }

    /// Writes a `u64` field and refreshes every index over it, in one
    /// transaction.
    ///
    /// # Errors
    ///
    /// Index-maintenance allocation errors.
    pub fn put_u64(&self, obj: PRef<T>, f: Fld<T, u64>, v: u64) -> espresso_core::Result<()> {
        self.put_keyed(obj, f.index(), &Key::U64(v), |t| {
            t.set(obj, f, v);
            Ok(())
        })
    }

    /// Writes an `i64` field and refreshes every index over it, in one
    /// transaction.
    ///
    /// # Errors
    ///
    /// Index-maintenance allocation errors.
    pub fn put_i64(&self, obj: PRef<T>, f: Fld<T, i64>, v: i64) -> espresso_core::Result<()> {
        self.put_keyed(obj, f.index(), &Key::I64(v), |t| {
            t.set(obj, f, v);
            Ok(())
        })
    }

    /// Writes a `str` field and refreshes every index over it, in one
    /// transaction.
    ///
    /// # Errors
    ///
    /// String-allocation and index-maintenance errors.
    pub fn put_str(&self, obj: PRef<T>, f: StrFld<T>, s: &str) -> espresso_core::Result<()> {
        self.put_keyed(obj, f.index(), &Key::Str(s.to_string()), |t| {
            t.set_str(obj, f, s)
        })
    }
}
