//! Persistent typed secondary indexes over PJH objects.
//!
//! The typed object layer can find an object by root name or by chasing
//! references; anything else is a full heap walk. This crate adds the
//! missing access path: an order-[`ORDER`]
//! **copy-on-write B-tree** stored entirely as schema-registered PJH
//! objects, keyed by one declared typed field (`u64`, `i64`, or `str`) of
//! the indexed class. Because nodes are ordinary typed objects they ride
//! every existing mechanism for free: schema fingerprints catch layout
//! drift, the GC traces and relocates them, and the undo log plus the
//! commit pipeline give them crash atomicity.
//!
//! # Design: copy-on-write paths, one logged publication store
//!
//! Mutating a B-tree in place would fight two other subsystems at once.
//! The undo log has a fixed capacity, and a node split touches `O(ORDER ×
//! height)` words — logging each would overflow it. Worse, lock-free read
//! sessions ([`espresso_core::HeapHandle::read`]) observe live heap words
//! without any lock, so an in-place split could expose a torn node.
//!
//! Instead every [`Index::insert`] / [`Index::remove`] copies the
//! root-to-leaf path it touches into **fresh** nodes (built with
//! [`espresso_core::HeapTxn::init_field`]-family stores — unlogged,
//! because transaction-fresh objects are unreachable until published,
//! then persisted with `flush_object` before publication) and publishes
//! the whole new tree with **one logged reference store** that swaps the
//! root pointer inside the index's metadata object. The outcomes:
//!
//! * **Abort / crash mid-split**: the undo log restores the old root
//!   pointer; the half-built path is unreachable garbage the next GC
//!   reclaims. The tree is never observable in a partial state.
//! * **Concurrent pinned readers** keep traversing the *old* root: every
//!   node reachable from it is immutable, and GC defers reclaiming
//!   evacuated space until pinned epochs drain.
//! * **Same-transaction maintenance**: index updates issue ordinary
//!   logged stores, so wrapping an object-field write and its index
//!   update in one [`espresso_core::Pjh::txn`] scope makes them atomic
//!   together — an aborted transaction rolls back both.
//!
//! Nodes are allocated at fixed sizes (one key array, one slot array per
//! node, always full [`node::ORDER`] capacity), so the allocator's
//! size-class free lists recycle dead CoW paths without fragmentation.
//!
//! Deletion rebuilds the touched path without rebalancing (no merge or
//! steal): nodes may run sparse under adversarial delete patterns, an
//! empty leaf is unlinked from its parent, and a one-child internal node
//! collapses into that child. Lookup correctness never depends on
//! minimum fill, so this trades bounded worst-case occupancy for a much
//! simpler (and smaller) publication path.
//!
//! # Keys and duplicates
//!
//! Keys are encoded into one order-preserving `u64` word per entry:
//! identity for `u64`, sign-bit flip for `i64`, and the first 8 bytes
//! big-endian for `str` (full payload strings break prefix ties; the
//! payload itself is stored alongside the entry). Duplicate keys are
//! allowed — an index maps keys to *sets* of objects; entries within one
//! equal-key run are unordered, because object addresses are not stable
//! across GC relocation.
//!
//! # Example
//!
//! ```
//! use espresso_core::{HeapManager, PjhConfig};
//! use espresso_index::{Index, Key};
//! use espresso_object::{PObject, Schema};
//!
//! struct Event;
//! impl PObject for Event {
//!     const CLASS_NAME: &'static str = "Event";
//!     fn schema() -> Schema {
//!         Schema::builder("Event").u64_field("ts").str_field("tag").build()
//!     }
//! }
//!
//! # fn main() -> Result<(), espresso_core::PjhError> {
//! let mgr = HeapManager::temp()?;
//! let handle = mgr.create("events", 8 << 20, PjhConfig::small())?;
//! let (class, by_ts) = handle.with_mut(|h| {
//!     let class = h.register::<Event>()?;
//!     let by_ts = Index::<Event>::create(h, "events.by_ts", "ts")?;
//!     Ok::<_, espresso_core::PjhError>((class, by_ts))
//! })?;
//! let ts = class.field::<u64>("ts")?;
//! for i in 0..100u64 {
//!     handle.txn(|t| {
//!         let e = t.alloc::<Event>()?;
//!         t.set(e, ts, i * 10);
//!         by_ts.insert(t, &Key::U64(i * 10), e) // same txn as the field write
//!     })?;
//! }
//! // Range scans ride lock-free read sessions.
//! let session = handle.read();
//! let hits: Vec<_> = by_ts
//!     .range(&session, Key::U64(200)..Key::U64(300))?
//!     .collect();
//! assert_eq!(hits.len(), 10);
//! assert_eq!(session.get(hits[0].1, ts), 200);
//! # Ok(())
//! # }
//! ```

mod indexed;
mod node;
mod query;
mod tree;

pub use indexed::IndexedHeap;
pub use node::{IndexMeta, IndexNode, ORDER, ROOT_PREFIX};
pub use query::{scan_all, scan_filter, RangeIter};
pub use tree::Index;

/// The declared type of an indexed field — the three single-word field
/// types with a total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyType {
    /// `u64` field, compared numerically.
    U64,
    /// `i64` field, compared numerically (sign-flip encoded).
    I64,
    /// `str` field, compared lexicographically by UTF-8 bytes.
    Str,
}

impl KeyType {
    /// Stable tag persisted in the index metadata object.
    pub(crate) fn tag(self) -> u64 {
        match self {
            KeyType::U64 => 1,
            KeyType::I64 => 2,
            KeyType::Str => 3,
        }
    }

    /// Decodes a persisted tag.
    pub(crate) fn from_tag(tag: u64) -> Option<KeyType> {
        match tag {
            1 => Some(KeyType::U64),
            2 => Some(KeyType::I64),
            3 => Some(KeyType::Str),
            _ => None,
        }
    }
}

/// One index key value.
///
/// `Ord` matches the index's persistent ordering exactly (numeric for the
/// integer types, lexicographic bytes for strings), so DRAM-side models
/// (`BTreeMap<Key, _>`) order identically to the tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Key {
    /// An unsigned key.
    U64(u64),
    /// A signed key.
    I64(i64),
    /// A string key.
    Str(String),
}

/// Sign-flip constant making `i64` order match unsigned word order.
pub(crate) const I64_BIAS: u64 = 1 << 63;

impl Key {
    /// The key's type.
    pub fn key_type(&self) -> KeyType {
        match self {
            Key::U64(_) => KeyType::U64,
            Key::I64(_) => KeyType::I64,
            Key::Str(_) => KeyType::Str,
        }
    }

    /// The order-preserving encoded word (for `str`: the first 8 bytes,
    /// big-endian, zero-padded — ties are broken by the payload string).
    pub(crate) fn word(&self) -> u64 {
        match self {
            Key::U64(v) => *v,
            Key::I64(v) => (*v as u64) ^ I64_BIAS,
            Key::Str(s) => str_prefix_word(s),
        }
    }

    /// The payload string for `str` keys.
    pub(crate) fn str_val(&self) -> Option<&str> {
        match self {
            Key::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// First 8 bytes of `s`, big-endian and zero-padded: an order-preserving
/// prefix word (ties on it require a full string comparison).
pub(crate) fn str_prefix_word(s: &str) -> u64 {
    let mut w = [0u8; 8];
    let b = s.as_bytes();
    let n = b.len().min(8);
    w[..n].copy_from_slice(&b[..n]);
    u64::from_be_bytes(w)
}

#[cfg(test)]
mod key_tests {
    use super::*;

    #[test]
    fn word_encoding_preserves_order() {
        let u = [0u64, 1, 5, u64::MAX];
        for a in u {
            for b in u {
                assert_eq!(
                    Key::U64(a).word().cmp(&Key::U64(b).word()),
                    a.cmp(&b),
                    "u64 {a} vs {b}"
                );
            }
        }
        let i = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        for a in i {
            for b in i {
                assert_eq!(
                    Key::I64(a).word().cmp(&Key::I64(b).word()),
                    a.cmp(&b),
                    "i64 {a} vs {b}"
                );
            }
        }
        let s = ["", "a", "ab", "abcdefgh", "abcdefghi", "b", "ba"];
        for a in s {
            for b in s {
                // The prefix word alone must never *invert* the string
                // order — equal words fall through to the payload compare.
                let pw = str_prefix_word(a).cmp(&str_prefix_word(b));
                assert!(
                    pw == a.as_bytes().cmp(b.as_bytes()) || pw == std::cmp::Ordering::Equal,
                    "str {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn key_ord_matches_type_semantics() {
        assert!(Key::I64(-3) < Key::I64(2));
        assert!(Key::U64(3) < Key::U64(10));
        assert!(Key::Str("abc".into()) < Key::Str("abd".into()));
        assert!(Key::Str("abc".into()) < Key::Str("abcd".into()));
    }
}
