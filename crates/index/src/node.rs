//! The persistent node and metadata layout of the index B-tree.
//!
//! Both classes are ordinary [`PObject`] schemas, so they are registered
//! with fingerprint validation like any application class and the GC
//! traces their reference fields. A node's variable-size parts live in
//! three side arrays (all allocated at full [`ORDER`] capacity so dead
//! copy-on-write paths recycle through the allocator's exact size-class
//! free lists):
//!
//! * `keys` — primitive array of encoded key words (`count` live).
//! * `slots` — object array: child nodes for internal nodes
//!   (`count + 1` live), indexed-object references for leaves (`count`
//!   live).
//! * `strs` — object array of string payload arrays, parallel to `keys`;
//!   null except for `str`-keyed indexes.

use espresso_core::{HeapTxn, Pjh};
use espresso_object::{PObject, Ref, Schema};

use crate::KeyType;

/// Maximum keys per node (leaf and internal). An internal node holding
/// `k` keys has `k + 1` children.
pub const ORDER: usize = 16;

/// Root-name prefix under which index metadata objects are published:
/// index `name` lives at heap root `espresso.index.{name}`.
pub const ROOT_PREFIX: &str = "espresso.index.";

/// Field indexes of [`IndexNode`] (schema order).
pub(crate) const F_LEAF: usize = 0;
pub(crate) const F_COUNT: usize = 1;
pub(crate) const F_KEYS: usize = 2;
pub(crate) const F_SLOTS: usize = 3;
pub(crate) const F_STRS: usize = 4;

/// One B-tree node. See the module docs for the layout.
pub struct IndexNode;

impl PObject for IndexNode {
    const CLASS_NAME: &'static str = "espresso.index.Node";
    fn schema() -> Schema {
        Schema::builder(Self::CLASS_NAME)
            .u64_field("leaf")
            .u64_field("count")
            .array_field("keys")
            .ref_array_named("slots", "espresso.index.Node")
            .ref_array_named("strs", "espresso.index.Str")
            .build()
    }
}

/// The index metadata object, published as heap root
/// `espresso.index.{name}`. Holds the key type, the entry count, the
/// indexed class and field names (validated on open), and the root node
/// pointer — the single word whose logged store publishes every
/// copy-on-write mutation.
pub struct IndexMeta;

impl PObject for IndexMeta {
    const CLASS_NAME: &'static str = "espresso.index.Meta";
    fn schema() -> Schema {
        Schema::builder(Self::CLASS_NAME)
            .u64_field("key_type")
            .u64_field("len")
            .ref_field::<IndexNode>("root")
            .str_field("class")
            .str_field("field")
            .build()
    }
}

/// A DRAM copy of one node, read through any `&Pjh` view (live heap,
/// transaction, or pinned read session).
#[derive(Debug, Clone)]
pub(crate) struct NodeView {
    pub leaf: bool,
    pub count: usize,
    /// Encoded key words, `count` entries.
    pub keys: Vec<u64>,
    /// Children (`count + 1`) or values (`count`).
    pub slots: Vec<Ref>,
    /// String payloads parallel to `keys`; empty for non-`str` indexes.
    pub strs: Vec<Ref>,
}

pub(crate) fn read_node(h: &Pjh, node: Ref) -> NodeView {
    let leaf = h.field(node, F_LEAF) != 0;
    let count = h.field(node, F_COUNT) as usize;
    let keys_arr = h.field_ref(node, F_KEYS);
    let slots_arr = h.field_ref(node, F_SLOTS);
    let strs_arr = h.field_ref(node, F_STRS);
    let nslots = if leaf { count } else { count + 1 };
    NodeView {
        leaf,
        count,
        keys: (0..count).map(|i| h.array_get(keys_arr, i)).collect(),
        slots: (0..nslots).map(|i| h.array_get_ref(slots_arr, i)).collect(),
        strs: if strs_arr.is_null() {
            Vec::new()
        } else {
            (0..count).map(|i| h.array_get_ref(strs_arr, i)).collect()
        },
    }
}

/// Builds (and fully persists) a fresh node inside `t`. All stores are
/// init stores — the node is unreachable until the caller publishes it
/// through the logged root-pointer swap — and every object is flushed
/// here, so publication can never expose torn contents after a crash.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_node(
    t: &mut HeapTxn<'_>,
    key_type: KeyType,
    slots_kid: espresso_object::KlassId,
    strs_kid: espresso_object::KlassId,
    leaf: bool,
    keys: &[u64],
    slots: &[Ref],
    strs: &[Ref],
) -> espresso_core::Result<Ref> {
    debug_assert!(keys.len() <= ORDER);
    debug_assert_eq!(slots.len(), if leaf { keys.len() } else { keys.len() + 1 });
    let node = t.alloc::<IndexNode>()?.raw();
    let karr = t.alloc_arr(ORDER)?.raw();
    let sarr = t.alloc_array(slots_kid, ORDER + 1)?;
    t.init_field(node, F_LEAF, u64::from(leaf));
    t.init_field(node, F_COUNT, keys.len() as u64);
    t.init_field_ref(node, F_KEYS, karr)?;
    t.init_field_ref(node, F_SLOTS, sarr)?;
    for (i, &k) in keys.iter().enumerate() {
        t.init_array_set(karr, i, k);
    }
    for (i, &s) in slots.iter().enumerate() {
        if !s.is_null() {
            t.init_array_set_ref(sarr, i, s)?;
        }
    }
    if key_type == KeyType::Str {
        debug_assert_eq!(strs.len(), keys.len());
        let parr = t.alloc_array(strs_kid, ORDER)?;
        for (i, &p) in strs.iter().enumerate() {
            if !p.is_null() {
                t.init_array_set_ref(parr, i, p)?;
            }
        }
        t.init_field_ref(node, F_STRS, parr)?;
        t.heap().flush_object(parr);
    }
    t.heap().flush_object(karr);
    t.heap().flush_object(sarr);
    t.heap().flush_object(node);
    Ok(node)
}
