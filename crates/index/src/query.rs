//! Queries: point lookups, transactional range scans, and the unindexed
//! heap-walk fallbacks.

use std::marker::PhantomData;
use std::ops::{Bound, RangeBounds};

use espresso_core::{Pjh, PjhError};
use espresso_object::{PObject, PRef, Ref};

use crate::node::read_node;
use crate::tree::{bound, cmp_entry, Index};
use crate::{Key, KeyType, I64_BIAS};

/// Decodes one stored entry back into a [`Key`].
pub(crate) fn decode_key(h: &Pjh, kt: KeyType, word: u64, payload: Ref) -> Key {
    match kt {
        KeyType::U64 => Key::U64(word),
        KeyType::I64 => Key::I64((word ^ I64_BIAS) as i64),
        KeyType::Str => Key::Str(h.read_string(payload)),
    }
}

/// An in-order iterator over one contiguous key range of an index.
///
/// Created by [`Index::range`] (or [`Index::get`] for a point lookup).
/// The iterator borrows the `&Pjh` view it was created from — pass a
/// pinned [`espresso_core::ReadSession`] to scan lock-free while writers
/// commit: the session observes the root published at pin time, and every
/// node reachable from a published root is immutable, so the scan sees a
/// consistent snapshot and never a torn node.
pub struct RangeIter<'h, T: PObject> {
    h: &'h Pjh,
    key_type: KeyType,
    /// Internal nodes on the path, each with the *next* child slot to
    /// descend into when the subtree to its left is exhausted.
    stack: Vec<(Ref, usize)>,
    /// Current leaf view and the next entry position within it.
    leaf: Option<(crate::node::NodeView, usize)>,
    hi: Bound<Key>,
    _m: PhantomData<fn() -> T>,
}

impl<'h, T: PObject> RangeIter<'h, T> {
    fn empty(h: &'h Pjh, key_type: KeyType) -> Self {
        RangeIter {
            h,
            key_type,
            stack: Vec::new(),
            leaf: None,
            hi: Bound::Unbounded,
            _m: PhantomData,
        }
    }

    /// Descends from `root` to the first entry `> key` (`upper`) or
    /// `>= key` (lower). A left sibling's entries never exceed its
    /// separator, so the chosen child always holds the boundary entry.
    fn seek(&mut self, root: Ref, kw: u64, ks: Option<&str>, upper: bool) {
        let mut cur = root;
        loop {
            let v = read_node(self.h, cur);
            if v.leaf {
                let pos = bound(self.h, &v, kw, ks, upper);
                self.leaf = Some((v, pos));
                return;
            }
            let ci = bound(self.h, &v, kw, ks, upper);
            self.stack.push((cur, ci + 1));
            cur = v.slots[ci];
        }
    }

    /// Descends from `node` to its leftmost leaf.
    fn descend_leftmost(&mut self, mut cur: Ref) {
        loop {
            let v = read_node(self.h, cur);
            if v.leaf {
                self.leaf = Some((v, 0));
                return;
            }
            self.stack.push((cur, 1));
            cur = v.slots[0];
        }
    }

    fn within_hi(&self, ew: u64, ep: Ref) -> bool {
        match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(k) => {
                cmp_entry(self.h, ew, ep, k.word(), k.str_val()) != std::cmp::Ordering::Greater
            }
            Bound::Excluded(k) => {
                cmp_entry(self.h, ew, ep, k.word(), k.str_val()) == std::cmp::Ordering::Less
            }
        }
    }
}

impl<T: PObject> Iterator for RangeIter<'_, T> {
    type Item = (Key, PRef<T>);

    fn next(&mut self) -> Option<(Key, PRef<T>)> {
        loop {
            if let Some((v, pos)) = &mut self.leaf {
                if *pos < v.count {
                    let i = *pos;
                    *pos += 1;
                    let ep = v.strs.get(i).copied().unwrap_or(Ref::NULL);
                    let (ew, slot) = (v.keys[i], v.slots[i]);
                    if !self.within_hi(ew, ep) {
                        self.leaf = None;
                        self.stack.clear();
                        return None;
                    }
                    let key = decode_key(self.h, self.key_type, ew, ep);
                    return Some((key, PRef::from_raw_unchecked(slot)));
                }
                self.leaf = None;
            }
            // Current leaf exhausted: resume at the deepest ancestor with
            // an unvisited child and walk down its leftmost spine.
            let (node, ci) = self.stack.pop()?;
            let v = read_node(self.h, node);
            if ci < v.slots.len() {
                self.stack.push((node, ci + 1));
                self.descend_leftmost(v.slots[ci]);
            }
        }
    }
}

impl<T: PObject + 'static> Index<T> {
    /// All objects whose indexed field equals `key`, in entry order
    /// (entries under one key are unordered — see the crate docs).
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] on a key-type mismatch.
    pub fn get<'h>(&self, h: &'h Pjh, key: &Key) -> espresso_core::Result<RangeIter<'h, T>> {
        self.range(h, key.clone()..=key.clone())
    }

    /// An in-order iterator over all entries whose key falls in `bounds`.
    ///
    /// Accepts any standard range over [`Key`] (`lo..hi`, `lo..=hi`,
    /// `..`, `lo..`, `..=hi`). Both bounds must match the index key type.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] if a bound's key type mismatches;
    /// [`PjhError::SafetyViolation`] if the index root is missing from
    /// this heap view.
    pub fn range<'h, R: RangeBounds<Key>>(
        &self,
        h: &'h Pjh,
        bounds: R,
    ) -> espresso_core::Result<RangeIter<'h, T>> {
        for b in [bounds.start_bound(), bounds.end_bound()] {
            if let Bound::Included(k) | Bound::Excluded(k) = b {
                if k.key_type() != self.key_type {
                    return Err(PjhError::SchemaMismatch {
                        class: T::CLASS_NAME.to_string(),
                        detail: format!(
                            "range bound {k:?} does not match index key type {:?}",
                            self.key_type
                        ),
                    });
                }
            }
        }
        let meta = self.meta(h)?;
        let mut it = RangeIter::empty(h, self.key_type);
        it.hi = bounds.end_bound().cloned();
        let Some(root) = h.get_ref(meta, self.f_root) else {
            return Ok(it);
        };
        match bounds.start_bound() {
            Bound::Unbounded => it.descend_leftmost(root.raw()),
            Bound::Included(k) => it.seek(root.raw(), k.word(), k.str_val(), false),
            Bound::Excluded(k) => it.seek(root.raw(), k.word(), k.str_val(), true),
        }
        Ok(it)
    }

    /// Number of entries in the index (maintained in the metadata object,
    /// so this is O(1)).
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] if the index root is missing.
    pub fn len(&self, h: &Pjh) -> espresso_core::Result<u64> {
        let meta = self.meta(h)?;
        Ok(h.get(meta, self.f_len))
    }

    /// Whether the index holds no entries.
    ///
    /// # Errors
    ///
    /// As [`len`](Self::len).
    pub fn is_empty(&self, h: &Pjh) -> espresso_core::Result<bool> {
        Ok(self.len(h)? == 0)
    }

    /// Every entry of the tree in key order, normalised for oracle
    /// comparison: sorted by `(key, object address)` so it is directly
    /// comparable with [`heap_walk`](Self::heap_walk).
    ///
    /// # Errors
    ///
    /// As [`range`](Self::range).
    pub fn tree_entries(&self, h: &Pjh) -> espresso_core::Result<Vec<(Key, Ref)>> {
        let mut v: Vec<(Key, Ref)> = self.range(h, ..)?.map(|(k, p)| (k, p.raw())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.addr().cmp(&b.1.addr())));
        Ok(v)
    }

    /// Rebuilds the index contents from first principles: marks every
    /// object reachable from the heap roots, then extracts the key of
    /// each live instance of `T`. This is the crash-recovery oracle the
    /// property suite compares the tree against, sorted by `(key, object
    /// address)` like [`tree_entries`](Self::tree_entries).
    pub fn heap_walk(&self, h: &Pjh) -> Vec<(Key, Ref)> {
        let live = live_set(h);
        let mut out: Vec<(Key, Ref)> = Vec::new();
        h.for_each_object(|r, klass| {
            if klass.name() != T::CLASS_NAME || !live.contains(&r) {
                return;
            }
            let key = match self.key_type {
                KeyType::U64 => Key::U64(h.field(r, self.field_index)),
                KeyType::I64 => Key::I64(h.field(r, self.field_index) as i64),
                KeyType::Str => {
                    let p = h.field_ref(r, self.field_index);
                    if p.is_null() {
                        return;
                    }
                    Key::Str(h.read_string(p))
                }
            };
            out.push((key, r));
        });
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.addr().cmp(&b.1.addr())));
        out
    }
}

/// The set of objects reachable from the heap's named roots — a DRAM
/// mark phase over klass metadata, independent of the collector's own
/// liveness state (dead images linger physically until their slots are
/// reused, so a raw image walk over-approximates).
fn live_set(h: &Pjh) -> std::collections::HashSet<Ref> {
    use espresso_object::ObjKind;
    let mut live = std::collections::HashSet::new();
    let mut stack: Vec<Ref> = h
        .roots()
        .iter()
        .map(|(_, r)| *r)
        .filter(|r| !r.is_null())
        .collect();
    while let Some(r) = stack.pop() {
        if !live.insert(r) {
            continue;
        }
        let klass = h.klass_of(r);
        match klass.kind() {
            ObjKind::Instance => {
                for i in klass.ref_field_indices() {
                    let c = h.field_ref(r, i);
                    if !c.is_null() {
                        stack.push(c);
                    }
                }
            }
            ObjKind::ObjArray => {
                for i in 0..h.array_len(r) {
                    let c = h.array_get_ref(r, i);
                    if !c.is_null() {
                        stack.push(c);
                    }
                }
            }
            ObjKind::PrimArray => {}
        }
    }
    live
}

/// Every live (root-reachable) instance of `T` in the heap, in walk
/// order — the unindexed fallback access path.
pub fn scan_all<T: PObject>(h: &Pjh) -> Vec<PRef<T>> {
    let live = live_set(h);
    let mut out = Vec::new();
    h.for_each_object(|r, klass| {
        if klass.name() == T::CLASS_NAME && live.contains(&r) {
            out.push(PRef::from_raw_unchecked(r));
        }
    });
    out
}

/// [`scan_all`] filtered by an arbitrary predicate over the heap view —
/// the query plan for predicates no index covers.
pub fn scan_filter<T: PObject>(
    h: &Pjh,
    mut pred: impl FnMut(&Pjh, PRef<T>) -> bool,
) -> Vec<PRef<T>> {
    scan_all::<T>(h)
        .into_iter()
        .filter(|&p| pred(h, p))
        .collect()
}
