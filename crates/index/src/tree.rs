//! The index handle and its copy-on-write mutation paths.

use std::cmp::Ordering;
use std::marker::PhantomData;

use espresso_core::{HeapTxn, Pjh, PjhError};
use espresso_object::{FieldType, Fld, KlassId, PObject, PRef, Ref, RefFld, StrFld};

use crate::node::{build_node, read_node, IndexMeta, IndexNode, NodeView, ORDER, ROOT_PREFIX};
use crate::{Key, KeyType};

/// A handle to one persistent secondary index over instances of `T`.
///
/// The handle itself is DRAM metadata (names, klass ids, resolved field
/// offsets); all state lives in the heap under root
/// `espresso.index.{name}`. The metadata root is re-resolved on every
/// operation, so handles stay valid across GC relocation. After a heap
/// reload, re-create the handle with [`Index::open`].
///
/// Mutations ([`insert`](Self::insert) / [`remove`](Self::remove)) run
/// inside a caller-supplied [`HeapTxn`], so one transaction can combine
/// an object-field write with its index maintenance — aborting rolls
/// back both. Queries ([`get`](Self::get) / [`range`](Self::range)) run
/// against any `&Pjh` view, including lock-free pinned read sessions.
pub struct Index<T: PObject> {
    pub(crate) name: String,
    pub(crate) root_name: String,
    pub(crate) field_name: String,
    pub(crate) field_index: usize,
    pub(crate) key_type: KeyType,
    pub(crate) slots_kid: KlassId,
    pub(crate) strs_kid: KlassId,
    pub(crate) f_key_type: Fld<IndexMeta, u64>,
    pub(crate) f_len: Fld<IndexMeta, u64>,
    pub(crate) f_root: RefFld<IndexMeta, IndexNode>,
    pub(crate) f_class: StrFld<IndexMeta>,
    pub(crate) f_field: StrFld<IndexMeta>,
    pub(crate) _m: PhantomData<fn() -> T>,
}

// Manual impls: the derives would demand `T: Clone` / `T: Debug`, but
// `T` only ever appears under `PhantomData<fn() -> T>`.
impl<T: PObject> Clone for Index<T> {
    fn clone(&self) -> Index<T> {
        Index {
            name: self.name.clone(),
            root_name: self.root_name.clone(),
            field_name: self.field_name.clone(),
            field_index: self.field_index,
            key_type: self.key_type,
            slots_kid: self.slots_kid,
            strs_kid: self.strs_kid,
            f_key_type: self.f_key_type,
            f_len: self.f_len,
            f_root: self.f_root,
            f_class: self.f_class,
            f_field: self.f_field,
            _m: PhantomData,
        }
    }
}

impl<T: PObject> std::fmt::Debug for Index<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("name", &self.name)
            .field("class", &T::CLASS_NAME)
            .field("field", &self.field_name)
            .field("key_type", &self.key_type)
            .finish()
    }
}

/// Result of a recursive copy-on-write insert below one node.
enum Ins {
    /// The subtree was rebuilt into this replacement node.
    One(Ref),
    /// The subtree split: the separator must be inserted into the parent.
    Split {
        left: Ref,
        right: Ref,
        sep_word: u64,
        sep_payload: Ref,
    },
}

/// Result of a recursive copy-on-write remove below one node.
enum Rm {
    /// No (key, value) match in this subtree.
    NotFound,
    /// The subtree was rebuilt into this replacement node.
    Replaced(Ref),
    /// The subtree became empty and must be unlinked by the parent.
    Emptied,
}

/// Compares a stored entry `(ew, ep)` against a search key `(kw, ks)`:
/// encoded words first, payload strings on a tie (str-keyed indexes
/// only — for the integer types the word is the whole key).
pub(crate) fn cmp_entry(h: &Pjh, ew: u64, ep: Ref, kw: u64, ks: Option<&str>) -> Ordering {
    match ew.cmp(&kw) {
        Ordering::Equal => match ks {
            Some(s) if !ep.is_null() => h.read_string(ep).as_str().cmp(s),
            _ => Ordering::Equal,
        },
        o => o,
    }
}

/// First position in `v` whose entry is `> key` (`upper`) or `>= key`
/// (lower); `v.count` if none. Linear scan — `ORDER` is small.
pub(crate) fn bound(h: &Pjh, v: &NodeView, kw: u64, ks: Option<&str>, upper: bool) -> usize {
    for i in 0..v.count {
        let ep = v.strs.get(i).copied().unwrap_or(Ref::NULL);
        match cmp_entry(h, v.keys[i], ep, kw, ks) {
            Ordering::Greater => return i,
            Ordering::Equal if !upper => return i,
            _ => {}
        }
    }
    v.count
}

impl<T: PObject + 'static> Index<T> {
    /// Creates an empty index named `name` over field `field` of `T`,
    /// deriving the key type from `T`'s declared schema, and publishes
    /// its metadata object at root `espresso.index.{name}`.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] if `field` is not a `u64`/`i64`/`str`
    /// field of `T`; [`PjhError::SafetyViolation`] if the index already
    /// exists; registration and allocation errors.
    pub fn create(h: &mut Pjh, name: &str, field: &str) -> espresso_core::Result<Index<T>> {
        let idx = Self::resolve(h, name, field)?;
        if h.get_root(&idx.root_name).is_some() {
            return Err(PjhError::SafetyViolation {
                reason: format!("index {name:?} already exists"),
            });
        }
        let (f_key_type, f_len, f_class, f_field) =
            (idx.f_key_type, idx.f_len, idx.f_class, idx.f_field);
        let key_tag = idx.key_type.tag();
        let meta = h.txn(|t| {
            let m = t.alloc::<IndexMeta>()?;
            t.set(m, f_key_type, key_tag);
            t.set(m, f_len, 0);
            t.set_str(m, f_class, T::CLASS_NAME)?;
            t.set_str(m, f_field, field)?;
            Ok(m)
        })?;
        h.set_root_typed(&idx.root_name, meta)?;
        Ok(idx)
    }

    /// Opens an existing index, validating that its persisted metadata
    /// (indexed class, field name, key type) matches `T`'s declaration.
    ///
    /// # Errors
    ///
    /// [`PjhError::NoSuchHeap`]-style [`PjhError::SafetyViolation`] if the
    /// index does not exist; [`PjhError::SchemaMismatch`] if the persisted
    /// metadata disagrees with `T`'s schema.
    pub fn open(h: &mut Pjh, name: &str) -> espresso_core::Result<Index<T>> {
        let root_name = format!("{ROOT_PREFIX}{name}");
        h.register::<IndexNode>()?;
        let meta_class = h.register::<IndexMeta>()?;
        let f_class = meta_class.str_field("class").expect("meta schema");
        let f_field = meta_class.str_field("field").expect("meta schema");
        let f_key_type = meta_class.field::<u64>("key_type").expect("meta schema");
        let meta = h
            .root::<IndexMeta>(&root_name)?
            .ok_or_else(|| PjhError::SafetyViolation {
                reason: format!("index {name:?} does not exist"),
            })?;
        let class = h.get_str(meta, f_class).unwrap_or_default();
        if class != T::CLASS_NAME {
            return Err(PjhError::SchemaMismatch {
                class: T::CLASS_NAME.to_string(),
                detail: format!("index {name:?} indexes class {class:?}"),
            });
        }
        let field = h.get_str(meta, f_field).unwrap_or_default();
        let idx = Self::resolve(h, name, &field)?;
        let stored = h.get(meta, f_key_type);
        if KeyType::from_tag(stored) != Some(idx.key_type) {
            return Err(PjhError::SchemaMismatch {
                class: T::CLASS_NAME.to_string(),
                detail: format!(
                    "index {name:?} persisted key-type tag {stored} but field {field:?} \
                     declares {:?}",
                    idx.key_type
                ),
            });
        }
        Ok(idx)
    }

    /// [`open`](Self::open) if the index exists, [`create`](Self::create)
    /// otherwise.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open) / [`create`](Self::create).
    pub fn open_or_create(h: &mut Pjh, name: &str, field: &str) -> espresso_core::Result<Index<T>> {
        if h.get_root(&format!("{ROOT_PREFIX}{name}")).is_some() {
            Self::open(h, name)
        } else {
            Self::create(h, name, field)
        }
    }

    /// Registers the node/meta schemas and resolves all DRAM-side handle
    /// state, deriving the key type from `T`'s declared field type.
    fn resolve(h: &mut Pjh, name: &str, field: &str) -> espresso_core::Result<Index<T>> {
        let schema = T::schema();
        let (field_index, ftype) = schema
            .field(field)
            .ok_or_else(|| PjhError::SchemaMismatch {
                class: T::CLASS_NAME.to_string(),
                detail: format!("indexed field {field:?} is not declared"),
            })?;
        let key_type = match ftype {
            FieldType::U64 => KeyType::U64,
            FieldType::I64 => KeyType::I64,
            FieldType::Str => KeyType::Str,
            other => {
                return Err(PjhError::SchemaMismatch {
                    class: T::CLASS_NAME.to_string(),
                    detail: format!(
                        "field {field:?} has type {other:?}; only u64/i64/str fields are indexable"
                    ),
                })
            }
        };
        h.register::<IndexNode>()?;
        let meta_class = h.register::<IndexMeta>()?;
        Ok(Index {
            name: name.to_string(),
            root_name: format!("{ROOT_PREFIX}{name}"),
            field_name: field.to_string(),
            field_index,
            key_type,
            slots_kid: h.register_obj_array(IndexNode::CLASS_NAME),
            strs_kid: h.register_obj_array("espresso.index.Str"),
            f_key_type: meta_class.field::<u64>("key_type").expect("meta schema"),
            f_len: meta_class.field::<u64>("len").expect("meta schema"),
            f_root: meta_class
                .ref_field::<IndexNode>("root")
                .expect("meta schema"),
            f_class: meta_class.str_field("class").expect("meta schema"),
            f_field: meta_class.str_field("field").expect("meta schema"),
            _m: PhantomData,
        })
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The indexed field name.
    pub fn field_name(&self) -> &str {
        &self.field_name
    }

    /// The index key type.
    pub fn key_type(&self) -> KeyType {
        self.key_type
    }

    /// Reads the indexed field of `obj` as a key (`None` when a `str`
    /// field is null — such objects are simply unindexed).
    pub fn key_of(&self, h: &Pjh, obj: PRef<T>) -> Option<Key> {
        match self.key_type {
            KeyType::U64 => Some(Key::U64(h.field(obj.raw(), self.field_index))),
            KeyType::I64 => Some(Key::I64(h.field(obj.raw(), self.field_index) as i64)),
            KeyType::Str => {
                let p = h.field_ref(obj.raw(), self.field_index);
                (!p.is_null()).then(|| Key::Str(h.read_string(p)))
            }
        }
    }

    /// Resolves the metadata object (re-resolved per operation, so GC
    /// relocation never invalidates the handle).
    pub(crate) fn meta(&self, h: &Pjh) -> espresso_core::Result<PRef<IndexMeta>> {
        h.root::<IndexMeta>(&self.root_name)?
            .ok_or_else(|| PjhError::SafetyViolation {
                reason: format!("index {:?} has no metadata root", self.name),
            })
    }

    fn check_type(&self, key: &Key) -> espresso_core::Result<()> {
        if key.key_type() != self.key_type {
            return Err(PjhError::SchemaMismatch {
                class: T::CLASS_NAME.to_string(),
                detail: format!(
                    "key {key:?} does not match index key type {:?}",
                    self.key_type
                ),
            });
        }
        Ok(())
    }

    fn build(
        &self,
        t: &mut HeapTxn<'_>,
        leaf: bool,
        keys: &[u64],
        slots: &[Ref],
        strs: &[Ref],
    ) -> espresso_core::Result<Ref> {
        build_node(
            t,
            self.key_type,
            self.slots_kid,
            self.strs_kid,
            leaf,
            keys,
            slots,
            strs,
        )
    }

    /// Inserts `(key, value)`. `key` must equal the current value of the
    /// indexed field of `value` — [`crate::IndexedHeap`] maintains this
    /// automatically; direct callers carry the obligation themselves.
    /// Duplicate keys are allowed (one key can map to many objects);
    /// inserting the *same* `(key, value)` pair twice yields two entries.
    ///
    /// Runs inside the caller's transaction: the copy-on-write path costs
    /// no undo records, and only the root-pointer swap plus the length
    /// update are logged, so an abort (or crash) rolls the index back
    /// together with every other logged store of the transaction.
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] on a key-type mismatch; allocation
    /// errors (on [`PjhError::HeapFull`], run a collection and retry the
    /// whole transaction).
    pub fn insert(
        &self,
        t: &mut HeapTxn<'_>,
        key: &Key,
        value: PRef<T>,
    ) -> espresso_core::Result<()> {
        self.check_type(key)?;
        let meta = self.meta(t.heap())?;
        let payload = match key.str_val() {
            Some(s) => t.alloc_string(s)?,
            None => Ref::NULL,
        };
        let kw = key.word();
        let ks = key.str_val();
        let new_root = match t.get_ref(meta, self.f_root) {
            None => {
                let strs = if self.key_type == KeyType::Str {
                    vec![payload]
                } else {
                    Vec::new()
                };
                self.build(t, true, &[kw], &[value.raw()], &strs)?
            }
            Some(root) => match self.insert_rec(t, root.raw(), kw, ks, payload, value.raw())? {
                Ins::One(n) => n,
                Ins::Split {
                    left,
                    right,
                    sep_word,
                    sep_payload,
                } => {
                    let strs = if self.key_type == KeyType::Str {
                        vec![sep_payload]
                    } else {
                        Vec::new()
                    };
                    self.build(t, false, &[sep_word], &[left, right], &strs)?
                }
            },
        };
        let len = t.get(meta, self.f_len);
        t.set_ref(meta, self.f_root, Some(PRef::from_raw_unchecked(new_root)))?;
        t.set(meta, self.f_len, len + 1);
        Ok(())
    }

    fn insert_rec(
        &self,
        t: &mut HeapTxn<'_>,
        node: Ref,
        kw: u64,
        ks: Option<&str>,
        payload: Ref,
        value: Ref,
    ) -> espresso_core::Result<Ins> {
        let v = read_node(t.heap(), node);
        let is_str = self.key_type == KeyType::Str;
        if v.leaf {
            // Equal keys insert after their run (`upper` bound), matching
            // the descent rule below, so duplicates stay contiguous.
            let pos = bound(t.heap(), &v, kw, ks, true);
            let mut keys = v.keys;
            let mut slots = v.slots;
            let mut strs = v.strs;
            keys.insert(pos, kw);
            slots.insert(pos, value);
            if is_str {
                strs.insert(pos, payload);
            }
            if keys.len() <= ORDER {
                return Ok(Ins::One(self.build(t, true, &keys, &slots, &strs)?));
            }
            let mid = keys.len() / 2;
            let (ls, rs) = if is_str {
                (&strs[..mid], &strs[mid..])
            } else {
                (&strs[..], &strs[..])
            };
            let left = self.build(t, true, &keys[..mid], &slots[..mid], ls)?;
            let right = self.build(t, true, &keys[mid..], &slots[mid..], rs)?;
            Ok(Ins::Split {
                left,
                right,
                // B+-style: the separator is the right leaf's first key
                // (it stays in the leaf; internal payload refs alias the
                // leaf's, which is fine — payloads are immutable).
                sep_word: keys[mid],
                sep_payload: strs.get(mid).copied().unwrap_or(Ref::NULL),
            })
        } else {
            let ci = bound(t.heap(), &v, kw, ks, true);
            let child = v.slots[ci];
            match self.insert_rec(t, child, kw, ks, payload, value)? {
                Ins::One(n) => {
                    let mut slots = v.slots;
                    slots[ci] = n;
                    Ok(Ins::One(self.build(t, false, &v.keys, &slots, &v.strs)?))
                }
                Ins::Split {
                    left,
                    right,
                    sep_word,
                    sep_payload,
                } => {
                    let mut keys = v.keys;
                    let mut slots = v.slots;
                    let mut strs = v.strs;
                    keys.insert(ci, sep_word);
                    if is_str {
                        strs.insert(ci, sep_payload);
                    }
                    slots[ci] = left;
                    slots.insert(ci + 1, right);
                    if keys.len() <= ORDER {
                        return Ok(Ins::One(self.build(t, false, &keys, &slots, &strs)?));
                    }
                    // Internal split: the middle separator is promoted,
                    // not copied into either half.
                    let mid = keys.len() / 2;
                    let (ls, rs) = if is_str {
                        (&strs[..mid], &strs[mid + 1..])
                    } else {
                        (&strs[..], &strs[..])
                    };
                    let left_n = self.build(t, false, &keys[..mid], &slots[..=mid], ls)?;
                    let right_n = self.build(t, false, &keys[mid + 1..], &slots[mid + 1..], rs)?;
                    Ok(Ins::Split {
                        left: left_n,
                        right: right_n,
                        sep_word: keys[mid],
                        sep_payload: strs.get(mid).copied().unwrap_or(Ref::NULL),
                    })
                }
            }
        }
    }

    /// Removes one `(key, value)` entry; returns whether one was found.
    /// With duplicate keys only the entry whose value reference equals
    /// `value` is removed (one of them, if the same pair was inserted
    /// multiple times).
    ///
    /// # Errors
    ///
    /// [`PjhError::SchemaMismatch`] on a key-type mismatch; allocation
    /// errors rebuilding the path.
    pub fn remove(
        &self,
        t: &mut HeapTxn<'_>,
        key: &Key,
        value: PRef<T>,
    ) -> espresso_core::Result<bool> {
        self.check_type(key)?;
        let meta = self.meta(t.heap())?;
        let Some(root) = t.get_ref(meta, self.f_root) else {
            return Ok(false);
        };
        let outcome = self.remove_rec(t, root.raw(), key.word(), key.str_val(), value.raw())?;
        let len = t.get(meta, self.f_len);
        match outcome {
            Rm::NotFound => Ok(false),
            Rm::Replaced(n) => {
                t.set_ref(meta, self.f_root, Some(PRef::from_raw_unchecked(n)))?;
                t.set(meta, self.f_len, len - 1);
                Ok(true)
            }
            Rm::Emptied => {
                t.set_ref(meta, self.f_root, None)?;
                t.set(meta, self.f_len, len - 1);
                Ok(true)
            }
        }
    }

    fn remove_rec(
        &self,
        t: &mut HeapTxn<'_>,
        node: Ref,
        kw: u64,
        ks: Option<&str>,
        value: Ref,
    ) -> espresso_core::Result<Rm> {
        let v = read_node(t.heap(), node);
        let is_str = self.key_type == KeyType::Str;
        if v.leaf {
            let lo = bound(t.heap(), &v, kw, ks, false);
            let hi = bound(t.heap(), &v, kw, ks, true);
            let Some(pos) = (lo..hi).find(|&i| v.slots[i] == value) else {
                return Ok(Rm::NotFound);
            };
            if v.count == 1 {
                return Ok(Rm::Emptied);
            }
            let mut keys = v.keys;
            let mut slots = v.slots;
            let mut strs = v.strs;
            keys.remove(pos);
            slots.remove(pos);
            if is_str {
                strs.remove(pos);
            }
            Ok(Rm::Replaced(self.build(t, true, &keys, &slots, &strs)?))
        } else {
            // Duplicates may sit on either side of an equal separator, so
            // every child covering the key's range is a candidate.
            let lo = bound(t.heap(), &v, kw, ks, false);
            let hi = bound(t.heap(), &v, kw, ks, true);
            for ci in lo..=hi {
                match self.remove_rec(t, v.slots[ci], kw, ks, value)? {
                    Rm::NotFound => continue,
                    Rm::Replaced(n) => {
                        let mut slots = v.slots;
                        slots[ci] = n;
                        return Ok(Rm::Replaced(
                            self.build(t, false, &v.keys, &slots, &v.strs)?,
                        ));
                    }
                    Rm::Emptied => {
                        // Unlink the emptied child and one adjacent
                        // separator; a one-child internal node collapses
                        // into that child.
                        let mut keys = v.keys;
                        let mut slots = v.slots;
                        let mut strs = v.strs;
                        slots.remove(ci);
                        let kidx = ci.saturating_sub(1);
                        keys.remove(kidx);
                        if is_str {
                            strs.remove(kidx);
                        }
                        if keys.is_empty() {
                            return Ok(Rm::Replaced(slots[0]));
                        }
                        return Ok(Rm::Replaced(self.build(t, false, &keys, &slots, &strs)?));
                    }
                }
            }
            Ok(Rm::NotFound)
        }
    }
}
