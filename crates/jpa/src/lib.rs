//! JPA-style ORM baseline (§2.1): the coarse-grained persistence layer
//! whose commit-time object→SQL transformation Figure 4 breaks down.
//!
//! Mirrors the DataNucleus architecture of Figure 1:
//!
//! * [`EntityMeta`] is the output of the *enhancer*: per-class metadata
//!   (table, columns, primary key, inherited fields, collection members)
//!   derived from `@persistable` annotations.
//! * [`EntityObject`] is an enhanced instance: values plus the control
//!   state a StateManager tracks (new / dirty / removed).
//! * [`EntityManager`] manages persistent objects and transactions. At
//!   `commit`, every pending change is **transformed into SQL statement
//!   text** and pushed through the JDBC-like string interface of
//!   `espresso-minidb` — the paper's point is precisely that this phase
//!   (string building here, string parsing in the engine) dwarfs the
//!   useful database work on NVM.
//!
//! The manager times its transformation phase ([`EntityManager::stats`]);
//! combined with the engine's [`DbStats`](espresso_minidb::DbStats) this
//! regenerates Figure 4 and the H2-JPA halves of Figures 16/17.
//!
//! # Example
//!
//! ```
//! use espresso_jpa::{EntityManager, EntityMeta};
//! use espresso_minidb::{ColType, Database, Value};
//! use espresso_nvm::{NvmConfig, NvmDevice};
//!
//! # fn main() -> Result<(), espresso_minidb::DbError> {
//! let db = Database::create(NvmDevice::new(NvmConfig::with_size(1 << 20)))?;
//! let person = EntityMeta::builder("person")
//!     .pk_field("id", ColType::Int)
//!     .field("name", ColType::Text)
//!     .build();
//! let mut em = EntityManager::new(db.connect());
//! em.create_schema(&[&person])?;
//! em.begin();
//! let mut p = person.instantiate();
//! p.set(0, Value::Int(1));
//! p.set(1, Value::Str("Jimmy".into()));
//! em.persist(p);
//! em.commit()?;
//! assert!(em.find(&person, &Value::Int(1))?.is_some());
//! # Ok(())
//! # }
//! ```

mod manager;
mod meta;

pub use manager::{EntityManager, JpaStats};
pub use meta::{EntityMeta, EntityMetaBuilder, EntityObject};
