//! The EntityManager: transaction control and commit-time object→SQL
//! transformation (Figures 1, 3, 4).

use std::time::Instant;

use espresso_minidb::{ColType, Connection, Value};

use crate::meta::{EntityMeta, EntityObject};

/// ORM-side counters; pair with the engine's
/// [`DbStats`](espresso_minidb::DbStats) for the Figure 4/17 breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JpaStats {
    /// Nanoseconds spent transforming objects into SQL statement text.
    pub transformation_ns: u64,
    /// SQL statements produced.
    pub statements: u64,
    /// Transactions committed.
    pub commits: u64,
}

enum Pending {
    Insert(EntityObject),
    Update(EntityObject),
    Remove(EntityMeta, Value),
}

/// A JPA-style entity manager over one database connection.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct EntityManager {
    conn: Connection,
    pending: Vec<Pending>,
    stats: JpaStats,
    rowid: i64,
}

impl std::fmt::Debug for EntityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntityManager")
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl EntityManager {
    /// Wraps a connection.
    pub fn new(conn: Connection) -> EntityManager {
        EntityManager {
            conn,
            pending: Vec::new(),
            stats: JpaStats::default(),
            rowid: 0,
        }
    }

    /// ORM-side counters.
    pub fn stats(&self) -> JpaStats {
        self.stats
    }

    /// Resets the ORM-side counters.
    pub fn reset_stats(&mut self) {
        self.stats = JpaStats::default();
    }

    /// The underlying connection.
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }

    fn transform<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.stats.transformation_ns += t0.elapsed().as_nanos() as u64;
        self.stats.statements += 1;
        out
    }

    /// Emits `CREATE TABLE` DDL for each entity (and its join tables).
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn create_schema(&mut self, metas: &[&EntityMeta]) -> espresso_minidb::Result<()> {
        for meta in metas {
            let ddl = self.transform(|| {
                let cols: Vec<String> = meta
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(i, (n, t))| {
                        let ty = match t {
                            ColType::Int => "INT",
                            ColType::Text => "TEXT",
                        };
                        if i == meta.pk() {
                            format!("{n} {ty} PRIMARY KEY")
                        } else {
                            format!("{n} {ty}")
                        }
                    })
                    .collect();
                format!("CREATE TABLE {} ({})", meta.name(), cols.join(", "))
            });
            self.conn.execute(&ddl)?;
            for c in 0..meta.collections().len() {
                let ddl = self.transform(|| {
                    format!(
                        "CREATE TABLE {} (rowid INT PRIMARY KEY, owner INT, idx INT, value INT)",
                        meta.collection_table(c)
                    )
                });
                self.conn.execute(&ddl)?;
            }
        }
        Ok(())
    }

    /// Starts a transaction (`em.getTransaction().begin()`).
    pub fn begin(&mut self) {
        self.pending.clear();
        let _ = self.conn.execute("BEGIN");
    }

    /// Schedules a new object for insertion (`em.persist(p)`).
    pub fn persist(&mut self, obj: EntityObject) {
        self.pending.push(Pending::Insert(obj));
    }

    /// Schedules a modified object for update.
    pub fn merge(&mut self, obj: EntityObject) {
        self.pending.push(Pending::Update(obj));
    }

    /// Schedules a removal by key.
    pub fn remove(&mut self, meta: &EntityMeta, key: Value) {
        self.pending.push(Pending::Remove(meta.clone(), key));
    }

    /// Loads an entity by primary key, collections included.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn find(
        &mut self,
        meta: &EntityMeta,
        key: &Value,
    ) -> espresso_minidb::Result<Option<EntityObject>> {
        let sql = self.transform(|| {
            format!(
                "SELECT * FROM {} WHERE {} = {}",
                meta.name(),
                meta.fields()[meta.pk()].0,
                key
            )
        });
        let result = self.conn.execute(&sql)?;
        let Some(row) = result.rows.into_iter().next() else {
            return Ok(None);
        };
        let mut obj = meta.instantiate();
        obj.values = row;
        for c in 0..meta.collections().len() {
            let sql = self.transform(|| {
                format!(
                    "SELECT * FROM {} WHERE owner = {}",
                    meta.collection_table(c),
                    key
                )
            });
            let rows = self.conn.execute(&sql)?.rows;
            let mut items: Vec<(i64, i64)> = rows
                .into_iter()
                .map(|r| {
                    let idx = match r[2] {
                        Value::Int(i) => i,
                        _ => 0,
                    };
                    let v = match r[3] {
                        Value::Int(i) => i,
                        _ => 0,
                    };
                    (idx, v)
                })
                .collect();
            items.sort_unstable();
            obj.collections[c] = items.into_iter().map(|(_, v)| v).collect();
        }
        obj.clear_dirty();
        Ok(Some(obj))
    }

    fn flush_collections(&mut self, obj: &EntityObject) -> espresso_minidb::Result<()> {
        for c in 0..obj.meta().collections().len() {
            let table = obj.meta().collection_table(c);
            let key = obj.key().clone();
            let del = self.transform(|| format!("DELETE FROM {table} WHERE owner = {key}"));
            self.conn.execute(&del)?;
            for (idx, v) in obj.collection(c).iter().enumerate() {
                self.rowid += 1;
                let rowid = self.rowid;
                let ins = self.transform(|| {
                    format!("INSERT INTO {table} VALUES ({rowid}, {key}, {idx}, {v})")
                });
                self.conn.execute(&ins)?;
            }
        }
        Ok(())
    }

    /// Commits: every pending object is transformed into SQL text and sent
    /// through the string interface, then the engine transaction commits
    /// (`em.getTransaction().commit()`).
    ///
    /// # Errors
    ///
    /// Database errors; pending work is dropped either way.
    pub fn commit(&mut self) -> espresso_minidb::Result<()> {
        let pending = std::mem::take(&mut self.pending);
        for op in &pending {
            match op {
                Pending::Insert(obj) => {
                    let sql = self.transform(|| {
                        let vals: Vec<String> = obj.values.iter().map(|v| v.to_string()).collect();
                        format!(
                            "INSERT INTO {} VALUES ({})",
                            obj.meta().name(),
                            vals.join(", ")
                        )
                    });
                    self.conn.execute(&sql)?;
                    self.flush_collections(obj)?;
                }
                Pending::Update(obj) => {
                    // Entities whose only column is the key have no row
                    // update to emit (collection-only changes).
                    if obj.meta().fields().len() > 1 {
                        let sql = self.transform(|| {
                            let sets: Vec<String> = obj
                                .meta()
                                .fields()
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != obj.meta().pk())
                                .map(|(i, (n, _))| format!("{n} = {}", obj.values[i]))
                                .collect();
                            format!(
                                "UPDATE {} SET {} WHERE {} = {}",
                                obj.meta().name(),
                                sets.join(", "),
                                obj.meta().fields()[obj.meta().pk()].0,
                                obj.key()
                            )
                        });
                        self.conn.execute(&sql)?;
                    }
                    self.flush_collections(obj)?;
                }
                Pending::Remove(meta, key) => {
                    let sql = self.transform(|| {
                        format!(
                            "DELETE FROM {} WHERE {} = {}",
                            meta.name(),
                            meta.fields()[meta.pk()].0,
                            key
                        )
                    });
                    self.conn.execute(&sql)?;
                    for c in 0..meta.collections().len() {
                        let table = meta.collection_table(c);
                        let del =
                            self.transform(|| format!("DELETE FROM {table} WHERE owner = {key}"));
                        self.conn.execute(&del)?;
                    }
                }
            }
        }
        self.conn.execute("COMMIT")?;
        self.stats.commits += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_minidb::Database;
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn em() -> (Database, EntityManager) {
        let db = Database::create(NvmDevice::new(NvmConfig::with_size(4 << 20))).unwrap();
        let em = EntityManager::new(db.connect());
        (db, em)
    }

    fn person() -> EntityMeta {
        EntityMeta::builder("person")
            .pk_field("id", ColType::Int)
            .field("name", ColType::Text)
            .field("age", ColType::Int)
            .build()
    }

    fn mk(meta: &EntityMeta, id: i64, name: &str, age: i64) -> EntityObject {
        let mut o = meta.instantiate();
        o.set(0, Value::Int(id));
        o.set(1, Value::Str(name.into()));
        o.set(2, Value::Int(age));
        o
    }

    #[test]
    fn crud_lifecycle() {
        let (_db, mut em) = em();
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        em.persist(mk(&meta, 2, "Bob", 40));
        em.commit().unwrap();

        let mut ann = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(ann.get(1), &Value::Str("Ann".into()));

        em.begin();
        ann.set(2, Value::Int(31));
        em.merge(ann);
        em.commit().unwrap();
        let ann = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(ann.get(2), &Value::Int(31));

        em.begin();
        em.remove(&meta, Value::Int(1));
        em.commit().unwrap();
        assert!(em.find(&meta, &Value::Int(1)).unwrap().is_none());
        assert!(em.find(&meta, &Value::Int(2)).unwrap().is_some());
    }

    #[test]
    fn inheritance_single_table() {
        let (_db, mut em) = em();
        let base = person();
        let emp = EntityMeta::builder("employee")
            .field("salary", ColType::Int)
            .extends(&base)
            .build();
        em.create_schema(&[&emp]).unwrap();
        em.begin();
        let mut e = emp.instantiate();
        e.set(0, Value::Int(1));
        e.set(1, Value::Str("Cid".into()));
        e.set(2, Value::Int(20));
        e.set(3, Value::Int(90_000));
        em.persist(e);
        em.commit().unwrap();
        let e = em.find(&emp, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(e.get(3), &Value::Int(90_000));
        assert_eq!(e.get(1), &Value::Str("Cid".into()), "inherited field");
    }

    #[test]
    fn collections_roundtrip_via_join_table() {
        let (db, mut em) = em();
        let cart = EntityMeta::builder("cart")
            .pk_field("id", ColType::Int)
            .collection("items")
            .build();
        em.create_schema(&[&cart]).unwrap();
        em.begin();
        let mut c = cart.instantiate();
        c.set(0, Value::Int(7));
        c.set_collection(0, vec![10, 20, 30]);
        em.persist(c);
        em.commit().unwrap();
        assert_eq!(db.row_count("cart_items").unwrap(), 3);
        let c = em.find(&cart, &Value::Int(7)).unwrap().unwrap();
        assert_eq!(c.collection(0), &[10, 20, 30]);
        // Update replaces the collection.
        em.begin();
        let mut c2 = c.clone();
        c2.set_collection(0, vec![5]);
        em.merge(c2);
        em.commit().unwrap();
        let c = em.find(&cart, &Value::Int(7)).unwrap().unwrap();
        assert_eq!(c.collection(0), &[5]);
        // Remove cleans the join table.
        em.begin();
        em.remove(&cart, Value::Int(7));
        em.commit().unwrap();
        assert_eq!(db.row_count("cart_items").unwrap(), 0);
    }

    #[test]
    fn foreign_key_references_navigate() {
        let (_db, mut em) = em();
        let node = EntityMeta::builder("node")
            .pk_field("id", ColType::Int)
            .field("next_id", ColType::Int)
            .build();
        em.create_schema(&[&node]).unwrap();
        em.begin();
        for (id, next) in [(1, 2), (2, 3), (3, 0)] {
            let mut n = node.instantiate();
            n.set(0, Value::Int(id));
            n.set(1, Value::Int(next));
            em.persist(n);
        }
        em.commit().unwrap();
        // Walk the chain through foreign keys.
        let mut id = 1;
        let mut hops = 0;
        while id != 0 {
            let n = em.find(&node, &Value::Int(id)).unwrap().unwrap();
            id = match n.get(1) {
                Value::Int(i) => *i,
                _ => 0,
            };
            hops += 1;
        }
        assert_eq!(hops, 3);
    }

    #[test]
    fn transformation_time_is_accounted() {
        let (db, mut em) = em();
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.reset_stats();
        db.reset_stats();
        em.begin();
        for i in 0..200 {
            em.persist(mk(&meta, i, "Name", i));
        }
        em.commit().unwrap();
        let jpa = em.stats();
        let dbs = db.stats();
        assert!(jpa.transformation_ns > 0);
        assert!(dbs.parse_ns > 0, "SQL strings were parsed");
        assert!(dbs.exec_ns > 0);
        assert_eq!(jpa.commits, 1);
        assert!(jpa.statements >= 200);
    }

    #[test]
    fn string_values_are_escaped_through_the_sql_boundary() {
        let (_db, mut em) = em();
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "O'Brien; DROP TABLE person", 1));
        em.commit().unwrap();
        let o = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(o.get(1), &Value::Str("O'Brien; DROP TABLE person".into()));
    }
}
