//! Entity metadata (the enhancer's output) and enhanced instances.

use std::sync::Arc;

use espresso_minidb::{ColType, Value};

/// Per-class persistence metadata, the Rust stand-in for what the
/// DataNucleus enhancer derives from `@persistable` annotations: table
/// name, flattened column list (inheritance is single-table: parent
/// columns first), primary key, and collection members (each mapped to a
/// join table `<entity>_<field>` with `(owner, idx, value)` columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityMeta {
    name: String,
    fields: Vec<(String, ColType)>,
    pk: usize,
    collections: Vec<String>,
}

impl EntityMeta {
    /// Starts building a meta for table `name`.
    pub fn builder(name: &str) -> EntityMetaBuilder {
        EntityMetaBuilder {
            meta: EntityMeta {
                name: name.to_string(),
                fields: Vec::new(),
                pk: usize::MAX,
                collections: Vec::new(),
            },
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flattened `(column, type)` list.
    pub fn fields(&self) -> &[(String, ColType)] {
        &self.fields
    }

    /// Primary-key column index.
    pub fn pk(&self) -> usize {
        self.pk
    }

    /// Collection member names.
    pub fn collections(&self) -> &[String] {
        &self.collections
    }

    /// Join-table name for collection member `i`.
    pub fn collection_table(&self, i: usize) -> String {
        format!("{}_{}", self.name, self.collections[i])
    }

    /// Column index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(f, _)| f == name)
    }

    /// Creates an empty (all-NULL) enhanced instance of this entity.
    pub fn instantiate(&self) -> EntityObject {
        EntityObject {
            meta: Arc::new(self.clone()),
            values: vec![Value::Null; self.fields.len()],
            collections: vec![Vec::new(); self.collections.len()],
            dirty: 0,
            collections_dirty: false,
        }
    }
}

/// Builder for [`EntityMeta`].
#[derive(Debug)]
pub struct EntityMetaBuilder {
    meta: EntityMeta,
}

impl EntityMetaBuilder {
    /// Adds a column.
    #[must_use]
    pub fn field(mut self, name: &str, ty: ColType) -> Self {
        self.meta.fields.push((name.to_string(), ty));
        self
    }

    /// Adds the primary-key column.
    #[must_use]
    pub fn pk_field(mut self, name: &str, ty: ColType) -> Self {
        self.meta.pk = self.meta.fields.len();
        self.meta.fields.push((name.to_string(), ty));
        self
    }

    /// Single-table inheritance: prepends every parent column (and the
    /// parent's primary key, if this entity has none yet) — the ExtTest
    /// shape.
    #[must_use]
    pub fn extends(mut self, parent: &EntityMeta) -> Self {
        let own = std::mem::take(&mut self.meta.fields);
        self.meta.fields = parent.fields.to_vec();
        if self.meta.pk == usize::MAX {
            self.meta.pk = parent.pk;
        } else {
            self.meta.pk += parent.fields.len();
        }
        self.meta.fields.extend(own);
        self.meta
            .collections
            .extend(parent.collections.iter().cloned());
        self
    }

    /// Adds an integer-collection member (the CollectionTest shape).
    #[must_use]
    pub fn collection(mut self, name: &str) -> Self {
        self.meta.collections.push(name.to_string());
        self
    }

    /// Finishes the meta.
    ///
    /// # Panics
    ///
    /// Panics if no primary key was declared.
    pub fn build(self) -> EntityMeta {
        assert!(
            self.meta.pk != usize::MAX,
            "entity {} needs a primary key",
            self.meta.name
        );
        self.meta
    }
}

/// An enhanced persistent instance: field values plus the StateManager's
/// dirty bitmap (§5 field-level tracking reuses exactly this).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityObject {
    pub(crate) meta: Arc<EntityMeta>,
    pub(crate) values: Vec<Value>,
    pub(crate) collections: Vec<Vec<i64>>,
    pub(crate) dirty: u64,
    pub(crate) collections_dirty: bool,
}

impl EntityObject {
    /// The entity's metadata.
    pub fn meta(&self) -> &EntityMeta {
        &self.meta
    }

    /// Reads field `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Writes field `i`, marking it dirty (the enhancer-instrumented
    /// setter).
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
        self.dirty |= 1 << i;
    }

    /// The primary-key value.
    pub fn key(&self) -> &Value {
        &self.values[self.meta.pk]
    }

    /// Reads collection member `c`.
    pub fn collection(&self, c: usize) -> &[i64] {
        &self.collections[c]
    }

    /// Replaces collection member `c`.
    pub fn set_collection(&mut self, c: usize, items: Vec<i64>) {
        self.collections[c] = items;
        self.collections_dirty = true;
    }

    /// Indices of fields written since the last commit/load.
    pub fn dirty_fields(&self) -> Vec<usize> {
        (0..self.values.len())
            .filter(|i| self.dirty & (1 << i) != 0)
            .collect()
    }

    pub(crate) fn clear_dirty(&mut self) {
        self.dirty = 0;
        self.collections_dirty = false;
    }

    /// Clears the dirty bitmap (used by providers after loading or
    /// committing an object).
    pub fn clear_dirty_public(&mut self) {
        self.clear_dirty();
    }

    /// Clones the full value row (providers ship this to the backend).
    pub fn values_vec(&self) -> Vec<Value> {
        self.values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> EntityMeta {
        EntityMeta::builder("person")
            .pk_field("id", ColType::Int)
            .field("name", ColType::Text)
            .build()
    }

    #[test]
    fn builder_flat() {
        let m = person();
        assert_eq!(m.name(), "person");
        assert_eq!(m.pk(), 0);
        assert_eq!(m.field_index("name"), Some(1));
        assert_eq!(m.field_index("ghost"), None);
    }

    #[test]
    fn builder_inheritance_flattens_parent_first() {
        let base = person();
        let emp = EntityMeta::builder("employee")
            .field("salary", ColType::Int)
            .extends(&base)
            .build();
        assert_eq!(
            emp.fields()
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["id", "name", "salary"]
        );
        assert_eq!(emp.pk(), 0, "inherits the parent key");
    }

    #[test]
    fn builder_collection_tables() {
        let m = EntityMeta::builder("cart")
            .pk_field("id", ColType::Int)
            .collection("items")
            .build();
        assert_eq!(m.collections(), ["items"]);
        assert_eq!(m.collection_table(0), "cart_items");
    }

    #[test]
    #[should_panic(expected = "needs a primary key")]
    fn missing_pk_panics() {
        let _ = EntityMeta::builder("t").field("x", ColType::Int).build();
    }

    #[test]
    fn dirty_tracking() {
        let mut o = person().instantiate();
        assert!(o.dirty_fields().is_empty());
        o.set(1, Value::Str("x".into()));
        assert_eq!(o.dirty_fields(), vec![1]);
        o.clear_dirty();
        assert!(o.dirty_fields().is_empty());
    }
}
