//! Tables, executor, transactions, and the two front doors (SQL strings
//! vs `DBPersistable` direct calls).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use espresso_nvm::NvmDevice;
use parking_lot::Mutex;

use crate::sql::{parse, ColType, Predicate, Statement, Value};
use crate::wal::{Redo, Wal};

/// Errors reported by the database.
#[derive(Debug)]
pub enum DbError {
    /// SQL could not be parsed.
    Syntax(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Duplicate primary key on insert.
    DuplicateKey(Value),
    /// Row arity does not match the schema.
    WrongArity {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A table with this name already exists.
    TableExists(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// The write-ahead log is full.
    LogFull,
    /// The device does not hold a database image.
    NotADatabase,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Syntax(m) => write!(f, "syntax error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column {c}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            DbError::WrongArity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::TableExists(t) => write!(f, "table {t} already exists"),
            DbError::IndexExists(i) => write!(f, "index {i} already exists"),
            DbError::LogFull => write!(f, "write-ahead log is full"),
            DbError::NotADatabase => write!(f, "device does not hold a database image"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result set of a statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
}

/// Phase counters backing the Figure 17 breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Nanoseconds tokenizing + parsing SQL text.
    pub parse_ns: u64,
    /// Nanoseconds executing statements (storage engine work).
    pub exec_ns: u64,
    /// Nanoseconds in WAL serialization and flushing.
    pub wal_ns: u64,
    /// Group flushes written to the WAL (length persists / rotations).
    pub wal_flushes: u64,
    /// Transactions made durable through those flushes. Under concurrent
    /// commits this exceeds `wal_flushes`: the difference is the group
    /// commit's batching win.
    pub wal_txns: u64,
    /// Statements executed.
    pub statements: u64,
    /// Rows returned by SELECTs.
    pub rows_read: u64,
    /// Rows written by INSERT/UPDATE/DELETE.
    pub rows_written: u64,
    /// SELECT predicates answered through a secondary index instead of a
    /// full scan.
    pub index_lookups: u64,
}

impl DbStats {
    /// Difference `self - earlier`.
    #[must_use]
    pub fn since(&self, earlier: &DbStats) -> DbStats {
        DbStats {
            parse_ns: self.parse_ns - earlier.parse_ns,
            exec_ns: self.exec_ns - earlier.exec_ns,
            wal_ns: self.wal_ns - earlier.wal_ns,
            wal_flushes: self.wal_flushes - earlier.wal_flushes,
            wal_txns: self.wal_txns - earlier.wal_txns,
            statements: self.statements - earlier.statements,
            rows_read: self.rows_read - earlier.rows_read,
            rows_written: self.rows_written - earlier.rows_written,
            index_lookups: self.index_lookups - earlier.index_lookups,
        }
    }
}

/// An in-memory secondary index: column value → set of primary keys.
/// Rebuilt from the rows on WAL replay (only the definition is logged).
#[derive(Debug, Clone)]
struct TableIndex {
    name: String,
    column: usize,
    map: BTreeMap<Value, BTreeSet<Value>>,
}

#[derive(Debug, Clone)]
struct Table {
    columns: Vec<(String, ColType)>,
    primary_key: usize,
    rows: BTreeMap<Value, Vec<Value>>,
    indexes: Vec<TableIndex>,
}

impl Table {
    fn new(columns: Vec<(String, ColType)>, primary_key: usize) -> Table {
        Table {
            columns,
            primary_key,
            rows: BTreeMap::new(),
            indexes: Vec::new(),
        }
    }

    fn col_index(&self, name: &str) -> Result<usize, DbError> {
        self.columns
            .iter()
            .position(|(c, _)| c == name)
            .ok_or_else(|| DbError::NoSuchColumn(name.to_string()))
    }

    fn index_on(&self, column: usize) -> Option<&TableIndex> {
        self.indexes.iter().find(|ix| ix.column == column)
    }

    /// Defines (and backfills) a secondary index over `column`.
    fn add_index(&mut self, name: String, column: usize) {
        let mut ix = TableIndex {
            name,
            column,
            map: BTreeMap::new(),
        };
        for row in self.rows.values() {
            ix.map
                .entry(row[column].clone())
                .or_default()
                .insert(row[self.primary_key].clone());
        }
        self.indexes.push(ix);
    }

    fn index_add(&mut self, row: &[Value]) {
        let pk = &row[self.primary_key];
        for ix in &mut self.indexes {
            ix.map
                .entry(row[ix.column].clone())
                .or_default()
                .insert(pk.clone());
        }
    }

    fn index_remove(&mut self, row: &[Value]) {
        let pk = &row[self.primary_key];
        for ix in &mut self.indexes {
            if let Some(set) = ix.map.get_mut(&row[ix.column]) {
                set.remove(pk);
                if set.is_empty() {
                    ix.map.remove(&row[ix.column]);
                }
            }
        }
    }

    /// Inserts or replaces a row (keyed by its own primary-key column),
    /// keeping every secondary index in step. All row mutation funnels
    /// through here and [`erase_row`](Self::erase_row) so no code path
    /// can leave an index stale.
    fn store_row(&mut self, row: Vec<Value>) {
        let key = row[self.primary_key].clone();
        if let Some(old) = self.rows.remove(&key) {
            self.index_remove(&old);
        }
        self.index_add(&row);
        self.rows.insert(key, row);
    }

    /// Removes a row by primary key, keeping every secondary index in
    /// step.
    fn erase_row(&mut self, key: &Value) -> Option<Vec<Value>> {
        let old = self.rows.remove(key)?;
        self.index_remove(&old);
        Some(old)
    }
}

enum Undo {
    DropTable(String),
    DropIndex(String, String),
    RemoveRow(String, Value),
    RestoreRow(String, Value, Vec<Value>),
}

/// Applies one undo record against the in-memory tables.
fn apply_undo(tables: &mut HashMap<String, Table>, op: Undo) {
    match op {
        Undo::DropTable(name) => {
            tables.remove(&name);
        }
        Undo::DropIndex(table, name) => {
            if let Some(t) = tables.get_mut(&table) {
                t.indexes.retain(|ix| ix.name != name);
            }
        }
        Undo::RemoveRow(table, key) => {
            if let Some(t) = tables.get_mut(&table) {
                t.erase_row(&key);
            }
        }
        Undo::RestoreRow(table, key, row) => {
            if let Some(t) = tables.get_mut(&table) {
                debug_assert_eq!(row[t.primary_key], key);
                t.store_row(row);
            }
        }
    }
}

struct Inner {
    wal: Wal,
    tables: HashMap<String, Table>,
    stats: DbStats,
    txn: Option<(Vec<Undo>, Vec<Redo>)>,
    /// Commits whose redo is applied in memory but not yet in the WAL:
    /// `(sequence, records)`, drained wholesale by the next group flush.
    group: VecDeque<(u64, Vec<Redo>)>,
    /// Next commit sequence number to hand out.
    next_seq: u64,
    /// Every commit sequence at or below this is durable in the WAL.
    durable_seq: u64,
    /// Sequence the current statement enqueued, for the connection to
    /// flush after releasing the engine lock (the group-commit window).
    pending_flush: Option<u64>,
    /// Auto-checkpoint knob: once the WAL tail (bytes a reopen would
    /// replay) exceeds this *and* outweighs a fresh snapshot, a
    /// checkpoint is written at the next commit-quiesce point.
    ckpt_threshold: usize,
    /// Records replayed by the `open` that produced this instance.
    replayed: usize,
}

/// An embedded database bound to one NVM device. Cheap to clone; clones
/// share the instance.
#[derive(Clone)]
pub struct Database {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.inner.lock().tables.len())
            .finish()
    }
}

impl Database {
    /// Formats a fresh database on `dev`.
    ///
    /// # Errors
    ///
    /// None today; signature reserved for layout validation.
    pub fn create(dev: NvmDevice) -> crate::Result<Database> {
        let wal = Wal::format(dev);
        Ok(Database {
            inner: Arc::new(Mutex::new(Inner {
                wal,
                tables: HashMap::new(),
                stats: DbStats::default(),
                txn: None,
                group: VecDeque::new(),
                next_seq: 1,
                durable_seq: 0,
                pending_flush: None,
                ckpt_threshold: DEFAULT_CKPT_THRESHOLD,
                replayed: 0,
            })),
        })
    }

    /// Opens an existing database, replaying only the committed WAL tail
    /// since the last checkpoint.
    ///
    /// # Errors
    ///
    /// [`DbError::NotADatabase`] on a foreign image.
    pub fn open(dev: NvmDevice) -> crate::Result<Database> {
        let wal = Wal::open(dev).ok_or(DbError::NotADatabase)?;
        let mut tables = HashMap::new();
        let mut replayed = 0;
        for record in wal.replay() {
            apply_redo(&mut tables, record);
            replayed += 1;
        }
        Ok(Database {
            inner: Arc::new(Mutex::new(Inner {
                wal,
                tables,
                stats: DbStats::default(),
                txn: None,
                group: VecDeque::new(),
                next_seq: 1,
                durable_seq: 0,
                pending_flush: None,
                ckpt_threshold: DEFAULT_CKPT_THRESHOLD,
                replayed,
            })),
        })
    }

    /// Records replayed by the `open` that produced this instance (0 for
    /// a freshly created database). After a checkpoint, reopening replays
    /// only the tail, so this stays small regardless of history length.
    pub fn replayed_records(&self) -> usize {
        self.inner.lock().replayed
    }

    /// Sets the auto-checkpoint threshold in WAL-tail bytes (0 forces a
    /// checkpoint attempt after every quiesced commit that grew the tail
    /// beyond one snapshot).
    pub fn set_checkpoint_threshold(&self, bytes: usize) {
        self.inner.lock().ckpt_threshold = bytes;
    }

    /// Writes a checkpoint now (if no explicit transaction is open):
    /// commits a snapshot of every table and advances the replay pointer,
    /// so the next `open` replays only records committed after this
    /// point. Returns whether a checkpoint was written.
    pub fn checkpoint(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.txn.is_some() {
            return false; // not quiesced
        }
        force_checkpoint(&mut inner)
    }

    /// Opens a connection (all connections share one serialized engine,
    /// like embedded H2).
    pub fn connect(&self) -> Connection {
        Connection { db: self.clone() }
    }

    /// Runs `stmt` under the engine lock, then — with the lock released —
    /// flushes whatever commit it enqueued. The unlock between apply and
    /// flush is the group-commit window: commits from other connections
    /// that land in it ride the same WAL flush.
    fn run(&self, stmt: Statement) -> crate::Result<QueryResult> {
        let mut inner = self.inner.lock();
        let result = run_statement(&mut inner, stmt);
        match result {
            Ok(result) => {
                self.finish_pending(inner)?;
                Ok(result)
            }
            Err(e) => Err(e),
        }
    }

    /// Makes commit `seq` durable. If another connection's flush already
    /// covered it (this commit was batched), returns immediately;
    /// otherwise this caller becomes the leader and drains every queued
    /// commit into one WAL append.
    fn flush_group(&self, seq: u64) -> crate::Result<()> {
        flush_group_locked(&mut self.inner.lock(), seq)
    }

    /// The one exit path for statements that may have enqueued a commit:
    /// takes the pending sequence, releases the engine lock (opening the
    /// group-commit window), and runs the leader flush. Every write path
    /// funnels through here so the acknowledge-implies-durable handshake
    /// cannot drift between call sites.
    fn finish_pending(&self, mut inner: parking_lot::MutexGuard<'_, Inner>) -> crate::Result<()> {
        let seq = inner.pending_flush.take();
        drop(inner);
        match seq {
            Some(seq) => self.flush_group(seq),
            None => Ok(()),
        }
    }

    /// Phase counters.
    pub fn stats(&self) -> DbStats {
        self.inner.lock().stats
    }

    /// Resets the phase counters.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = DbStats::default();
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Row count of a table.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn row_count(&self, table: &str) -> crate::Result<usize> {
        let inner = self.inner.lock();
        inner
            .tables
            .get(table)
            .map(|t| t.rows.len())
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))
    }
}

fn apply_redo(tables: &mut HashMap<String, Table>, record: Redo) {
    match record {
        Redo::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            tables.insert(name, Table::new(columns, primary_key));
        }
        Redo::Insert { table, row } => {
            if let Some(t) = tables.get_mut(&table) {
                t.store_row(row);
            }
        }
        Redo::Update { table, key, row } => {
            if let Some(t) = tables.get_mut(&table) {
                debug_assert_eq!(row[t.primary_key], key);
                t.store_row(row);
            }
        }
        Redo::Delete { table, key } => {
            if let Some(t) = tables.get_mut(&table) {
                t.erase_row(&key);
            }
        }
        Redo::CreateIndex {
            table,
            name,
            column,
        } => {
            if let Some(t) = tables.get_mut(&table) {
                if column < t.columns.len() && !t.indexes.iter().any(|ix| ix.name == name) {
                    t.add_index(name, column);
                }
            }
        }
    }
}

/// A connection: the JDBC-like SQL boundary plus the `DBPersistable`
/// direct interface (§5).
#[derive(Debug, Clone)]
pub struct Connection {
    db: Database,
}

impl Connection {
    /// Executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Syntax and execution errors.
    pub fn execute(&mut self, sql: &str) -> crate::Result<QueryResult> {
        self.execute_params(sql, &[])
    }

    /// Executes one SQL statement with `?` placeholders bound from
    /// `params` (the prepared-statement path DataNucleus uses).
    ///
    /// # Errors
    ///
    /// Syntax and execution errors.
    pub fn execute_params(&mut self, sql: &str, params: &[Value]) -> crate::Result<QueryResult> {
        let t0 = Instant::now();
        let stmt = parse(sql, params).map_err(DbError::Syntax)?;
        let parse_ns = t0.elapsed().as_nanos() as u64;
        self.db.inner.lock().stats.parse_ns += parse_ns;
        self.db.run(stmt)
    }

    // ---- DBPersistable direct interface (§5) ----

    /// Creates a table without SQL.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`].
    pub fn create_table_direct(
        &mut self,
        name: &str,
        columns: Vec<(String, ColType)>,
        primary_key: usize,
    ) -> crate::Result<()> {
        self.db
            .run(Statement::CreateTable {
                name: name.to_string(),
                columns,
                primary_key,
            })
            .map(|_| ())
    }

    /// `persistInTable`: ships an object's fields straight to storage.
    ///
    /// # Errors
    ///
    /// Arity / key errors.
    pub fn persist_row(&mut self, table: &str, row: Vec<Value>) -> crate::Result<()> {
        self.db
            .run(Statement::Insert {
                table: table.to_string(),
                values: row,
            })
            .map(|_| ())
    }

    /// Point lookup by primary key, no SQL.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn find_row(&mut self, table: &str, key: &Value) -> crate::Result<Option<Vec<Value>>> {
        let mut inner = self.db.inner.lock();
        let t0 = Instant::now();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let row = t.rows.get(key).cloned();
        inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
        inner.stats.statements += 1;
        if row.is_some() {
            inner.stats.rows_read += 1;
        }
        Ok(row)
    }

    /// Equality scan over any column, no SQL (used by the PJO provider to
    /// load collection members).
    ///
    /// # Errors
    ///
    /// Table/column errors.
    pub fn find_rows_by(
        &mut self,
        table: &str,
        column: usize,
        value: &Value,
    ) -> crate::Result<Vec<Vec<Value>>> {
        let mut inner = self.db.inner.lock();
        let t0 = Instant::now();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        if column >= t.columns.len() {
            return Err(DbError::NoSuchColumn(format!("#{column}")));
        }
        let mut used_index = false;
        let rows: Vec<Vec<Value>> = if let Some(ix) = t.index_on(column) {
            used_index = true;
            ix.map
                .get(value)
                .into_iter()
                .flatten()
                .filter_map(|k| t.rows.get(k))
                .cloned()
                .collect()
        } else {
            t.rows
                .values()
                .filter(|r| &r[column] == value)
                .cloned()
                .collect()
        };
        inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
        inner.stats.statements += 1;
        inner.stats.rows_read += rows.len() as u64;
        inner.stats.index_lookups += u64::from(used_index);
        Ok(rows)
    }

    /// Field-level update (§5 field-level tracking): only the listed
    /// `(column index, value)` pairs are touched.
    ///
    /// # Errors
    ///
    /// Table/key errors.
    pub fn update_fields(
        &mut self,
        table: &str,
        key: &Value,
        fields: &[(usize, Value)],
    ) -> crate::Result<usize> {
        let mut inner = self.db.inner.lock();
        let t0 = Instant::now();
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let Some(row) = t.rows.get(key).cloned() else {
            inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
            return Ok(0);
        };
        let mut new_row = row.clone();
        for (i, v) in fields {
            new_row[*i] = v.clone();
        }
        t.store_row(new_row.clone());
        inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
        inner.stats.statements += 1;
        inner.stats.rows_written += 1;
        let undo = Undo::RestoreRow(table.to_string(), key.clone(), row);
        let redo = Redo::Update {
            table: table.to_string(),
            key: key.clone(),
            row: new_row,
        };
        finish_write(&mut inner, vec![undo], vec![redo]);
        self.db.finish_pending(inner)?;
        Ok(1)
    }

    /// Point delete by primary key, no SQL.
    ///
    /// # Errors
    ///
    /// Table errors.
    pub fn delete_row(&mut self, table: &str, key: &Value) -> crate::Result<usize> {
        let pk = pk_name(&self.db.inner.lock(), table)?;
        self.db
            .run(Statement::Delete {
                table: table.to_string(),
                filter: (pk, key.clone()),
            })
            .map(|r| r.affected)
    }

    /// Begins an explicit transaction.
    pub fn begin(&mut self) {
        let mut inner = self.db.inner.lock();
        if inner.txn.is_none() {
            inner.txn = Some((Vec::new(), Vec::new()));
        }
    }

    /// Commits the explicit transaction (the WAL group flush happens
    /// here).
    ///
    /// # Errors
    ///
    /// [`DbError::LogFull`] when neither the active log area nor a
    /// rotating checkpoint can hold the state.
    pub fn commit(&mut self) -> crate::Result<()> {
        let mut inner = self.db.inner.lock();
        let Some((_, redo)) = inner.txn.take() else {
            return Ok(());
        };
        enqueue_commit(&mut inner, redo);
        self.db.finish_pending(inner)
    }

    /// Rolls the explicit transaction back.
    pub fn rollback(&mut self) {
        let mut inner = self.db.inner.lock();
        let Some((undo, _)) = inner.txn.take() else {
            return;
        };
        for op in undo.into_iter().rev() {
            apply_undo(&mut inner.tables, op);
        }
    }
}

/// Default WAL-tail size that arms an automatic checkpoint (16 KiB).
const DEFAULT_CKPT_THRESHOLD: usize = 16 << 10;

/// Serializes the whole engine state as redo records: `CreateTable` per
/// table (which resets it on replay) followed by its index definitions
/// and its rows, in deterministic (sorted) table order. Index contents
/// are not logged — replay rebuilds them as the row records stream in.
fn snapshot_records(tables: &HashMap<String, Table>) -> Vec<Redo> {
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let t = &tables[name];
        out.push(Redo::CreateTable {
            name: name.clone(),
            columns: t.columns.clone(),
            primary_key: t.primary_key,
        });
        for ix in &t.indexes {
            out.push(Redo::CreateIndex {
                table: name.clone(),
                name: ix.name.clone(),
                column: ix.column,
            });
        }
        for row in t.rows.values() {
            out.push(Redo::Insert {
                table: name.clone(),
                row: row.clone(),
            });
        }
    }
    out
}

/// Writes a rotating checkpoint unconditionally (caller checks
/// quiescence). Returns whether the WAL accepted it. On success, every
/// commit applied in memory — including any still queued for a group
/// flush — is embodied by the snapshot, so the queue is drained and the
/// durable sequence catches up.
fn force_checkpoint(inner: &mut Inner) -> bool {
    let t0 = Instant::now();
    let snapshot = snapshot_records(&inner.tables);
    let ok = inner.wal.checkpoint(&snapshot);
    inner.stats.wal_ns += t0.elapsed().as_nanos() as u64;
    if ok {
        inner.stats.wal_flushes += 1;
        inner.stats.wal_txns += inner.group.len() as u64;
        inner.group.clear();
        inner.durable_seq = inner.next_seq - 1;
    }
    ok
}

/// The group-commit leader path: drains every queued commit into one WAL
/// append (a single length persist for the whole batch). Falls back to a
/// rotating checkpoint when the active area is full — the snapshot
/// reconstructs the in-memory state, which already includes the drained
/// commits, so rotation both compacts the log and lands the batch.
fn flush_group_locked(inner: &mut Inner, seq: u64) -> crate::Result<()> {
    if inner.durable_seq >= seq {
        return Ok(()); // batched into an earlier leader's flush
    }
    let drained: Vec<(u64, Vec<Redo>)> = inner.group.drain(..).collect();
    debug_assert!(
        drained.iter().any(|(s, _)| *s == seq),
        "sequence neither durable nor queued"
    );
    let last = drained.last().map_or(seq, |(s, _)| *s);
    let t0 = Instant::now();
    let batches: Vec<&[Redo]> = drained.iter().map(|(_, r)| r.as_slice()).collect();
    let ok = inner.wal.commit_batch(&batches);
    inner.stats.wal_ns += t0.elapsed().as_nanos() as u64;
    if ok {
        inner.durable_seq = last;
        inner.stats.wal_flushes += 1;
        inner.stats.wal_txns += drained.len() as u64;
        if inner.txn.is_none() {
            maybe_checkpoint(inner);
        }
        return Ok(());
    }
    if inner.txn.is_none() && force_checkpoint(inner) {
        inner.stats.wal_txns += drained.len() as u64;
        return Ok(());
    }
    // Could not persist (snapshot larger than an area, or a transaction
    // holds the engine mid-flight): requeue so a later leader retries.
    for batch in drained.into_iter().rev() {
        inner.group.push_front(batch);
    }
    Err(DbError::LogFull)
}

/// Auto-checkpoint policy, run at commit-quiesce points: checkpoint when
/// the tail a reopen would replay exceeds the threshold *and* is worth
/// more than the snapshot it would be replaced by (a cheap row-count
/// estimate keeps this O(1) per commit). A full WAL is ignored — the
/// checkpoint is an optimization, never a correctness requirement.
fn maybe_checkpoint(inner: &mut Inner) {
    debug_assert!(inner.txn.is_none(), "checkpoints only at quiesce points");
    let tail = inner.wal.tail_bytes();
    if tail < inner.ckpt_threshold.max(1) {
        return;
    }
    // ~32 bytes per row + per-table overhead approximates the snapshot.
    let estimate: usize = inner
        .tables
        .values()
        .map(|t| 64 + t.rows.len() * 32)
        .sum::<usize>();
    if tail > estimate {
        let _ = force_checkpoint(inner);
    }
}

/// Whether a normalised range can hold no value at all (guards the
/// `BTreeMap::range` panic on inverted bounds).
fn range_is_empty(lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    match (lo, hi) {
        (Bound::Included(a), Bound::Included(b)) => a > b,
        (Bound::Included(a), Bound::Excluded(b))
        | (Bound::Excluded(a), Bound::Included(b))
        | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => false,
    }
}

/// Whether `v` falls inside `[lo, hi]` — the full-scan fallback for
/// range predicates over unindexed non-key columns.
fn value_in_bounds(v: &Value, lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    (match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => v >= b,
        Bound::Excluded(b) => v > b,
    }) && (match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => v <= b,
        Bound::Excluded(b) => v < b,
    })
}

fn pk_name(inner: &Inner, table: &str) -> crate::Result<String> {
    let t = inner
        .tables
        .get(table)
        .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
    Ok(t.columns[t.primary_key].0.clone())
}

/// Queues a commit's redo for the next group flush and records its
/// sequence in `pending_flush` — the connection flushes after dropping
/// the engine lock, opening the window in which concurrent commits pile
/// into one batch.
fn enqueue_commit(inner: &mut Inner, redo: Vec<Redo>) {
    if redo.is_empty() {
        return;
    }
    let seq = inner.next_seq;
    inner.next_seq += 1;
    inner.group.push_back((seq, redo));
    inner.pending_flush = Some(seq);
}

fn finish_write(inner: &mut Inner, undo: Vec<Undo>, redo: Vec<Redo>) {
    if let Some((u, r)) = &mut inner.txn {
        u.extend(undo);
        r.extend(redo);
    } else {
        enqueue_commit(inner, redo);
    }
}

fn run_statement(inner: &mut Inner, stmt: Statement) -> crate::Result<QueryResult> {
    let t0 = Instant::now();
    inner.stats.statements += 1;
    let result = match stmt {
        Statement::Begin => {
            if inner.txn.is_none() {
                inner.txn = Some((Vec::new(), Vec::new()));
            }
            Ok(QueryResult::default())
        }
        Statement::Commit => {
            inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
            let Some((_, redo)) = inner.txn.take() else {
                return Ok(QueryResult::default());
            };
            enqueue_commit(inner, redo);
            return Ok(QueryResult::default());
        }
        Statement::Rollback => {
            let undo = inner.txn.take().map(|(u, _)| u).unwrap_or_default();
            for op in undo.into_iter().rev() {
                apply_undo(&mut inner.tables, op);
            }
            Ok(QueryResult::default())
        }
        Statement::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            if inner.tables.contains_key(&name) {
                Err(DbError::TableExists(name))
            } else {
                inner
                    .tables
                    .insert(name.clone(), Table::new(columns.clone(), primary_key));
                let undo = Undo::DropTable(name.clone());
                let redo = Redo::CreateTable {
                    name,
                    columns,
                    primary_key,
                };
                inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
                finish_write(inner, vec![undo], vec![redo]);
                return Ok(QueryResult::default());
            }
        }
        Statement::Insert { table, values } => {
            let t = inner
                .tables
                .get_mut(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            if values.len() != t.columns.len() {
                Err(DbError::WrongArity {
                    expected: t.columns.len(),
                    got: values.len(),
                })
            } else {
                let key = values[t.primary_key].clone();
                if t.rows.contains_key(&key) {
                    Err(DbError::DuplicateKey(key))
                } else {
                    t.store_row(values.clone());
                    inner.stats.rows_written += 1;
                    let undo = Undo::RemoveRow(table.clone(), key);
                    let redo = Redo::Insert { table, row: values };
                    inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
                    finish_write(inner, vec![undo], vec![redo]);
                    return Ok(QueryResult {
                        affected: 1,
                        ..QueryResult::default()
                    });
                }
            }
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => {
            if inner
                .tables
                .values()
                .any(|t| t.indexes.iter().any(|ix| ix.name == name))
            {
                Err(DbError::IndexExists(name))
            } else {
                let t = inner
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let ci = t.col_index(&column)?;
                t.add_index(name.clone(), ci);
                let undo = Undo::DropIndex(table.clone(), name.clone());
                let redo = Redo::CreateIndex {
                    table,
                    name,
                    column: ci,
                };
                inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
                finish_write(inner, vec![undo], vec![redo]);
                return Ok(QueryResult::default());
            }
        }
        Statement::Select { table, filter } => {
            let t = inner
                .tables
                .get(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            let columns: Vec<String> = t.columns.iter().map(|(c, _)| c.clone()).collect();
            let mut used_index = false;
            let rows: Vec<Vec<Value>> = match &filter {
                Some(Predicate::Eq(col, v)) => {
                    let ci = t.col_index(col)?;
                    if ci == t.primary_key {
                        t.rows.get(v).cloned().into_iter().collect()
                    } else if let Some(ix) = t.index_on(ci) {
                        used_index = true;
                        ix.map
                            .get(v)
                            .into_iter()
                            .flatten()
                            .filter_map(|k| t.rows.get(k))
                            .cloned()
                            .collect()
                    } else {
                        t.rows.values().filter(|r| &r[ci] == v).cloned().collect()
                    }
                }
                Some(Predicate::Range { column, lo, hi }) => {
                    let ci = t.col_index(column)?;
                    if range_is_empty(lo, hi) {
                        Vec::new()
                    } else if ci == t.primary_key {
                        t.rows
                            .range((lo.clone(), hi.clone()))
                            .map(|(_, r)| r.clone())
                            .collect()
                    } else if let Some(ix) = t.index_on(ci) {
                        used_index = true;
                        ix.map
                            .range((lo.clone(), hi.clone()))
                            .flat_map(|(_, pks)| pks.iter().filter_map(|k| t.rows.get(k)))
                            .cloned()
                            .collect()
                    } else {
                        t.rows
                            .values()
                            .filter(|r| value_in_bounds(&r[ci], lo, hi))
                            .cloned()
                            .collect()
                    }
                }
                None => t.rows.values().cloned().collect(),
            };
            inner.stats.rows_read += rows.len() as u64;
            inner.stats.index_lookups += u64::from(used_index);
            Ok(QueryResult {
                affected: rows.len(),
                columns,
                rows,
            })
        }
        Statement::Update {
            table,
            sets,
            filter,
        } => {
            let t = inner
                .tables
                .get_mut(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            let fci = t.col_index(&filter.0)?;
            let set_idx: Vec<(usize, Value)> = {
                let mut v = Vec::new();
                for (c, val) in &sets {
                    v.push((t.col_index(c)?, val.clone()));
                }
                v
            };
            let keys: Vec<Value> = if fci == t.primary_key {
                t.rows
                    .contains_key(&filter.1)
                    .then(|| filter.1.clone())
                    .into_iter()
                    .collect()
            } else {
                t.rows
                    .iter()
                    .filter(|(_, r)| r[fci] == filter.1)
                    .map(|(k, _)| k.clone())
                    .collect()
            };
            let mut undo = Vec::new();
            let mut redo = Vec::new();
            for key in &keys {
                let old = t.rows.get(key).cloned().expect("key listed above");
                let mut new_row = old.clone();
                for (i, v) in &set_idx {
                    new_row[*i] = v.clone();
                }
                t.store_row(new_row.clone());
                undo.push(Undo::RestoreRow(table.clone(), key.clone(), old));
                redo.push(Redo::Update {
                    table: table.clone(),
                    key: key.clone(),
                    row: new_row,
                });
            }
            inner.stats.rows_written += keys.len() as u64;
            let affected = keys.len();
            inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
            finish_write(inner, undo, redo);
            return Ok(QueryResult {
                affected,
                ..QueryResult::default()
            });
        }
        Statement::Delete { table, filter } => {
            let t = inner
                .tables
                .get_mut(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            let fci = t.col_index(&filter.0)?;
            let keys: Vec<Value> = if fci == t.primary_key {
                t.rows
                    .contains_key(&filter.1)
                    .then(|| filter.1.clone())
                    .into_iter()
                    .collect()
            } else {
                t.rows
                    .iter()
                    .filter(|(_, r)| r[fci] == filter.1)
                    .map(|(k, _)| k.clone())
                    .collect()
            };
            let mut undo = Vec::new();
            let mut redo = Vec::new();
            for key in &keys {
                let old = t.erase_row(key).expect("key listed above");
                undo.push(Undo::RestoreRow(table.clone(), key.clone(), old));
                redo.push(Redo::Delete {
                    table: table.clone(),
                    key: key.clone(),
                });
            }
            inner.stats.rows_written += keys.len() as u64;
            let affected = keys.len();
            inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
            finish_write(inner, undo, redo);
            return Ok(QueryResult {
                affected,
                ..QueryResult::default()
            });
        }
    };
    inner.stats.exec_ns += t0.elapsed().as_nanos() as u64;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    fn db() -> (NvmDevice, Database, Connection) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let db = Database::create(dev.clone()).unwrap();
        let conn = db.connect();
        (dev, db, conn)
    }

    fn setup_person(conn: &mut Connection) {
        conn.execute("CREATE TABLE person (id INT PRIMARY KEY, name TEXT, age INT)")
            .unwrap();
        conn.execute("INSERT INTO person VALUES (1, 'Ann', 30)")
            .unwrap();
        conn.execute("INSERT INTO person VALUES (2, 'Bob', 40)")
            .unwrap();
    }

    #[test]
    fn crud_roundtrip() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        let r = conn.execute("SELECT * FROM person WHERE id = 2").unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Int(2),
                Value::Str("Bob".into()),
                Value::Int(40)
            ]]
        );
        assert_eq!(
            conn.execute("UPDATE person SET age = 41 WHERE id = 2")
                .unwrap()
                .affected,
            1
        );
        let r = conn.execute("SELECT * FROM person WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][2], Value::Int(41));
        assert_eq!(
            conn.execute("DELETE FROM person WHERE id = 1")
                .unwrap()
                .affected,
            1
        );
        assert_eq!(conn.execute("SELECT * FROM person").unwrap().rows.len(), 1);
    }

    #[test]
    fn non_pk_filters_scan() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("INSERT INTO person VALUES (3, 'Ann', 50)")
            .unwrap();
        let r = conn
            .execute("SELECT * FROM person WHERE name = 'Ann'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(
            conn.execute("UPDATE person SET age = 0 WHERE name = 'Ann'")
                .unwrap()
                .affected,
            2
        );
        assert_eq!(
            conn.execute("DELETE FROM person WHERE name = 'Ann'")
                .unwrap()
                .affected,
            2
        );
    }

    #[test]
    fn constraint_errors() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        assert!(matches!(
            conn.execute("INSERT INTO person VALUES (1, 'Dup', 1)"),
            Err(DbError::DuplicateKey(_))
        ));
        assert!(matches!(
            conn.execute("INSERT INTO person VALUES (9, 'Short')"),
            Err(DbError::WrongArity { .. })
        ));
        assert!(matches!(
            conn.execute("SELECT * FROM ghost"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            conn.execute("SELECT * FROM person WHERE ghost = 1"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            conn.execute("CREATE TABLE person (id INT PRIMARY KEY)"),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn committed_data_survives_crash() {
        let (dev, _db, mut conn) = db();
        setup_person(&mut conn);
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        let mut conn2 = db2.connect();
        let r = conn2.execute("SELECT * FROM person").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn explicit_transaction_commits_atomically() {
        let (dev, _db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO person VALUES (3, 'Cid', 20)")
            .unwrap();
        conn.execute("UPDATE person SET age = 99 WHERE id = 1")
            .unwrap();
        // Crash before commit: neither change is durable.
        dev.crash();
        let db2 = Database::open(dev.clone()).unwrap();
        let mut c2 = db2.connect();
        assert_eq!(c2.execute("SELECT * FROM person").unwrap().rows.len(), 2);
        let r = c2.execute("SELECT * FROM person WHERE id = 1").unwrap();
        assert_eq!(r.rows[0][2], Value::Int(30));
        // Now commit properly and crash.
        c2.execute("BEGIN").unwrap();
        c2.execute("INSERT INTO person VALUES (3, 'Cid', 20)")
            .unwrap();
        c2.execute("UPDATE person SET age = 99 WHERE id = 1")
            .unwrap();
        c2.execute("COMMIT").unwrap();
        dev.crash();
        let db3 = Database::open(dev).unwrap();
        let mut c3 = db3.connect();
        assert_eq!(c3.execute("SELECT * FROM person").unwrap().rows.len(), 3);
        assert_eq!(
            c3.execute("SELECT * FROM person WHERE id = 1")
                .unwrap()
                .rows[0][2],
            Value::Int(99)
        );
    }

    #[test]
    fn rollback_restores_memory_state() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("BEGIN").unwrap();
        conn.execute("DELETE FROM person WHERE id = 1").unwrap();
        conn.execute("INSERT INTO person VALUES (7, 'Tmp', 1)")
            .unwrap();
        conn.execute("UPDATE person SET name = 'X' WHERE id = 2")
            .unwrap();
        conn.execute("ROLLBACK").unwrap();
        let r = conn.execute("SELECT * FROM person").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::Str("Ann".into()));
        assert_eq!(r.rows[1][1], Value::Str("Bob".into()));
    }

    #[test]
    fn direct_interface_matches_sql_results() {
        let (_dev, db, mut conn) = db();
        conn.create_table_direct(
            "person",
            vec![("id".into(), ColType::Int), ("name".into(), ColType::Text)],
            0,
        )
        .unwrap();
        conn.persist_row("person", vec![Value::Int(1), Value::Str("Ann".into())])
            .unwrap();
        assert_eq!(
            conn.find_row("person", &Value::Int(1)).unwrap(),
            Some(vec![Value::Int(1), Value::Str("Ann".into())])
        );
        conn.update_fields("person", &Value::Int(1), &[(1, Value::Str("Ann2".into()))])
            .unwrap();
        let via_sql = conn.execute("SELECT * FROM person WHERE id = 1").unwrap();
        assert_eq!(via_sql.rows[0][1], Value::Str("Ann2".into()));
        assert_eq!(conn.delete_row("person", &Value::Int(1)).unwrap(), 1);
        assert_eq!(db.row_count("person").unwrap(), 0);
    }

    #[test]
    fn direct_interface_skips_parse_time() {
        let (_dev, db, mut conn) = db();
        conn.create_table_direct(
            "t",
            vec![("id".into(), ColType::Int), ("v".into(), ColType::Int)],
            0,
        )
        .unwrap();
        db.reset_stats();
        for i in 0..100 {
            conn.persist_row("t", vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let direct = db.stats();
        assert_eq!(direct.parse_ns, 0, "no SQL text on the direct path");
        db.reset_stats();
        for i in 100..200 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
                .unwrap();
        }
        let sql = db.stats();
        assert!(sql.parse_ns > 0, "SQL path pays for parsing");
    }

    #[test]
    fn explicit_checkpoint_trims_reopen_replay() {
        let (dev, db, mut conn) = db();
        setup_person(&mut conn);
        for i in 10..110 {
            conn.execute(&format!("INSERT INTO person VALUES ({i}, 'P', {i})"))
                .unwrap();
        }
        assert!(db.checkpoint());
        conn.execute("INSERT INTO person VALUES (999, 'Tail', 1)")
            .unwrap();
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        // Snapshot (1 create + 102 inserts) + 1 tail insert, not the
        // 102-statement history plus creates.
        assert_eq!(db2.replayed_records(), 104);
        assert_eq!(db2.row_count("person").unwrap(), 103);
        let mut c2 = db2.connect();
        let r = c2.execute("SELECT * FROM person WHERE id = 999").unwrap();
        assert_eq!(r.rows[0][1], Value::Str("Tail".into()));
    }

    #[test]
    fn auto_checkpoint_bounds_reopen_replay() {
        let (dev, db, mut conn) = db();
        db.set_checkpoint_threshold(0); // checkpoint whenever it pays off
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        // Heavy update churn on few rows: history grows, state does not.
        for i in 0..20 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
                .unwrap();
        }
        for round in 0..50 {
            for i in 0..20 {
                conn.execute(&format!("UPDATE t SET v = {round} WHERE id = {i}"))
                    .unwrap();
            }
        }
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        assert_eq!(db2.row_count("t").unwrap(), 20);
        assert!(
            db2.replayed_records() < 200,
            "replayed {} records; auto-checkpoint should bound the tail far below the ~1020-record history",
            db2.replayed_records()
        );
        let mut c2 = db2.connect();
        let r = c2.execute("SELECT * FROM t WHERE id = 7").unwrap();
        assert_eq!(r.rows[0][1], Value::Int(49));
    }

    #[test]
    fn group_commit_batches_queued_txns_under_one_flush() {
        let (dev, db, mut conn) = db();
        conn.create_table_direct(
            "t",
            vec![("id".into(), ColType::Int), ("v".into(), ColType::Int)],
            0,
        )
        .unwrap();
        db.reset_stats();
        // Deterministic window: apply + enqueue two commits under the
        // engine lock (exactly what two racing connections do inside the
        // group-commit window), then run one leader flush.
        let (seq1, seq2) = {
            let mut inner = db.inner.lock();
            run_statement(
                &mut inner,
                Statement::Insert {
                    table: "t".into(),
                    values: vec![Value::Int(1), Value::Int(10)],
                },
            )
            .unwrap();
            let seq1 = inner.pending_flush.take().unwrap();
            run_statement(
                &mut inner,
                Statement::Insert {
                    table: "t".into(),
                    values: vec![Value::Int(2), Value::Int(20)],
                },
            )
            .unwrap();
            let seq2 = inner.pending_flush.take().unwrap();
            (seq1, seq2)
        };
        db.flush_group(seq2).unwrap();
        db.flush_group(seq1).unwrap(); // already covered by the leader
        let s = db.stats();
        assert_eq!(s.wal_txns, 2, "both transactions durable");
        assert_eq!(s.wal_flushes, 1, "one WAL flush for the batch");
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        assert_eq!(db2.row_count("t").unwrap(), 2);
    }

    #[test]
    fn concurrent_autocommits_all_survive_a_crash() {
        let (dev, db, mut conn) = db();
        conn.create_table_direct(
            "t",
            vec![("id".into(), ColType::Int), ("v".into(), ColType::Int)],
            0,
        )
        .unwrap();
        db.reset_stats();
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let db = db.clone();
                s.spawn(move || {
                    let mut conn = db.connect();
                    for i in 0..per_thread {
                        let id = t * per_thread + i;
                        conn.persist_row("t", vec![Value::Int(id as i64), Value::Int(id as i64)])
                            .unwrap();
                    }
                });
            }
        });
        let s = db.stats();
        assert_eq!(s.wal_txns, (threads * per_thread) as u64);
        assert!(
            s.wal_flushes <= s.wal_txns,
            "a flush never covers less than one txn"
        );
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        assert_eq!(db2.row_count("t").unwrap(), threads * per_thread);
    }

    #[test]
    fn full_log_rotates_instead_of_failing() {
        // A device so small the WAL areas hold only a handful of records:
        // update churn on a tiny table must keep committing forever,
        // because the rotation fallback reclaims the history each time
        // the active area fills.
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 10));
        let db = Database::create(dev.clone()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for i in 0..8 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
                .unwrap();
        }
        for round in 0..200 {
            for i in 0..8 {
                conn.execute(&format!("UPDATE t SET v = {round} WHERE id = {i}"))
                    .unwrap();
            }
        }
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        assert_eq!(db2.row_count("t").unwrap(), 8);
        let mut c2 = db2.connect();
        let r = c2.execute("SELECT * FROM t WHERE id = 3").unwrap();
        assert_eq!(r.rows[0][1], Value::Int(199));
    }

    #[test]
    fn checkpoint_refused_inside_open_transaction() {
        let (_dev, db, mut conn) = db();
        setup_person(&mut conn);
        conn.begin();
        conn.execute("INSERT INTO person VALUES (3, 'Cid', 20)")
            .unwrap();
        assert!(!db.checkpoint(), "not quiesced");
        conn.commit().unwrap();
        assert!(db.checkpoint());
    }

    #[test]
    fn prepared_statements_bind_params() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        let r = conn
            .execute_params("SELECT * FROM person WHERE id = ?", &[Value::Int(2)])
            .unwrap();
        assert_eq!(r.rows[0][1], Value::Str("Bob".into()));
        conn.execute_params(
            "INSERT INTO person VALUES (?, ?, ?)",
            &[Value::Int(5), Value::Str("Eve".into()), Value::Int(25)],
        )
        .unwrap();
        assert_eq!(conn.execute("SELECT * FROM person").unwrap().rows.len(), 3);
    }

    #[test]
    fn select_columns_reported() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        let r = conn.execute("SELECT * FROM person").unwrap();
        assert_eq!(r.columns, vec!["id", "name", "age"]);
    }

    #[test]
    fn range_predicates_on_the_primary_key() {
        let (_dev, _db, mut conn) = db();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for i in 0..10 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 10))
                .unwrap();
        }
        let r = conn
            .execute("SELECT * FROM t WHERE id >= 3 AND id < 6")
            .unwrap();
        assert_eq!(
            r.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(3), Value::Int(4), Value::Int(5)]
        );
        assert_eq!(
            conn.execute("SELECT * FROM t WHERE id > 7")
                .unwrap()
                .rows
                .len(),
            2
        );
        // Inverted bounds yield an empty result, not a panic.
        assert!(conn
            .execute("SELECT * FROM t WHERE id > 6 AND id <= 3")
            .unwrap()
            .rows
            .is_empty());
    }

    #[test]
    fn secondary_index_serves_equality_and_range_selects() {
        let (_dev, db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("INSERT INTO person VALUES (3, 'Cid', 35)")
            .unwrap();
        conn.execute("CREATE INDEX by_age ON person (age)").unwrap();
        db.reset_stats();
        let r = conn.execute("SELECT * FROM person WHERE age = 35").unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Int(3),
                Value::Str("Cid".into()),
                Value::Int(35)
            ]]
        );
        let r = conn
            .execute("SELECT * FROM person WHERE age >= 30 AND age < 40")
            .unwrap();
        assert_eq!(r.rows.len(), 2, "ages 30 and 35");
        assert_eq!(db.stats().index_lookups, 2, "both selects used the index");
        // Unindexed column still answers, via the scan fallback.
        let r = conn
            .execute("SELECT * FROM person WHERE name >= 'B' AND name <= 'D'")
            .unwrap();
        assert_eq!(r.rows.len(), 2, "Bob and Cid");
        assert_eq!(db.stats().index_lookups, 2, "no index over name");
    }

    #[test]
    fn index_tracks_insert_update_delete() {
        let (_dev, db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("CREATE INDEX by_age ON person (age)").unwrap();
        conn.execute("INSERT INTO person VALUES (3, 'Cid', 30)")
            .unwrap();
        assert_eq!(
            conn.execute("SELECT * FROM person WHERE age = 30")
                .unwrap()
                .rows
                .len(),
            2
        );
        conn.execute("UPDATE person SET age = 31 WHERE id = 1")
            .unwrap();
        assert_eq!(
            conn.execute("SELECT * FROM person WHERE age = 30")
                .unwrap()
                .rows
                .len(),
            1
        );
        assert_eq!(
            conn.execute("SELECT * FROM person WHERE age = 31")
                .unwrap()
                .rows
                .len(),
            1
        );
        conn.execute("DELETE FROM person WHERE age = 31").unwrap();
        assert!(conn
            .execute("SELECT * FROM person WHERE age = 31")
            .unwrap()
            .rows
            .is_empty());
        assert!(db.stats().index_lookups >= 4);
    }

    #[test]
    fn index_definition_survives_crash_and_checkpoint() {
        let (dev, _db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("CREATE INDEX by_age ON person (age)").unwrap();
        conn.execute("INSERT INTO person VALUES (3, 'Cid', 40)")
            .unwrap();
        dev.crash();
        // Replay rebuilds the index over the replayed rows.
        let db2 = Database::open(dev.clone()).unwrap();
        let mut c2 = db2.connect();
        db2.reset_stats();
        assert_eq!(
            c2.execute("SELECT * FROM person WHERE age = 40")
                .unwrap()
                .rows
                .len(),
            2
        );
        assert_eq!(db2.stats().index_lookups, 1);
        // A checkpoint snapshot carries the definition across rotation.
        assert!(db2.checkpoint());
        c2.execute("INSERT INTO person VALUES (4, 'Dee', 40)")
            .unwrap();
        dev.crash();
        let db3 = Database::open(dev).unwrap();
        let mut c3 = db3.connect();
        db3.reset_stats();
        assert_eq!(
            c3.execute("SELECT * FROM person WHERE age = 40")
                .unwrap()
                .rows
                .len(),
            3
        );
        assert_eq!(db3.stats().index_lookups, 1);
        assert!(matches!(
            c3.execute("CREATE INDEX by_age ON person (age)"),
            Err(DbError::IndexExists(_))
        ));
    }

    #[test]
    fn create_index_rolls_back_with_the_transaction() {
        let (_dev, db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("BEGIN").unwrap();
        conn.execute("CREATE INDEX by_age ON person (age)").unwrap();
        conn.execute("ROLLBACK").unwrap();
        db.reset_stats();
        assert_eq!(
            conn.execute("SELECT * FROM person WHERE age = 30")
                .unwrap()
                .rows
                .len(),
            1
        );
        assert_eq!(db.stats().index_lookups, 0, "index definition undone");
        // And the name is free again.
        conn.execute("CREATE INDEX by_age ON person (age)").unwrap();
    }

    #[test]
    fn find_rows_by_uses_the_index() {
        let (_dev, db, mut conn) = db();
        setup_person(&mut conn);
        conn.execute("CREATE INDEX by_name ON person (name)")
            .unwrap();
        db.reset_stats();
        let rows = conn
            .find_rows_by("person", 1, &Value::Str("Bob".into()))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(db.stats().index_lookups, 1);
    }

    #[test]
    fn create_index_errors() {
        let (_dev, _db, mut conn) = db();
        setup_person(&mut conn);
        assert!(matches!(
            conn.execute("CREATE INDEX i ON ghost (x)"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            conn.execute("CREATE INDEX i ON person (ghost)"),
            Err(DbError::NoSuchColumn(_))
        ));
        conn.execute("CREATE INDEX i ON person (age)").unwrap();
        assert!(matches!(
            conn.execute("CREATE INDEX i ON person (name)"),
            Err(DbError::IndexExists(_))
        ));
    }
}
