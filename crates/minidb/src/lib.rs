//! An H2-style embedded relational database (§2.1, §5, §6.3).
//!
//! The paper's evaluation backend is H2, a pure-Java embedded RDBMS. The
//! reproduction needs three properties from it, all present here:
//!
//! 1. **A JDBC-like string boundary** — [`Connection::execute`] accepts SQL
//!    text (tokenizer → parser → executor), because the JPA baseline's cost
//!    is dominated by building and parsing these strings (Figure 4/17).
//! 2. **A direct object interface** — [`Connection::persist_row`] /
//!    [`update_fields`](Connection::update_fields) and friends, the
//!    `DBPersistable` extension (§5) the paper adds to H2 in ~600 LoC so
//!    PJO can ship objects without SQL transformation.
//! 3. **Durability on NVM** — a redo write-ahead log on the simulated
//!    device, flushed at commit; [`Database::open`] replays it.
//!
//! Phase counters ([`Database::stats`]) separate parse time from execution
//! time from WAL time, which is what the Figure 17 breakdown plots.
//!
//! # Example
//!
//! ```
//! use espresso_minidb::{Database, Value};
//! use espresso_nvm::{NvmConfig, NvmDevice};
//!
//! # fn main() -> Result<(), espresso_minidb::DbError> {
//! let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
//! let db = Database::create(dev)?;
//! let mut conn = db.connect();
//! conn.execute("CREATE TABLE person (id INT PRIMARY KEY, name TEXT)")?;
//! conn.execute("INSERT INTO person VALUES (1, 'Jimmy')")?;
//! let rows = conn.execute("SELECT * FROM person WHERE id = 1")?;
//! assert_eq!(rows.rows[0][1], Value::Str("Jimmy".into()));
//! # Ok(())
//! # }
//! ```

mod engine;
mod sql;
mod wal;

pub use engine::{Connection, Database, DbError, DbStats, QueryResult};
pub use sql::{ColType, Statement, Value};

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;
