//! SQL values, tokenizer and parser.

use std::fmt;
use std::ops::Bound;

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Text.
    Str(String),
}

impl fmt::Display for Value {
    /// Renders as a SQL literal (strings quoted with `''` escaping), so
    /// ORM layers can splice values into statements.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer column.
    Int,
    /// Text column.
    Text,
}

/// A comparison operator in a `WHERE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A parsed `WHERE` clause: either a point predicate or a contiguous
/// range over one column. `col >= lo AND col < hi` (any pair of range
/// comparisons on the same column) is normalised into one [`Range`]
/// during parsing.
///
/// [`Range`]: Predicate::Range
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col = v`
    Eq(String, Value),
    /// `col < v`, `col >= v`, `col > lo AND col <= hi`, ...
    Range {
        /// Constrained column.
        column: String,
        /// Lower bound.
        lo: Bound<Value>,
        /// Upper bound.
        hi: Bound<Value>,
    },
}

impl Predicate {
    fn from_cmp(column: String, op: CmpOp, v: Value) -> Predicate {
        let (lo, hi) = match op {
            CmpOp::Eq => return Predicate::Eq(column, v),
            CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(v)),
            CmpOp::Le => (Bound::Unbounded, Bound::Included(v)),
            CmpOp::Gt => (Bound::Excluded(v), Bound::Unbounded),
            CmpOp::Ge => (Bound::Included(v), Bound::Unbounded),
        };
        Predicate::Range { column, lo, hi }
    }

    /// Conjoins another comparison: both must be range comparisons over
    /// the same column, bounding opposite sides.
    fn and(self, column: String, op: CmpOp, v: Value) -> Result<Predicate, String> {
        let (
            Predicate::Range { column: c0, lo, hi },
            Predicate::Range {
                lo: lo2, hi: hi2, ..
            },
        ) = (self, Predicate::from_cmp(column.clone(), op, v))
        else {
            return Err("AND supports only range comparisons (not =)".to_string());
        };
        if c0 != column {
            return Err(format!("AND must constrain one column ({c0} vs {column})"));
        }
        fn merge(a: Bound<Value>, b: Bound<Value>, side: &str) -> Result<Bound<Value>, String> {
            match (a, b) {
                (Bound::Unbounded, b) => Ok(b),
                (a, Bound::Unbounded) => Ok(a),
                _ => Err(format!("conflicting {side} bounds in AND")),
            }
        }
        Ok(Predicate::Range {
            column: c0,
            lo: merge(lo, lo2, "lower")?,
            hi: merge(hi, hi2, "upper")?,
        })
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [PRIMARY KEY], ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColType)>,
        /// Index of the primary-key column.
        primary_key: usize,
    },
    /// `INSERT INTO t VALUES (...)`
    Insert {
        /// Table name.
        table: String,
        /// One value per column.
        values: Vec<Value>,
    },
    /// `CREATE INDEX name ON table (column)`
    CreateIndex {
        /// Index name (unique across the database).
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `SELECT * FROM t [WHERE col <op> lit [AND col <op> lit]]`
    Select {
        /// Table name.
        table: String,
        /// Optional point or range predicate.
        filter: Option<Predicate>,
    },
    /// `UPDATE t SET col = lit, ... WHERE col = lit`
    Update {
        /// Table name.
        table: String,
        /// Column assignments.
        sets: Vec<(String, Value)>,
        /// Equality filter.
        filter: (String, Value),
    },
    /// `DELETE FROM t WHERE col = lit`
    Delete {
        /// Table name.
        table: String,
        /// Equality filter.
        filter: (String, Value),
    },
    /// `BEGIN`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(char),
    Cmp(CmpOp), // '<' '<=' '>' '>=' ('=' stays a Punct for SET lists)
    Param,      // '?'
}

fn tokenize(sql: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' | ')' | ',' | '=' | '*' | ';' => {
                out.push(Token::Punct(c));
                chars.next();
            }
            '<' | '>' => {
                chars.next();
                let eq = chars.peek() == Some(&'=');
                if eq {
                    chars.next();
                }
                out.push(Token::Cmp(match (c, eq) {
                    ('<', false) => CmpOp::Lt,
                    ('<', true) => CmpOp::Le,
                    ('>', false) => CmpOp::Gt,
                    _ => CmpOp::Ge,
                }));
            }
            '?' => {
                out.push(Token::Param);
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated string literal".to_string()),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Int(
                    s.parse().map_err(|e| format!("bad integer {s}: {e}"))?,
                ));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    params: &'a [Value],
    next_param: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token, String> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or("unexpected end of statement")?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(format!("expected {kw}, found {other:?}")),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn punct(&mut self, c: char) -> Result<(), String> {
        match self.next()? {
            Token::Punct(p) if *p == c => Ok(()),
            other => Err(format!("expected {c:?}, found {other:?}")),
        }
    }

    fn try_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Punct(c)) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.next()? {
            Token::Int(i) => Ok(Value::Int(*i)),
            Token::Str(s) => Ok(Value::Str(s.clone())),
            Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Token::Param => {
                let v = self
                    .params
                    .get(self.next_param)
                    .cloned()
                    .ok_or("not enough bound parameters")?;
                self.next_param += 1;
                Ok(v)
            }
            other => Err(format!("expected literal, found {other:?}")),
        }
    }

    fn filter(&mut self) -> Result<(String, Value), String> {
        let col = self.ident()?;
        self.punct('=')?;
        let v = self.value()?;
        Ok((col, v))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, String> {
        match self.next()? {
            Token::Punct('=') => Ok(CmpOp::Eq),
            Token::Cmp(op) => Ok(*op),
            other => Err(format!("expected comparison operator, found {other:?}")),
        }
    }

    /// `col <op> lit [AND col <op> lit ...]`, normalised to a
    /// [`Predicate`].
    fn predicate(&mut self) -> Result<Predicate, String> {
        let col = self.ident()?;
        let op = self.cmp_op()?;
        let mut pred = Predicate::from_cmp(col, op, self.value()?);
        while self.try_keyword("and") {
            let col = self.ident()?;
            let op = self.cmp_op()?;
            pred = pred.and(col, op, self.value()?)?;
        }
        Ok(pred)
    }
}

/// Parses one statement, binding `?` placeholders from `params` in order.
///
/// # Errors
///
/// A human-readable syntax error.
pub(crate) fn parse(sql: &str, params: &[Value]) -> Result<Statement, String> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        params,
        next_param: 0,
    };
    let stmt = match p.next()? {
        Token::Ident(kw) if kw.eq_ignore_ascii_case("create") => {
            if p.try_keyword("index") {
                let name = p.ident()?;
                p.keyword("on")?;
                let table = p.ident()?;
                p.punct('(')?;
                let column = p.ident()?;
                p.punct(')')?;
                return finish(
                    p,
                    Statement::CreateIndex {
                        name,
                        table,
                        column,
                    },
                );
            }
            p.keyword("table")?;
            let name = p.ident()?;
            p.punct('(')?;
            let mut columns = Vec::new();
            let mut primary_key = None;
            loop {
                let col = p.ident()?;
                let ty = match p.ident()?.to_ascii_lowercase().as_str() {
                    "int" | "bigint" | "integer" => ColType::Int,
                    "text" | "varchar" => ColType::Text,
                    other => return Err(format!("unknown type {other}")),
                };
                if p.try_keyword("primary") {
                    p.keyword("key")?;
                    primary_key = Some(columns.len());
                }
                columns.push((col, ty));
                if !p.try_punct(',') {
                    break;
                }
            }
            p.punct(')')?;
            Statement::CreateTable {
                name,
                primary_key: primary_key.ok_or("a PRIMARY KEY column is required")?,
                columns,
            }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("insert") => {
            p.keyword("into")?;
            let table = p.ident()?;
            p.keyword("values")?;
            p.punct('(')?;
            let mut values = Vec::new();
            loop {
                values.push(p.value()?);
                if !p.try_punct(',') {
                    break;
                }
            }
            p.punct(')')?;
            Statement::Insert { table, values }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("select") => {
            p.punct('*')?;
            p.keyword("from")?;
            let table = p.ident()?;
            let filter = if p.try_keyword("where") {
                Some(p.predicate()?)
            } else {
                None
            };
            Statement::Select { table, filter }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("update") => {
            let table = p.ident()?;
            p.keyword("set")?;
            let mut sets = Vec::new();
            loop {
                let col = p.ident()?;
                p.punct('=')?;
                sets.push((col, p.value()?));
                if !p.try_punct(',') {
                    break;
                }
            }
            p.keyword("where")?;
            let filter = p.filter()?;
            Statement::Update {
                table,
                sets,
                filter,
            }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("delete") => {
            p.keyword("from")?;
            let table = p.ident()?;
            p.keyword("where")?;
            let filter = p.filter()?;
            Statement::Delete { table, filter }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("begin") => Statement::Begin,
        Token::Ident(kw) if kw.eq_ignore_ascii_case("commit") => Statement::Commit,
        Token::Ident(kw) if kw.eq_ignore_ascii_case("rollback") => Statement::Rollback,
        other => return Err(format!("unexpected token {other:?}")),
    };
    finish(p, stmt)
}

/// Accepts an optional trailing `;` and rejects anything after it.
fn finish(mut p: Parser<'_>, stmt: Statement) -> Result<Statement, String> {
    let _ = p.try_punct(';');
    if p.peek().is_some() {
        return Err("trailing tokens after statement".to_string());
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sql: &str) -> Statement {
        parse(sql, &[]).unwrap()
    }

    #[test]
    fn create_table_parses() {
        let s = p("CREATE TABLE person (id INT PRIMARY KEY, name TEXT)");
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "person".into(),
                columns: vec![("id".into(), ColType::Int), ("name".into(), ColType::Text)],
                primary_key: 0,
            }
        );
    }

    #[test]
    fn insert_parses_literals_and_escapes() {
        let s = p("INSERT INTO t VALUES (1, 'O''Brien', NULL)");
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(1), Value::Str("O'Brien".into()), Value::Null],
            }
        );
    }

    #[test]
    fn select_with_and_without_filter() {
        assert_eq!(
            p("SELECT * FROM t"),
            Statement::Select {
                table: "t".into(),
                filter: None
            }
        );
        assert_eq!(
            p("SELECT * FROM t WHERE id = 5"),
            Statement::Select {
                table: "t".into(),
                filter: Some(Predicate::Eq("id".into(), Value::Int(5)))
            }
        );
    }

    #[test]
    fn range_predicates_normalise_to_bounds() {
        assert_eq!(
            p("SELECT * FROM t WHERE id < 5"),
            Statement::Select {
                table: "t".into(),
                filter: Some(Predicate::Range {
                    column: "id".into(),
                    lo: Bound::Unbounded,
                    hi: Bound::Excluded(Value::Int(5)),
                })
            }
        );
        assert_eq!(
            p("SELECT * FROM t WHERE id >= 2 AND id < 7"),
            Statement::Select {
                table: "t".into(),
                filter: Some(Predicate::Range {
                    column: "id".into(),
                    lo: Bound::Included(Value::Int(2)),
                    hi: Bound::Excluded(Value::Int(7)),
                })
            }
        );
        assert_eq!(
            p("SELECT * FROM t WHERE name <= 'm'"),
            Statement::Select {
                table: "t".into(),
                filter: Some(Predicate::Range {
                    column: "name".into(),
                    lo: Bound::Unbounded,
                    hi: Bound::Included(Value::Str("m".into())),
                })
            }
        );
    }

    #[test]
    fn bad_range_conjunctions_are_rejected() {
        assert!(parse("SELECT * FROM t WHERE a > 1 AND b < 2", &[]).is_err());
        assert!(parse("SELECT * FROM t WHERE a > 1 AND a > 2", &[]).is_err());
        assert!(parse("SELECT * FROM t WHERE a = 1 AND a < 2", &[]).is_err());
    }

    #[test]
    fn create_index_parses() {
        assert_eq!(
            p("CREATE INDEX by_age ON person (age)"),
            Statement::CreateIndex {
                name: "by_age".into(),
                table: "person".into(),
                column: "age".into(),
            }
        );
        assert!(parse("CREATE INDEX ON person (age)", &[]).is_err());
        assert!(parse("CREATE INDEX i ON person ()", &[]).is_err());
        assert!(parse("CREATE INDEX i ON person (a, b)", &[]).is_err());
    }

    #[test]
    fn update_and_delete() {
        assert_eq!(
            p("UPDATE t SET a = 1, b = 'x' WHERE id = 2"),
            Statement::Update {
                table: "t".into(),
                sets: vec![
                    ("a".into(), Value::Int(1)),
                    ("b".into(), Value::Str("x".into()))
                ],
                filter: ("id".into(), Value::Int(2)),
            }
        );
        assert_eq!(
            p("DELETE FROM t WHERE id = 3"),
            Statement::Delete {
                table: "t".into(),
                filter: ("id".into(), Value::Int(3))
            }
        );
    }

    #[test]
    fn params_bind_in_order() {
        let s = parse(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(9), Value::Str("hi".into())],
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(9), Value::Str("hi".into())],
            }
        );
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(
            p("INSERT INTO t VALUES (-5)"),
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(-5)]
            }
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("SELEC * FROM t", &[]).is_err());
        assert!(parse("SELECT * FROM", &[]).is_err());
        assert!(parse("INSERT INTO t VALUES (1", &[]).is_err());
        assert!(
            parse("CREATE TABLE t (id INT)", &[]).is_err(),
            "missing primary key"
        );
        assert!(parse("INSERT INTO t VALUES ('unterminated)", &[]).is_err());
        assert!(
            parse("SELECT * FROM t WHERE id = ?", &[]).is_err(),
            "missing param"
        );
        assert!(parse("SELECT * FROM t extra", &[]).is_err());
    }

    #[test]
    fn value_display_roundtrips_through_parser() {
        for v in [Value::Int(-3), Value::Str("a'b".into()), Value::Null] {
            let sql = format!("INSERT INTO t VALUES ({v})");
            let s = parse(&sql, &[]).unwrap();
            assert_eq!(
                s,
                Statement::Insert {
                    table: "t".into(),
                    values: vec![v]
                }
            );
        }
    }

    #[test]
    fn txn_keywords() {
        assert_eq!(p("BEGIN"), Statement::Begin);
        assert_eq!(p("COMMIT;"), Statement::Commit);
        assert_eq!(p("rollback"), Statement::Rollback);
    }
}
