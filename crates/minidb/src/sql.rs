//! SQL values, tokenizer and parser.

use std::fmt;

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Text.
    Str(String),
}

impl fmt::Display for Value {
    /// Renders as a SQL literal (strings quoted with `''` escaping), so
    /// ORM layers can splice values into statements.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer column.
    Int,
    /// Text column.
    Text,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [PRIMARY KEY], ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColType)>,
        /// Index of the primary-key column.
        primary_key: usize,
    },
    /// `INSERT INTO t VALUES (...)`
    Insert {
        /// Table name.
        table: String,
        /// One value per column.
        values: Vec<Value>,
    },
    /// `SELECT * FROM t [WHERE col = lit]`
    Select {
        /// Table name.
        table: String,
        /// Optional equality filter.
        filter: Option<(String, Value)>,
    },
    /// `UPDATE t SET col = lit, ... WHERE col = lit`
    Update {
        /// Table name.
        table: String,
        /// Column assignments.
        sets: Vec<(String, Value)>,
        /// Equality filter.
        filter: (String, Value),
    },
    /// `DELETE FROM t WHERE col = lit`
    Delete {
        /// Table name.
        table: String,
        /// Equality filter.
        filter: (String, Value),
    },
    /// `BEGIN`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(char),
    Param, // '?'
}

fn tokenize(sql: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' | ')' | ',' | '=' | '*' | ';' => {
                out.push(Token::Punct(c));
                chars.next();
            }
            '?' => {
                out.push(Token::Param);
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated string literal".to_string()),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Int(
                    s.parse().map_err(|e| format!("bad integer {s}: {e}"))?,
                ));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    params: &'a [Value],
    next_param: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token, String> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or("unexpected end of statement")?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(format!("expected {kw}, found {other:?}")),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn punct(&mut self, c: char) -> Result<(), String> {
        match self.next()? {
            Token::Punct(p) if *p == c => Ok(()),
            other => Err(format!("expected {c:?}, found {other:?}")),
        }
    }

    fn try_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Punct(c)) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.next()? {
            Token::Int(i) => Ok(Value::Int(*i)),
            Token::Str(s) => Ok(Value::Str(s.clone())),
            Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Token::Param => {
                let v = self
                    .params
                    .get(self.next_param)
                    .cloned()
                    .ok_or("not enough bound parameters")?;
                self.next_param += 1;
                Ok(v)
            }
            other => Err(format!("expected literal, found {other:?}")),
        }
    }

    fn filter(&mut self) -> Result<(String, Value), String> {
        let col = self.ident()?;
        self.punct('=')?;
        let v = self.value()?;
        Ok((col, v))
    }
}

/// Parses one statement, binding `?` placeholders from `params` in order.
///
/// # Errors
///
/// A human-readable syntax error.
pub(crate) fn parse(sql: &str, params: &[Value]) -> Result<Statement, String> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        params,
        next_param: 0,
    };
    let stmt = match p.next()? {
        Token::Ident(kw) if kw.eq_ignore_ascii_case("create") => {
            p.keyword("table")?;
            let name = p.ident()?;
            p.punct('(')?;
            let mut columns = Vec::new();
            let mut primary_key = None;
            loop {
                let col = p.ident()?;
                let ty = match p.ident()?.to_ascii_lowercase().as_str() {
                    "int" | "bigint" | "integer" => ColType::Int,
                    "text" | "varchar" => ColType::Text,
                    other => return Err(format!("unknown type {other}")),
                };
                if p.try_keyword("primary") {
                    p.keyword("key")?;
                    primary_key = Some(columns.len());
                }
                columns.push((col, ty));
                if !p.try_punct(',') {
                    break;
                }
            }
            p.punct(')')?;
            Statement::CreateTable {
                name,
                primary_key: primary_key.ok_or("a PRIMARY KEY column is required")?,
                columns,
            }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("insert") => {
            p.keyword("into")?;
            let table = p.ident()?;
            p.keyword("values")?;
            p.punct('(')?;
            let mut values = Vec::new();
            loop {
                values.push(p.value()?);
                if !p.try_punct(',') {
                    break;
                }
            }
            p.punct(')')?;
            Statement::Insert { table, values }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("select") => {
            p.punct('*')?;
            p.keyword("from")?;
            let table = p.ident()?;
            let filter = if p.try_keyword("where") {
                Some(p.filter()?)
            } else {
                None
            };
            Statement::Select { table, filter }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("update") => {
            let table = p.ident()?;
            p.keyword("set")?;
            let mut sets = Vec::new();
            loop {
                let col = p.ident()?;
                p.punct('=')?;
                sets.push((col, p.value()?));
                if !p.try_punct(',') {
                    break;
                }
            }
            p.keyword("where")?;
            let filter = p.filter()?;
            Statement::Update {
                table,
                sets,
                filter,
            }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("delete") => {
            p.keyword("from")?;
            let table = p.ident()?;
            p.keyword("where")?;
            let filter = p.filter()?;
            Statement::Delete { table, filter }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("begin") => Statement::Begin,
        Token::Ident(kw) if kw.eq_ignore_ascii_case("commit") => Statement::Commit,
        Token::Ident(kw) if kw.eq_ignore_ascii_case("rollback") => Statement::Rollback,
        other => return Err(format!("unexpected token {other:?}")),
    };
    let _ = p.try_punct(';');
    if p.peek().is_some() {
        return Err("trailing tokens after statement".to_string());
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sql: &str) -> Statement {
        parse(sql, &[]).unwrap()
    }

    #[test]
    fn create_table_parses() {
        let s = p("CREATE TABLE person (id INT PRIMARY KEY, name TEXT)");
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "person".into(),
                columns: vec![("id".into(), ColType::Int), ("name".into(), ColType::Text)],
                primary_key: 0,
            }
        );
    }

    #[test]
    fn insert_parses_literals_and_escapes() {
        let s = p("INSERT INTO t VALUES (1, 'O''Brien', NULL)");
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(1), Value::Str("O'Brien".into()), Value::Null],
            }
        );
    }

    #[test]
    fn select_with_and_without_filter() {
        assert_eq!(
            p("SELECT * FROM t"),
            Statement::Select {
                table: "t".into(),
                filter: None
            }
        );
        assert_eq!(
            p("SELECT * FROM t WHERE id = 5"),
            Statement::Select {
                table: "t".into(),
                filter: Some(("id".into(), Value::Int(5)))
            }
        );
    }

    #[test]
    fn update_and_delete() {
        assert_eq!(
            p("UPDATE t SET a = 1, b = 'x' WHERE id = 2"),
            Statement::Update {
                table: "t".into(),
                sets: vec![
                    ("a".into(), Value::Int(1)),
                    ("b".into(), Value::Str("x".into()))
                ],
                filter: ("id".into(), Value::Int(2)),
            }
        );
        assert_eq!(
            p("DELETE FROM t WHERE id = 3"),
            Statement::Delete {
                table: "t".into(),
                filter: ("id".into(), Value::Int(3))
            }
        );
    }

    #[test]
    fn params_bind_in_order() {
        let s = parse(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(9), Value::Str("hi".into())],
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(9), Value::Str("hi".into())],
            }
        );
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(
            p("INSERT INTO t VALUES (-5)"),
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(-5)]
            }
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("SELEC * FROM t", &[]).is_err());
        assert!(parse("SELECT * FROM", &[]).is_err());
        assert!(parse("INSERT INTO t VALUES (1", &[]).is_err());
        assert!(
            parse("CREATE TABLE t (id INT)", &[]).is_err(),
            "missing primary key"
        );
        assert!(parse("INSERT INTO t VALUES ('unterminated)", &[]).is_err());
        assert!(
            parse("SELECT * FROM t WHERE id = ?", &[]).is_err(),
            "missing param"
        );
        assert!(parse("SELECT * FROM t extra", &[]).is_err());
    }

    #[test]
    fn value_display_roundtrips_through_parser() {
        for v in [Value::Int(-3), Value::Str("a'b".into()), Value::Null] {
            let sql = format!("INSERT INTO t VALUES ({v})");
            let s = parse(&sql, &[]).unwrap();
            assert_eq!(
                s,
                Statement::Insert {
                    table: "t".into(),
                    values: vec![v]
                }
            );
        }
    }

    #[test]
    fn txn_keywords() {
        assert_eq!(p("BEGIN"), Statement::Begin);
        assert_eq!(p("COMMIT;"), Statement::Commit);
        assert_eq!(p("rollback"), Statement::Rollback);
    }
}
