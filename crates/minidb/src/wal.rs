//! Redo write-ahead log on the simulated NVM device, with checkpoints.
//!
//! Commit protocol: append the transaction's serialized redo records past
//! the committed region, flush them, *then* advance the persisted
//! committed-length word. A crash between the two leaves the records
//! outside the committed region, so recovery never replays a torn
//! transaction — the same single-word-commit idea as the heap's `top`.
//!
//! Checkpoint protocol: a checkpoint is an ordinary committed batch of
//! redo records that reconstructs the whole engine state (CreateTable +
//! Insert per row), followed by a persisted update of the checkpoint
//! pointer (`H_CKPT`, the offset the next replay starts from). Replaying
//! a checkpoint batch is idempotent — `CreateTable` resets the table and
//! the inserts restore its rows — so a crash *between* the length persist
//! and the pointer persist is safe: replay starts at the old pointer and
//! simply passes through the snapshot. Opening a database therefore
//! replays only the records since the last checkpoint, not the whole
//! history (the ROADMAP "whole-log replay on every open" slow path).

use espresso_nvm::NvmDevice;

use crate::sql::{ColType, Value};

const MAGIC: u64 = 0x4d49_4e49_4442_5741; // "MINIDBWA"
const H_MAGIC: usize = 0;
const H_LEN: usize = 8;
/// Committed byte offset (relative to `DATA`) replay starts from.
const H_CKPT: usize = 16;
const DATA: usize = 64;

/// One redo record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Redo {
    CreateTable {
        name: String,
        columns: Vec<(String, ColType)>,
        primary_key: usize,
    },
    Insert {
        table: String,
        row: Vec<Value>,
    },
    /// Full-row rewrite keyed by primary key.
    Update {
        table: String,
        key: Value,
        row: Vec<Value>,
    },
    Delete {
        table: String,
        key: Value,
    },
}

fn enc_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_str(buf: &mut Vec<u8>, s: &str) {
    enc_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn enc_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(2);
            enc_str(buf, s);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn i64(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn str(&mut self) -> String {
        let len = self.u32() as usize;
        let s = String::from_utf8_lossy(&self.buf[self.pos..self.pos + len]).into_owned();
        self.pos += len;
        s
    }

    fn value(&mut self) -> Value {
        match self.u8() {
            0 => Value::Null,
            1 => Value::Int(self.i64()),
            _ => Value::Str(self.str()),
        }
    }

    fn values(&mut self) -> Vec<Value> {
        let n = self.u32() as usize;
        (0..n).map(|_| self.value()).collect()
    }
}

impl Redo {
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Redo::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                buf.push(1);
                enc_str(buf, name);
                enc_u32(buf, columns.len() as u32);
                for (c, t) in columns {
                    enc_str(buf, c);
                    buf.push(matches!(t, ColType::Int) as u8);
                }
                enc_u32(buf, *primary_key as u32);
            }
            Redo::Insert { table, row } => {
                buf.push(2);
                enc_str(buf, table);
                enc_u32(buf, row.len() as u32);
                for v in row {
                    enc_value(buf, v);
                }
            }
            Redo::Update { table, key, row } => {
                buf.push(3);
                enc_str(buf, table);
                enc_value(buf, key);
                enc_u32(buf, row.len() as u32);
                for v in row {
                    enc_value(buf, v);
                }
            }
            Redo::Delete { table, key } => {
                buf.push(4);
                enc_str(buf, table);
                enc_value(buf, key);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Redo {
        match d.u8() {
            1 => {
                let name = d.str();
                let n = d.u32() as usize;
                let columns = (0..n)
                    .map(|_| {
                        let c = d.str();
                        let t = if d.u8() == 1 {
                            ColType::Int
                        } else {
                            ColType::Text
                        };
                        (c, t)
                    })
                    .collect();
                let primary_key = d.u32() as usize;
                Redo::CreateTable {
                    name,
                    columns,
                    primary_key,
                }
            }
            2 => Redo::Insert {
                table: d.str(),
                row: d.values(),
            },
            3 => {
                let table = d.str();
                let key = d.value();
                let row = d.values();
                Redo::Update { table, key, row }
            }
            _ => Redo::Delete {
                table: d.str(),
                key: d.value(),
            },
        }
    }
}

/// The on-device log.
#[derive(Debug)]
pub(crate) struct Wal {
    dev: NvmDevice,
    len: usize,  // committed bytes past DATA
    ckpt: usize, // replay starts here (bytes past DATA)
}

impl Wal {
    pub(crate) fn format(dev: NvmDevice) -> Wal {
        dev.write_u64(H_MAGIC, MAGIC);
        dev.write_u64(H_LEN, 0);
        dev.write_u64(H_CKPT, 0);
        dev.persist(0, DATA);
        Wal {
            dev,
            len: 0,
            ckpt: 0,
        }
    }

    pub(crate) fn open(dev: NvmDevice) -> Option<Wal> {
        if dev.size() < DATA || dev.read_u64(H_MAGIC) != MAGIC {
            return None;
        }
        let len = dev.read_u64(H_LEN) as usize;
        let ckpt = (dev.read_u64(H_CKPT) as usize).min(len);
        Some(Wal { dev, len, ckpt })
    }

    /// Appends and commits a batch of records. Returns false (log full)
    /// without committing anything if space runs out.
    pub(crate) fn commit(&mut self, records: &[Redo]) -> bool {
        if records.is_empty() {
            return true;
        }
        let mut buf = Vec::new();
        for r in records {
            r.encode(&mut buf);
        }
        let start = DATA + self.len;
        if start + buf.len() > self.dev.size() {
            return false;
        }
        self.dev.write_bytes(start, &buf);
        self.dev.flush(start, buf.len());
        self.dev.fence();
        self.len += buf.len();
        self.dev.write_u64(H_LEN, self.len as u64);
        self.dev.persist(H_LEN, 8);
        true
    }

    /// Commits `snapshot` (a full-state reconstruction) as a checkpoint
    /// and advances the replay pointer past everything before it. Returns
    /// false (log full) without changing anything if space runs out.
    pub(crate) fn checkpoint(&mut self, snapshot: &[Redo]) -> bool {
        let at = self.len;
        if !self.commit(snapshot) {
            return false;
        }
        // The pointer advances only after the snapshot is committed; a
        // crash before this persist replays from the old pointer, through
        // the (idempotent) snapshot records.
        self.ckpt = at;
        self.dev.write_u64(H_CKPT, at as u64);
        self.dev.persist(H_CKPT, 8);
        true
    }

    /// Replays every committed record at or after the last checkpoint.
    pub(crate) fn replay(&self) -> Vec<Redo> {
        let tail = self.len - self.ckpt;
        let mut buf = vec![0u8; tail];
        if tail > 0 {
            self.dev.read_bytes(DATA + self.ckpt, &mut buf);
        }
        let mut d = Dec { buf: &buf, pos: 0 };
        let mut out = Vec::new();
        while d.pos < buf.len() {
            out.push(Redo::decode(&mut d));
        }
        out
    }

    /// Committed bytes past the last checkpoint (what the next open will
    /// replay).
    pub(crate) fn tail_bytes(&self) -> usize {
        self.len - self.ckpt
    }

    /// Committed bytes.
    #[cfg(test)]
    pub(crate) fn committed_bytes(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    fn sample_records() -> Vec<Redo> {
        vec![
            Redo::CreateTable {
                name: "t".into(),
                columns: vec![("id".into(), ColType::Int), ("n".into(), ColType::Text)],
                primary_key: 0,
            },
            Redo::Insert {
                table: "t".into(),
                row: vec![Value::Int(1), Value::Str("x".into())],
            },
            Redo::Update {
                table: "t".into(),
                key: Value::Int(1),
                row: vec![Value::Int(1), Value::Null],
            },
            Redo::Delete {
                table: "t".into(),
                key: Value::Int(1),
            },
        ]
    }

    #[test]
    fn roundtrip_through_replay() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        let recs = sample_records();
        assert!(w.commit(&recs));
        dev.crash();
        let w2 = Wal::open(dev).unwrap();
        assert_eq!(w2.replay(), recs);
    }

    #[test]
    fn torn_commit_is_invisible() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()[..1]));
        let committed = w.committed_bytes();
        // Let the record bytes flush but crash before the length persist.
        // Record flush = >=1 line; length flush is the last one.
        let f0 = dev.stats().line_flushes;
        assert!(w.commit(&sample_records()[1..2]));
        let per_commit = dev.stats().line_flushes - f0;
        dev.schedule_crash_after_line_flushes(per_commit - 1);
        assert!(w.commit(&sample_records()[2..3]));
        dev.recover();
        let w2 = Wal::open(dev).unwrap();
        assert_eq!(
            w2.committed_bytes(),
            committed + {
                let mut b = Vec::new();
                sample_records()[1].encode(&mut b);
                b.len()
            }
        );
        assert_eq!(w2.replay().len(), 2, "third record torn away");
    }

    #[test]
    fn checkpoint_trims_replay_to_the_tail() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()));
        // Snapshot state (here: just the create) and checkpoint it.
        let snapshot = vec![sample_records()[0].clone()];
        assert!(w.checkpoint(&snapshot));
        assert_eq!(w.tail_bytes(), {
            let mut b = Vec::new();
            snapshot[0].encode(&mut b);
            b.len()
        });
        // A tail commit after the checkpoint.
        assert!(w.commit(&sample_records()[1..2]));
        dev.crash();
        let w2 = Wal::open(dev).unwrap();
        let replayed = w2.replay();
        assert_eq!(replayed.len(), 2, "snapshot + tail only, not history");
        assert_eq!(replayed[0], snapshot[0]);
        assert_eq!(replayed[1], sample_records()[1]);
    }

    #[test]
    fn crash_between_snapshot_and_pointer_is_safe() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()[..2]));
        // A checkpoint persists: records flush(es), H_LEN, then H_CKPT
        // last. Count the flushes of an identical checkpoint on a scratch
        // copy, then crash one flush early on the real device.
        let probe = NvmDevice::new(NvmConfig::with_size(dev.size()));
        probe.write_bytes(0, &dev.snapshot_persisted());
        probe.persist(0, dev.size());
        let mut wp = Wal::open(probe.clone()).unwrap();
        let f0 = probe.stats().line_flushes;
        assert!(wp.checkpoint(&sample_records()[..1]));
        let per_ckpt = probe.stats().line_flushes - f0;
        dev.schedule_crash_after_line_flushes(per_ckpt - 1);
        assert!(w.checkpoint(&sample_records()[..1]));
        dev.recover();
        let w2 = Wal::open(dev).unwrap();
        // Pointer never advanced: replay passes through the history AND
        // the snapshot records — idempotent, so the state is identical.
        assert_eq!(w2.replay().len(), 3);
    }

    #[test]
    fn log_full_is_reported_without_commit() {
        let dev = NvmDevice::new(NvmConfig::with_size(128));
        let mut w = Wal::format(dev);
        let recs = sample_records();
        assert!(!w.commit(&recs));
        assert_eq!(w.committed_bytes(), 0);
    }

    #[test]
    fn open_rejects_foreign_device() {
        let dev = NvmDevice::new(NvmConfig::with_size(1024));
        assert!(Wal::open(dev).is_none());
    }
}
