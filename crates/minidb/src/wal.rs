//! Redo write-ahead log on the simulated NVM device, with group commit
//! and rotating checkpoint compaction.
//!
//! Commit protocol: append the serialized redo records of one **or many**
//! transactions past the committed region, flush them, *then* advance the
//! persisted committed-length word — [`Wal::commit_batch`] makes N
//! concurrent transactions durable under a single length persist (group
//! commit). A crash between the two leaves the records outside the
//! committed region, so recovery never replays a torn batch — the same
//! single-word-commit idea as the heap's `top`.
//!
//! Checkpoint protocol: the log space is split into **two areas**, and a
//! checkpoint *rotates* between them. The snapshot (a full-state
//! reconstruction: CreateTable + Insert per row) is written to the start
//! of the inactive area and flushed; then one persist of the header line
//! atomically publishes the new area length *and* flips the active-area
//! word. A crash before the flip replays the old area (the snapshot bytes
//! are garbage in an inactive area); after it, the new. Rotation is also
//! the log's **compaction**: the space consumed by the pre-checkpoint
//! history is reclaimed wholesale when the next rotation lands on it, so
//! a bounded device serves an unbounded commit history as long as the
//! live state fits in one area (the ROADMAP "log file grows append-only"
//! item).

use espresso_nvm::NvmDevice;

use crate::sql::{ColType, Value};

const MAGIC: u64 = 0x4d49_4e49_4442_5732; // "MINIDBW2" (two-area layout)
const H_MAGIC: usize = 0;
/// Which area (0/1) replay reads.
const H_ACTIVE: usize = 8;
/// Committed byte lengths of areas 0 and 1.
const H_LEN: [usize; 2] = [16, 24];
/// Snapshot prefix length of the active area (its checkpoint).
const H_SNAP: usize = 32;
const DATA: usize = 64;

/// One redo record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Redo {
    CreateTable {
        name: String,
        columns: Vec<(String, ColType)>,
        primary_key: usize,
    },
    Insert {
        table: String,
        row: Vec<Value>,
    },
    /// Full-row rewrite keyed by primary key.
    Update {
        table: String,
        key: Value,
        row: Vec<Value>,
    },
    Delete {
        table: String,
        key: Value,
    },
    /// Secondary-index definition (contents are rebuilt from the rows).
    CreateIndex {
        table: String,
        name: String,
        column: usize,
    },
}

fn enc_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_str(buf: &mut Vec<u8>, s: &str) {
    enc_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn enc_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(2);
            enc_str(buf, s);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn i64(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn str(&mut self) -> String {
        let len = self.u32() as usize;
        let s = String::from_utf8_lossy(&self.buf[self.pos..self.pos + len]).into_owned();
        self.pos += len;
        s
    }

    fn value(&mut self) -> Value {
        match self.u8() {
            0 => Value::Null,
            1 => Value::Int(self.i64()),
            _ => Value::Str(self.str()),
        }
    }

    fn values(&mut self) -> Vec<Value> {
        let n = self.u32() as usize;
        (0..n).map(|_| self.value()).collect()
    }
}

impl Redo {
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Redo::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                buf.push(1);
                enc_str(buf, name);
                enc_u32(buf, columns.len() as u32);
                for (c, t) in columns {
                    enc_str(buf, c);
                    buf.push(matches!(t, ColType::Int) as u8);
                }
                enc_u32(buf, *primary_key as u32);
            }
            Redo::Insert { table, row } => {
                buf.push(2);
                enc_str(buf, table);
                enc_u32(buf, row.len() as u32);
                for v in row {
                    enc_value(buf, v);
                }
            }
            Redo::Update { table, key, row } => {
                buf.push(3);
                enc_str(buf, table);
                enc_value(buf, key);
                enc_u32(buf, row.len() as u32);
                for v in row {
                    enc_value(buf, v);
                }
            }
            Redo::Delete { table, key } => {
                buf.push(4);
                enc_str(buf, table);
                enc_value(buf, key);
            }
            Redo::CreateIndex {
                table,
                name,
                column,
            } => {
                buf.push(5);
                enc_str(buf, table);
                enc_str(buf, name);
                enc_u32(buf, *column as u32);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Redo {
        match d.u8() {
            1 => {
                let name = d.str();
                let n = d.u32() as usize;
                let columns = (0..n)
                    .map(|_| {
                        let c = d.str();
                        let t = if d.u8() == 1 {
                            ColType::Int
                        } else {
                            ColType::Text
                        };
                        (c, t)
                    })
                    .collect();
                let primary_key = d.u32() as usize;
                Redo::CreateTable {
                    name,
                    columns,
                    primary_key,
                }
            }
            2 => Redo::Insert {
                table: d.str(),
                row: d.values(),
            },
            3 => {
                let table = d.str();
                let key = d.value();
                let row = d.values();
                Redo::Update { table, key, row }
            }
            5 => {
                let table = d.str();
                let name = d.str();
                let column = d.u32() as usize;
                Redo::CreateIndex {
                    table,
                    name,
                    column,
                }
            }
            _ => Redo::Delete {
                table: d.str(),
                key: d.value(),
            },
        }
    }
}

/// The on-device log: a header line plus two equally sized record areas
/// (see the module docs for the rotation protocol).
#[derive(Debug)]
pub(crate) struct Wal {
    dev: NvmDevice,
    /// Which area holds the live log.
    active: usize,
    /// Committed bytes in the active area.
    len: usize,
    /// Snapshot prefix of the active area (0 when the area was never
    /// produced by a checkpoint).
    snap: usize,
}

impl Wal {
    /// Byte capacity of each record area.
    fn area_cap(&self) -> usize {
        (self.dev.size().saturating_sub(DATA)) / 2
    }

    /// Device offset of area `i`.
    fn area_off(&self, i: usize) -> usize {
        DATA + i * self.area_cap()
    }

    pub(crate) fn format(dev: NvmDevice) -> Wal {
        dev.write_u64(H_MAGIC, MAGIC);
        dev.write_u64(H_ACTIVE, 0);
        dev.write_u64(H_LEN[0], 0);
        dev.write_u64(H_LEN[1], 0);
        dev.write_u64(H_SNAP, 0);
        dev.persist(0, DATA);
        Wal {
            dev,
            active: 0,
            len: 0,
            snap: 0,
        }
    }

    pub(crate) fn open(dev: NvmDevice) -> Option<Wal> {
        if dev.size() < DATA || dev.read_u64(H_MAGIC) != MAGIC {
            return None;
        }
        let active = (dev.read_u64(H_ACTIVE) as usize).min(1);
        let len = dev.read_u64(H_LEN[active]) as usize;
        let snap = dev.read_u64(H_SNAP) as usize;
        let mut wal = Wal {
            dev,
            active,
            len: 0,
            snap: 0,
        };
        // Clamp the length to the area first, then the snapshot mark to
        // the clamped length — the other order lets a corrupt header
        // leave snap > len and underflow `tail_bytes`.
        wal.len = len.min(wal.area_cap());
        wal.snap = snap.min(wal.len);
        Some(wal)
    }

    /// Appends and commits one batch of records. Returns false (log full)
    /// without committing anything if space runs out. (The engine always
    /// goes through [`commit_batch`](Self::commit_batch); this is the
    /// single-transaction convenience the tests exercise.)
    #[cfg(test)]
    pub(crate) fn commit(&mut self, records: &[Redo]) -> bool {
        self.commit_batch(&[records])
    }

    /// Group commit: appends the records of every batch contiguously and
    /// makes them all durable under a **single** length persist — N
    /// transactions, one commit flush. Returns false (log full) without
    /// committing anything if the active area cannot hold them.
    pub(crate) fn commit_batch(&mut self, batches: &[&[Redo]]) -> bool {
        let mut buf = Vec::new();
        for records in batches {
            for r in *records {
                r.encode(&mut buf);
            }
        }
        if buf.is_empty() {
            return true;
        }
        if self.len + buf.len() > self.area_cap() {
            return false;
        }
        let start = self.area_off(self.active) + self.len;
        self.dev.write_bytes(start, &buf);
        self.dev.flush(start, buf.len());
        self.dev.fence();
        self.len += buf.len();
        self.dev.write_u64(H_LEN[self.active], self.len as u64);
        self.dev.persist(H_LEN[self.active], 8);
        true
    }

    /// Rotating checkpoint: writes `snapshot` (a full-state
    /// reconstruction) at the start of the inactive area, then atomically
    /// flips the active-area word — the header words share one cache
    /// line, so the new length, snapshot mark, and flip land in a single
    /// line persist. The old area's whole history is thereby reclaimed
    /// (compaction). Returns false without changing anything when the
    /// snapshot exceeds one area.
    pub(crate) fn checkpoint(&mut self, snapshot: &[Redo]) -> bool {
        let mut buf = Vec::new();
        for r in snapshot {
            r.encode(&mut buf);
        }
        if buf.len() > self.area_cap() {
            return false;
        }
        let other = 1 - self.active;
        if !buf.is_empty() {
            let start = self.area_off(other);
            self.dev.write_bytes(start, &buf);
            self.dev.flush(start, buf.len());
        }
        self.dev.fence();
        // One persisted header line publishes length + snapshot mark and
        // flips the active area: a crash strictly before this flush
        // replays the old area, strictly after it the new — never a mix.
        self.dev.write_u64(H_LEN[other], buf.len() as u64);
        self.dev.write_u64(H_SNAP, buf.len() as u64);
        self.dev.write_u64(H_ACTIVE, other as u64);
        self.dev.persist(0, DATA);
        self.active = other;
        self.len = buf.len();
        self.snap = buf.len();
        true
    }

    /// Replays every committed record of the active area (the last
    /// checkpoint snapshot plus everything committed after it).
    pub(crate) fn replay(&self) -> Vec<Redo> {
        let mut buf = vec![0u8; self.len];
        if self.len > 0 {
            self.dev.read_bytes(self.area_off(self.active), &mut buf);
        }
        let mut d = Dec { buf: &buf, pos: 0 };
        let mut out = Vec::new();
        while d.pos < buf.len() {
            out.push(Redo::decode(&mut d));
        }
        out
    }

    /// Committed bytes past the last checkpoint snapshot.
    pub(crate) fn tail_bytes(&self) -> usize {
        self.len - self.snap
    }

    /// Committed bytes in the active area.
    #[cfg(test)]
    pub(crate) fn committed_bytes(&self) -> usize {
        self.len
    }

    /// Which area is live (tests observe rotation through this).
    #[cfg(test)]
    pub(crate) fn active_area(&self) -> usize {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    fn sample_records() -> Vec<Redo> {
        vec![
            Redo::CreateTable {
                name: "t".into(),
                columns: vec![("id".into(), ColType::Int), ("n".into(), ColType::Text)],
                primary_key: 0,
            },
            Redo::Insert {
                table: "t".into(),
                row: vec![Value::Int(1), Value::Str("x".into())],
            },
            Redo::Update {
                table: "t".into(),
                key: Value::Int(1),
                row: vec![Value::Int(1), Value::Null],
            },
            Redo::Delete {
                table: "t".into(),
                key: Value::Int(1),
            },
            Redo::CreateIndex {
                table: "t".into(),
                name: "by_n".into(),
                column: 1,
            },
        ]
    }

    #[test]
    fn roundtrip_through_replay() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        let recs = sample_records();
        assert!(w.commit(&recs));
        dev.crash();
        let w2 = Wal::open(dev).unwrap();
        assert_eq!(w2.replay(), recs);
    }

    #[test]
    fn torn_commit_is_invisible() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()[..1]));
        let committed = w.committed_bytes();
        // Let the record bytes flush but crash before the length persist.
        // Record flush = >=1 line; length flush is the last one.
        let f0 = dev.stats().line_flushes;
        assert!(w.commit(&sample_records()[1..2]));
        let per_commit = dev.stats().line_flushes - f0;
        dev.schedule_crash_after_line_flushes(per_commit - 1);
        assert!(w.commit(&sample_records()[2..3]));
        dev.recover();
        let w2 = Wal::open(dev).unwrap();
        assert_eq!(
            w2.committed_bytes(),
            committed + {
                let mut b = Vec::new();
                sample_records()[1].encode(&mut b);
                b.len()
            }
        );
        assert_eq!(w2.replay().len(), 2, "third record torn away");
    }

    #[test]
    fn checkpoint_trims_replay_to_the_tail() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()));
        // Snapshot state (here: just the create) and checkpoint it.
        let snapshot = vec![sample_records()[0].clone()];
        assert!(w.checkpoint(&snapshot));
        assert_eq!(w.tail_bytes(), 0, "checkpoint resets the tail");
        // A tail commit after the checkpoint.
        assert!(w.commit(&sample_records()[1..2]));
        assert!(w.tail_bytes() > 0);
        dev.crash();
        let w2 = Wal::open(dev).unwrap();
        let replayed = w2.replay();
        assert_eq!(replayed.len(), 2, "snapshot + tail only, not history");
        assert_eq!(replayed[0], snapshot[0]);
        assert_eq!(replayed[1], sample_records()[1]);
    }

    #[test]
    fn crash_before_the_rotation_flip_replays_the_old_area() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()[..2]));
        // A checkpoint flushes the snapshot bytes into the inactive area,
        // then persists the header line (length + flip) last. Count the
        // flushes of an identical checkpoint on a scratch copy, then
        // crash one flush early on the real device.
        let probe = NvmDevice::new(NvmConfig::with_size(dev.size()));
        probe.write_bytes(0, &dev.snapshot_persisted());
        probe.persist(0, dev.size());
        let mut wp = Wal::open(probe.clone()).unwrap();
        let f0 = probe.stats().line_flushes;
        assert!(wp.checkpoint(&sample_records()[..1]));
        let per_ckpt = probe.stats().line_flushes - f0;
        dev.schedule_crash_after_line_flushes(per_ckpt - 1);
        assert!(w.checkpoint(&sample_records()[..1]));
        dev.recover();
        let w2 = Wal::open(dev).unwrap();
        // The flip never landed: the old area (the 2-record history) is
        // still the log; the half-written snapshot is inert garbage in
        // the inactive area.
        assert_eq!(w2.active_area(), 0);
        assert_eq!(w2.replay(), sample_records()[..2].to_vec());
    }

    #[test]
    fn rotation_reclaims_the_pre_checkpoint_log() {
        // Tiny log: each area holds only a few records. Without rotation
        // the history would exhaust the device; with it, an unbounded
        // commit count cycles between the two areas for as long as the
        // snapshot stays small.
        let dev = NvmDevice::new(NvmConfig::with_size(4096));
        let mut w = Wal::format(dev.clone());
        let one = &sample_records()[1..2]; // a single small insert
        let snapshot = vec![sample_records()[0].clone()];
        let mut total_commits = 0;
        for _ in 0..64 {
            while w.commit(one) {
                total_commits += 1;
            }
            assert!(w.checkpoint(&snapshot), "snapshot must always fit");
            assert_eq!(w.tail_bytes(), 0);
        }
        let cap = (dev.size() - 64) / 2;
        assert!(
            total_commits * {
                let mut b = Vec::new();
                one[0].encode(&mut b);
                b.len()
            } > 4 * cap,
            "committed far more bytes than one area holds ({total_commits} commits)"
        );
        // Still a consistent log after all that cycling.
        dev.crash();
        let w2 = Wal::open(dev).unwrap();
        assert_eq!(w2.replay()[0], snapshot[0]);
    }

    #[test]
    fn commit_batch_groups_n_txns_under_one_length_persist() {
        let recs = sample_records();
        let batches: Vec<&[Redo]> = vec![&recs[1..2], &recs[2..3], &recs[3..4]];
        // Separate commits: one length persist each.
        let dev_a = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut wa = Wal::format(dev_a.clone());
        let f0 = dev_a.stats().line_flushes;
        for b in &batches {
            assert!(wa.commit(b));
        }
        let separate = dev_a.stats().line_flushes - f0;
        // One grouped commit: identical bytes, one length persist.
        let dev_b = NvmDevice::new(NvmConfig::with_size(1 << 20));
        let mut wb = Wal::format(dev_b.clone());
        let f0 = dev_b.stats().line_flushes;
        assert!(wb.commit_batch(&batches));
        let grouped = dev_b.stats().line_flushes - f0;
        assert!(
            grouped < separate,
            "group commit must save flushes ({grouped} vs {separate})"
        );
        assert_eq!(wa.replay(), wb.replay(), "same committed records");
        assert_eq!(wb.replay().len(), 3);
    }

    #[test]
    fn log_full_is_reported_without_commit() {
        let dev = NvmDevice::new(NvmConfig::with_size(128));
        let mut w = Wal::format(dev);
        let recs = sample_records();
        assert!(!w.commit(&recs));
        assert_eq!(w.committed_bytes(), 0);
    }

    #[test]
    fn open_rejects_foreign_device() {
        let dev = NvmDevice::new(NvmConfig::with_size(1024));
        assert!(Wal::open(dev).is_none());
    }

    #[test]
    fn open_clamps_a_corrupt_header() {
        let dev = NvmDevice::new(NvmConfig::with_size(4096));
        let mut w = Wal::format(dev.clone());
        assert!(w.commit(&sample_records()[..1]));
        // Corrupt the header: a length far past the area and a snapshot
        // mark past the (clamped) length.
        dev.write_u64(16, 5000);
        dev.write_u64(32, 3000);
        dev.persist(0, 64);
        dev.crash();
        let w2 = Wal::open(dev).unwrap();
        assert!(w2.committed_bytes() <= (4096 - 64) / 2);
        assert!(w2.tail_bytes() <= w2.committed_bytes(), "no underflow");
    }
}
