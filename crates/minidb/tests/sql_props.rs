//! Property tests: the SQL engine agrees with a BTreeMap model under
//! arbitrary CRUD interleavings, including through WAL replay.

use espresso_minidb::{Database, Value};
use espresso_nvm::{NvmConfig, NvmDevice};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    Select(i64),
    CrashReopen,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..24, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v % 1000)),
        3 => (0i64..24, any::<i64>()).prop_map(|(k, v)| Op::Update(k, v % 1000)),
        2 => (0i64..24).prop_map(Op::Delete),
        3 => (0i64..24).prop_map(Op::Select),
        1 => Just(Op::CrashReopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_model(ops in proptest::collection::vec(op(), 1..80)) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let mut db = Database::create(dev.clone()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let r = conn.execute(&format!("INSERT INTO t VALUES ({k}, {v})"));
                    if model.contains_key(k) {
                        prop_assert!(r.is_err(), "duplicate key accepted");
                    } else {
                        prop_assert!(r.is_ok());
                        model.insert(*k, *v);
                    }
                }
                Op::Update(k, v) => {
                    let r = conn.execute(&format!("UPDATE t SET v = {v} WHERE id = {k}")).unwrap();
                    prop_assert_eq!(r.affected, usize::from(model.contains_key(k)));
                    if let Some(slot) = model.get_mut(k) {
                        *slot = *v;
                    }
                }
                Op::Delete(k) => {
                    let r = conn.execute(&format!("DELETE FROM t WHERE id = {k}")).unwrap();
                    prop_assert_eq!(r.affected, usize::from(model.remove(k).is_some()));
                }
                Op::Select(k) => {
                    let r = conn.execute(&format!("SELECT * FROM t WHERE id = {k}")).unwrap();
                    match model.get(k) {
                        Some(v) => prop_assert_eq!(&r.rows, &vec![vec![Value::Int(*k), Value::Int(*v)]]),
                        None => prop_assert!(r.rows.is_empty()),
                    }
                }
                Op::CrashReopen => {
                    dev.crash();
                    db = Database::open(dev.clone()).unwrap();
                    conn = db.connect();
                }
            }
        }
        // Final full-table check against the model.
        let rows = conn.execute("SELECT * FROM t").unwrap().rows;
        let got: BTreeMap<i64, i64> = rows
            .into_iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(k), Value::Int(v)) => (*k, *v),
                _ => unreachable!("schema is INT/INT"),
            })
            .collect();
        prop_assert_eq!(got, model);
    }
}
