//! The simulated NVM device.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{LatencyModel, NvmStats, CACHE_LINE};

/// Errors produced by device construction and image I/O.
#[derive(Debug)]
pub enum NvmError {
    /// The requested device size was zero or not a multiple of the line size.
    BadSize(usize),
    /// An image file could not be read or written.
    Io(std::io::Error),
    /// An image file did not match the device size.
    ImageSizeMismatch {
        /// Size of the device in bytes.
        device: usize,
        /// Size of the on-disk image in bytes.
        image: usize,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::BadSize(n) => write!(
                f,
                "device size {n} is not a positive multiple of {CACHE_LINE}"
            ),
            NvmError::Io(e) => write!(f, "image i/o failed: {e}"),
            NvmError::ImageSizeMismatch { device, image } => {
                write!(f, "image size {image} does not match device size {device}")
            }
        }
    }
}

impl std::error::Error for NvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NvmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NvmError {
    fn from(e: std::io::Error) -> Self {
        NvmError::Io(e)
    }
}

/// Construction parameters for an [`NvmDevice`].
#[derive(Debug, Clone)]
pub struct NvmConfig {
    /// Device capacity in bytes. Rounded up to a multiple of [`CACHE_LINE`].
    pub size: usize,
    /// Latency model used for simulated-time accounting.
    pub latency: LatencyModel,
}

impl NvmConfig {
    /// Config of the given size with the zero-cost latency model.
    pub fn with_size(size: usize) -> Self {
        NvmConfig {
            size,
            latency: LatencyModel::zero(),
        }
    }

    /// Config of the given size with the NVM latency model.
    pub fn with_size_and_nvm_latency(size: usize) -> Self {
        NvmConfig {
            size,
            latency: LatencyModel::nvm(),
        }
    }
}

/// What [`NvmDevice::sync_image`] wrote to the image file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImageSyncReport {
    /// Cache lines written to the file.
    pub lines_synced: usize,
    /// Bytes written to the file.
    pub bytes_written: usize,
    /// The whole image was rewritten (missing or mismatched file).
    pub full_rewrite: bool,
}

/// A scheduled power failure, expressed in remaining successful line flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// How many further line flushes will succeed before power is lost.
    pub flushes_remaining: u64,
}

/// A consistent image delta captured by [`NvmDevice::snapshot_sync`].
///
/// The snapshot step runs under the device lock and copies the persisted
/// bytes of every line not yet in the image file; the [`apply`](Self::apply)
/// step writes those copies to the file with **no** device lock held, so
/// mutations (even re-persists of the same lines) proceed while the sync is
/// in flight — the copies pin the commit point's contents.
///
/// If an apply fails or is abandoned, hand the snapshot back to
/// [`NvmDevice::restore_unsynced`] so the next snapshot re-captures its
/// lines; otherwise they would silently never reach the image.
#[derive(Debug)]
pub struct SyncSnapshot {
    device_size: usize,
    /// The whole image must be rewritten (missing or mismatched file);
    /// `runs` then holds one run covering the full persisted image.
    full: bool,
    lines: usize,
    /// `(byte offset, persisted bytes)` runs, coalesced and ascending.
    runs: Vec<(usize, Vec<u8>)>,
}

impl SyncSnapshot {
    /// Cache lines captured.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Bytes the apply will write.
    pub fn bytes(&self) -> usize {
        self.runs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Whether the apply will rewrite the whole image file.
    pub fn is_full_rewrite(&self) -> bool {
        self.full
    }

    /// Whether there is nothing to write.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Writes the captured runs to the image file. Takes no device lock —
    /// this is the half of a sync that can run on a background thread.
    ///
    /// # Errors
    ///
    /// [`NvmError::Io`] on filesystem failure, and
    /// [`NvmError::ImageSizeMismatch`] when a partial snapshot finds the
    /// file missing or resized (something replaced it since the snapshot);
    /// the caller should restore the snapshot's lines and retry with a
    /// fresh snapshot.
    pub fn apply(&self, path: &Path) -> crate::Result<ImageSyncReport> {
        use std::io::{Seek, SeekFrom, Write};
        if self.full {
            std::fs::write(path, &self.runs[0].1)?;
            return Ok(ImageSyncReport {
                lines_synced: self.lines,
                bytes_written: self.device_size,
                full_rewrite: true,
            });
        }
        if self.runs.is_empty() {
            return Ok(ImageSyncReport::default());
        }
        let image = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0) as usize;
        if image != self.device_size {
            return Err(NvmError::ImageSizeMismatch {
                device: self.device_size,
                image,
            });
        }
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        let mut bytes_written = 0;
        for (off, bytes) in &self.runs {
            file.seek(SeekFrom::Start(*off as u64))?;
            file.write_all(bytes)?;
            bytes_written += bytes.len();
        }
        file.flush()?;
        Ok(ImageSyncReport {
            lines_synced: self.lines,
            bytes_written,
            full_rewrite: false,
        })
    }
}

struct Inner {
    volatile: Vec<u8>,
    persisted: Vec<u8>,
    /// One bit per cache line: line differs from the persisted image.
    dirty: Vec<u64>,
    /// One bit per cache line: persisted line differs from the last image
    /// written by [`NvmDevice::save_image`] / [`NvmDevice::sync_image`].
    unsynced: Vec<u64>,
    stats: NvmStats,
    latency: LatencyModel,
    sim_ns: f64,
    crashed: bool,
    plan: Option<CrashPlan>,
}

impl Inner {
    fn mark_dirty(&mut self, line: usize) {
        self.dirty[line / 64] |= 1 << (line % 64);
    }

    fn is_dirty(&self, line: usize) -> bool {
        self.dirty[line / 64] & (1 << (line % 64)) != 0
    }

    fn clear_dirty(&mut self, line: usize) {
        self.dirty[line / 64] &= !(1 << (line % 64));
    }

    fn charge(&mut self, ns: f64) {
        self.sim_ns += ns;
        self.stats.simulated_ns = self.sim_ns as u64;
    }

    fn check_range(&self, addr: usize, len: usize) {
        assert!(
            addr.checked_add(len)
                .is_some_and(|end| end <= self.volatile.len()),
            "nvm access out of range: addr={addr} len={len} size={}",
            self.volatile.len()
        );
    }

    fn write_bytes(&mut self, addr: usize, data: &[u8]) {
        self.check_range(addr, data.len());
        self.volatile[addr..addr + data.len()].copy_from_slice(data);
        let first = addr / CACHE_LINE;
        let last = (addr + data.len().max(1) - 1) / CACHE_LINE;
        for line in first..=last {
            self.mark_dirty(line);
        }
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        let lines = (last - first + 1) as f64;
        let ns = self.latency.write_line_ns * lines;
        self.charge(ns);
    }

    fn flush_range(&mut self, addr: usize, len: usize) {
        self.check_range(addr, len);
        if len == 0 {
            return;
        }
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        for line in first..=last {
            if !self.is_dirty(line) {
                continue;
            }
            // A flush is issued (and costed / counted) even when power has
            // already failed; it just has no durable effect.
            self.stats.line_flushes += 1;
            let ns = self.latency.flush_line_ns;
            self.charge(ns);
            if let Some(plan) = &mut self.plan {
                if plan.flushes_remaining == 0 {
                    self.crashed = true;
                } else {
                    plan.flushes_remaining -= 1;
                }
            }
            if !self.crashed {
                let lo = line * CACHE_LINE;
                let hi = lo + CACHE_LINE;
                self.persisted[lo..hi].copy_from_slice(&self.volatile[lo..hi]);
                self.clear_dirty(line);
                self.unsynced[line / 64] |= 1 << (line % 64);
            }
        }
    }
}

/// A simulated NVDIMM: a flat byte array with an explicit persistence domain.
///
/// Cloning the handle is cheap; all clones refer to the same device.
///
/// Writes go to a volatile cache-line buffer. [`flush`](Self::flush) moves
/// dirty lines into the durable image; [`fence`](Self::fence) orders them
/// (the model is strict, so fences only cost time and count events).
/// [`crash`](Self::crash) discards everything not yet flushed.
///
/// # Example
///
/// ```
/// use espresso_nvm::{NvmDevice, NvmConfig};
/// let dev = NvmDevice::new(NvmConfig::with_size(1024));
/// dev.write_u64(64, 7);
/// dev.persist(64, 8);
/// assert_eq!(dev.read_u64(64), 7);
/// ```
#[derive(Clone)]
pub struct NvmDevice {
    inner: Arc<Mutex<Inner>>,
    size: usize,
}

impl fmt::Debug for NvmDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NvmDevice")
            .field("size", &self.size)
            .finish()
    }
}

impl NvmDevice {
    /// Creates a zero-filled device.
    ///
    /// The size is rounded up to a multiple of [`CACHE_LINE`]; a zero size
    /// is promoted to one line.
    pub fn new(config: NvmConfig) -> Self {
        let size = config.size.max(1).div_ceil(CACHE_LINE) * CACHE_LINE;
        let lines = size / CACHE_LINE;
        NvmDevice {
            inner: Arc::new(Mutex::new(Inner {
                volatile: vec![0; size],
                persisted: vec![0; size],
                dirty: vec![0; lines.div_ceil(64)],
                // A fresh device has never been written to an image, so
                // every line counts as unsynced until the first full save.
                unsynced: vec![u64::MAX; lines.div_ceil(64)],
                stats: NvmStats::default(),
                latency: config.latency,
                sim_ns: 0.0,
                crashed: false,
                plan: None,
            })),
            size,
        }
    }

    /// Device capacity in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the device size.
    pub fn read_u64(&self, addr: usize) -> u64 {
        let mut inner = self.inner.lock();
        inner.check_range(addr, 8);
        inner.stats.reads += 1;
        let ns = inner.latency.read_line_ns;
        inner.charge(ns);
        u64::from_le_bytes(inner.volatile[addr..addr + 8].try_into().unwrap())
    }

    /// Writes a little-endian `u64` at `addr` (volatile until flushed).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the device size.
    pub fn write_u64(&self, addr: usize, value: u64) {
        self.inner.lock().write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device size.
    pub fn read_bytes(&self, addr: usize, buf: &mut [u8]) {
        let mut inner = self.inner.lock();
        inner.check_range(addr, buf.len());
        inner.stats.reads += 1;
        let lines = buf.len().div_ceil(CACHE_LINE).max(1) as f64;
        let ns = inner.latency.read_line_ns * lines;
        inner.charge(ns);
        buf.copy_from_slice(&inner.volatile[addr..addr + buf.len()]);
    }

    /// Writes `data` starting at `addr` (volatile until flushed).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device size.
    pub fn write_bytes(&self, addr: usize, data: &[u8]) {
        self.inner.lock().write_bytes(addr, data);
    }

    /// Fills `[addr, addr + len)` with `byte` (volatile until flushed).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device size.
    pub fn fill(&self, addr: usize, len: usize, byte: u8) {
        if len == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.check_range(addr, len);
        inner.volatile[addr..addr + len]
            .iter_mut()
            .for_each(|b| *b = byte);
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        for line in first..=last {
            inner.mark_dirty(line);
        }
        inner.stats.writes += 1;
        inner.stats.bytes_written += len as u64;
        let ns = inner.latency.write_line_ns * (last - first + 1) as f64;
        inner.charge(ns);
    }

    /// Flushes every dirty cache line overlapping `[addr, addr + len)` into
    /// the persistence domain (the `clflush` loop of §3.5).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device size.
    pub fn flush(&self, addr: usize, len: usize) {
        self.inner.lock().flush_range(addr, len);
    }

    /// Issues a store fence (`sfence`). In this strict model a fence only
    /// accounts time and increments the counter.
    pub fn fence(&self) {
        let mut inner = self.inner.lock();
        inner.stats.fences += 1;
        let ns = inner.latency.fence_ns;
        inner.charge(ns);
    }

    /// Convenience for `flush(addr, len)` followed by `fence()`.
    pub fn persist(&self, addr: usize, len: usize) {
        self.flush(addr, len);
        self.fence();
    }

    /// Simulates an immediate power failure: the volatile buffer reverts to
    /// the persisted image and any scheduled crash plan is cleared.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        let persisted = inner.persisted.clone();
        inner.volatile = persisted;
        inner.dirty.iter_mut().for_each(|w| *w = 0);
        inner.crashed = false;
        inner.plan = None;
    }

    /// Schedules a power failure: the next `n` line flushes succeed, every
    /// later flush is silently dropped. Combine with [`crash`](Self::crash)
    /// (or [`recover`](Self::recover)) to observe the post-failure image.
    pub fn schedule_crash_after_line_flushes(&self, n: u64) {
        let mut inner = self.inner.lock();
        inner.plan = Some(CrashPlan {
            flushes_remaining: n,
        });
        inner.crashed = false;
    }

    /// Whether a scheduled crash has triggered (power is "off": flushes are
    /// being dropped).
    pub fn has_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Reverts the volatile buffer to the persisted image and restores
    /// power. Equivalent to [`crash`](Self::crash); named for readability at
    /// recovery sites.
    pub fn recover(&self) {
        self.crash();
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> NvmStats {
        self.inner.lock().stats
    }

    /// Resets all counters to zero.
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = NvmStats::default();
        inner.sim_ns = 0.0;
    }

    /// Replaces the latency model (counters are kept).
    pub fn set_latency(&self, latency: LatencyModel) {
        self.inner.lock().latency = latency;
    }

    /// Copy of the durable image (what a crash right now would preserve).
    pub fn snapshot_persisted(&self) -> Vec<u8> {
        self.inner.lock().persisted.clone()
    }

    /// Writes the durable image to `path` in full and marks every line as
    /// synced (subsequent [`sync_image`](Self::sync_image) calls write only
    /// what was persisted after this point).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Io`] on filesystem failure.
    pub fn save_image(&self, path: &Path) -> crate::Result<()> {
        let mut inner = self.inner.lock();
        std::fs::write(path, &inner.persisted)?;
        inner.unsynced.iter_mut().for_each(|w| *w = 0);
        Ok(())
    }

    /// Incrementally syncs the durable image at `path`: only cache lines
    /// persisted since the last [`save_image`](Self::save_image) /
    /// `sync_image` are written (contiguous runs are coalesced into single
    /// `write` calls). Falls back to a full rewrite when the file is
    /// missing or its size does not match the device.
    ///
    /// This is the device half of an explicit commit point: the bytes that
    /// reach the file are exactly the persistence domain — what a power
    /// failure at the moment of the sync would have preserved.
    ///
    /// Implemented as [`snapshot_sync`](Self::snapshot_sync) (under the
    /// lock) followed by [`SyncSnapshot::apply`] (off the lock); callers
    /// that want the apply on a background thread use those halves
    /// directly, usually through [`crate::FlushPipeline`].
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Io`] on filesystem failure. The snapshot's
    /// lines are restored on failure, so a retry loses nothing.
    pub fn sync_image(&self, path: &Path) -> crate::Result<ImageSyncReport> {
        let snapshot = self.snapshot_sync(path);
        snapshot.apply(path).inspect_err(|_| {
            self.restore_unsynced(&snapshot);
        })
    }

    /// The snapshot half of [`sync_image`](Self::sync_image): captures
    /// (and copies) every cache line persisted since the last sync, marks
    /// those lines synced, and returns the delta for a later, lock-free
    /// [`SyncSnapshot::apply`]. Checks `path` only to decide between a
    /// delta and a full rewrite.
    pub fn snapshot_sync(&self, path: &Path) -> SyncSnapshot {
        let mut inner = self.inner.lock();
        let total = self.size / CACHE_LINE;
        let full = match std::fs::metadata(path) {
            Ok(m) => m.len() != self.size as u64,
            Err(_) => true,
        };
        if full {
            let runs = vec![(0, inner.persisted.clone())];
            inner.unsynced.iter_mut().for_each(|w| *w = 0);
            return SyncSnapshot {
                device_size: self.size,
                full: true,
                lines: total,
                runs,
            };
        }
        // Word-skipping scan: commits are usually sparse relative to the
        // device, so the bitmap is mostly zero words. Testing one `u64`
        // per 64 lines (instead of every line bit) makes the seal cost
        // proportional to the delta, not the device size.
        let mut runs = Vec::new();
        let mut lines = 0;
        let mut run_start: Option<usize> = None;
        let close_run = |runs: &mut Vec<(usize, Vec<u8>)>,
                         start: Option<usize>,
                         end: usize,
                         persisted: &[u8]| {
            if let Some(start) = start {
                let lo = start * CACHE_LINE;
                let hi = end * CACHE_LINE;
                runs.push((lo, persisted[lo..hi].to_vec()));
            }
        };
        for (w, &word) in inner.unsynced.iter().enumerate() {
            if word == 0 {
                close_run(&mut runs, run_start.take(), w * 64, &inner.persisted);
                continue;
            }
            if word == u64::MAX && (w + 1) * 64 <= total {
                // Fully dirty word: the run continues (or starts) across it.
                run_start.get_or_insert(w * 64);
                lines += 64;
                continue;
            }
            for bit in 0..64 {
                let line = w * 64 + bit;
                if line >= total {
                    break;
                }
                if word & (1 << bit) != 0 {
                    run_start.get_or_insert(line);
                    lines += 1;
                } else {
                    close_run(&mut runs, run_start.take(), line, &inner.persisted);
                }
            }
        }
        close_run(&mut runs, run_start.take(), total, &inner.persisted);
        inner.unsynced.iter_mut().for_each(|w| *w = 0);
        SyncSnapshot {
            device_size: self.size,
            full: false,
            lines,
            runs,
        }
    }

    /// Re-marks every line of `snapshot` as unsynced, undoing the
    /// bookkeeping of [`snapshot_sync`](Self::snapshot_sync) after a
    /// failed or abandoned apply. The next snapshot then re-captures the
    /// lines (with their *current* persisted contents, which are at least
    /// as new), so no committed line can silently miss the image.
    pub fn restore_unsynced(&self, snapshot: &SyncSnapshot) {
        let mut inner = self.inner.lock();
        for (off, bytes) in &snapshot.runs {
            let first = off / CACHE_LINE;
            let last = first + bytes.len() / CACHE_LINE;
            for line in first..last {
                inner.unsynced[line / 64] |= 1 << (line % 64);
            }
        }
    }

    /// Creates a device whose durable *and* volatile contents come from an
    /// image previously written by [`save_image`](Self::save_image).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Io`] on filesystem failure and
    /// [`NvmError::ImageSizeMismatch`] if the image is not line-aligned.
    pub fn load_image(path: &Path, latency: LatencyModel) -> crate::Result<NvmDevice> {
        let image = std::fs::read(path)?;
        if image.is_empty() || image.len() % CACHE_LINE != 0 {
            return Err(NvmError::ImageSizeMismatch {
                device: 0,
                image: image.len(),
            });
        }
        let dev = NvmDevice::new(NvmConfig {
            size: image.len(),
            latency,
        });
        {
            let mut inner = dev.inner.lock();
            inner.persisted.copy_from_slice(&image);
            inner.volatile.copy_from_slice(&image);
            // The persisted state and the on-disk image agree by
            // construction, so a sync right after a load writes nothing.
            inner.unsynced.iter_mut().for_each(|w| *w = 0);
        }
        Ok(dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(size: usize) -> NvmDevice {
        NvmDevice::new(NvmConfig::with_size(size))
    }

    #[test]
    fn rounds_size_up_to_line() {
        assert_eq!(dev(1).size(), CACHE_LINE);
        assert_eq!(dev(65).size(), 2 * CACHE_LINE);
    }

    #[test]
    fn write_read_roundtrip() {
        let d = dev(1024);
        d.write_u64(16, 0x0102_0304_0506_0708);
        assert_eq!(d.read_u64(16), 0x0102_0304_0506_0708);
    }

    #[test]
    fn bytes_roundtrip() {
        let d = dev(1024);
        d.write_bytes(100, b"hello nvm");
        let mut buf = [0u8; 9];
        d.read_bytes(100, &mut buf);
        assert_eq!(&buf, b"hello nvm");
    }

    #[test]
    fn unflushed_writes_lost_on_crash() {
        let d = dev(1024);
        d.write_u64(0, 42);
        d.crash();
        assert_eq!(d.read_u64(0), 0);
    }

    #[test]
    fn flushed_writes_survive_crash() {
        let d = dev(1024);
        d.write_u64(0, 42);
        d.persist(0, 8);
        d.write_u64(8, 43); // same line, dirty again
        d.crash();
        assert_eq!(d.read_u64(0), 42);
        assert_eq!(d.read_u64(8), 0);
    }

    #[test]
    fn flush_is_line_granular() {
        let d = dev(1024);
        d.write_u64(0, 1);
        d.write_u64(8, 2); // same line as 0
        d.write_u64(128, 3); // different line
        d.persist(0, 8); // flushes the whole first line
        d.crash();
        assert_eq!(d.read_u64(0), 1);
        assert_eq!(d.read_u64(8), 2);
        assert_eq!(d.read_u64(128), 0);
    }

    #[test]
    fn fill_then_flush() {
        let d = dev(1024);
        d.fill(64, 128, 0xAB);
        d.persist(64, 128);
        d.crash();
        let mut buf = [0u8; 128];
        d.read_bytes(64, &mut buf);
        assert!(buf.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn clean_lines_are_not_recounted() {
        let d = dev(1024);
        d.write_u64(0, 1);
        d.persist(0, 8);
        let flushes = d.stats().line_flushes;
        d.persist(0, 8); // nothing dirty
        assert_eq!(d.stats().line_flushes, flushes);
    }

    #[test]
    fn scheduled_crash_drops_later_flushes() {
        let d = dev(1024);
        d.schedule_crash_after_line_flushes(1);
        d.write_u64(0, 1);
        d.persist(0, 8); // flush #1: succeeds
        d.write_u64(128, 2);
        d.persist(128, 8); // flush #2: dropped
        assert!(d.has_crashed());
        d.recover();
        assert_eq!(d.read_u64(0), 1);
        assert_eq!(d.read_u64(128), 0);
    }

    #[test]
    fn scheduled_crash_at_zero_drops_everything() {
        let d = dev(1024);
        d.schedule_crash_after_line_flushes(0);
        d.write_u64(0, 9);
        d.persist(0, 8);
        d.recover();
        assert_eq!(d.read_u64(0), 0);
    }

    #[test]
    fn stats_count_operations() {
        let d = dev(1024);
        d.write_u64(0, 1);
        d.read_u64(0);
        d.persist(0, 8);
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.line_flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.bytes_written, 8);
    }

    #[test]
    fn latency_accumulates_simulated_time() {
        let d = NvmDevice::new(NvmConfig {
            size: 1024,
            latency: LatencyModel::nvm(),
        });
        d.write_u64(0, 1);
        d.persist(0, 8);
        assert!(d.stats().simulated_ns > 0);
        let before = d.stats().simulated_ns;
        d.read_u64(0);
        assert!(d.stats().simulated_ns > before);
    }

    #[test]
    fn image_save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(1024);
        d.write_u64(256, 77);
        d.persist(256, 8);
        d.write_u64(512, 88); // not persisted: must not be in the image
        d.save_image(&path).unwrap();

        let d2 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(d2.read_u64(256), 77);
        assert_eq!(d2.read_u64(512), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_image_writes_only_persisted_deltas() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(4096);
        d.write_u64(0, 1);
        d.persist(0, 8);
        // First sync: no file yet, full rewrite.
        let r = d.sync_image(&path).unwrap();
        assert!(r.full_rewrite);
        assert_eq!(r.bytes_written, d.size());
        // Nothing new persisted: the next sync writes zero bytes.
        let r = d.sync_image(&path).unwrap();
        assert!(!r.full_rewrite);
        assert_eq!(r.bytes_written, 0);
        // Persist two distant lines: exactly two lines are written.
        d.write_u64(128, 2);
        d.write_u64(1024, 3);
        d.persist(128, 8);
        d.persist(1024, 8);
        d.write_u64(2048, 4); // never flushed: must not reach the image
        let r = d.sync_image(&path).unwrap();
        assert_eq!(r.lines_synced, 2);
        assert_eq!(r.bytes_written, 2 * CACHE_LINE);
        let d2 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(d2.read_u64(0), 1);
        assert_eq!(d2.read_u64(128), 2);
        assert_eq!(d2.read_u64(1024), 3);
        assert_eq!(d2.read_u64(2048), 0, "unpersisted write stayed out");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_image_coalesces_contiguous_runs() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-sync2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(4096);
        d.sync_image(&path).unwrap();
        d.fill(0, 256, 0xEE);
        d.persist(0, 256);
        let r = d.sync_image(&path).unwrap();
        assert_eq!(r.lines_synced, 4);
        assert_eq!(r.bytes_written, 256);
        let d2 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        let mut buf = [0u8; 256];
        d2.read_bytes(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0xEE));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_pins_bytes_at_seal_time() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(4096);
        d.sync_image(&path).unwrap();
        d.write_u64(0, 5);
        d.persist(0, 8);
        let snap = d.snapshot_sync(&path);
        assert_eq!(snap.lines(), 1);
        assert!(!snap.is_full_rewrite());
        // Re-persist the same line before the apply: the snapshot's copy
        // wins, the newer store waits for the next snapshot.
        d.write_u64(0, 6);
        d.persist(0, 8);
        snap.apply(&path).unwrap();
        let d2 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(d2.read_u64(0), 5);
        let next = d.snapshot_sync(&path);
        assert_eq!(next.lines(), 1, "re-dirtied line is captured again");
        next.apply(&path).unwrap();
        let d3 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(d3.read_u64(0), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sparse_sync_captures_exact_lines_across_word_boundaries() {
        // The word-skipping bitmap scan must produce byte-identical runs
        // to a per-line scan: exercise empty words, a fully-set word, runs
        // straddling 64-line word boundaries, and an isolated tail line.
        let dir = std::env::temp_dir().join(format!("espresso-nvm-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(1 << 20); // 16384 lines = 256 bitmap words
        d.sync_image(&path).unwrap();
        let mut expect_lines = 0;
        // A full 64-line word (lines 128..192).
        for line in 128..192 {
            d.write_u64(line * CACHE_LINE, line as u64);
            d.persist(line * CACHE_LINE, 8);
            expect_lines += 1;
        }
        // A run straddling the word boundary at line 320.
        for line in 318..323 {
            d.write_u64(line * CACHE_LINE, line as u64);
            d.persist(line * CACHE_LINE, 8);
            expect_lines += 1;
        }
        // An isolated line far away (thousands of zero words skipped).
        let last = (1 << 20) / CACHE_LINE - 1;
        d.write_u64(last * CACHE_LINE, 777);
        d.persist(last * CACHE_LINE, 8);
        expect_lines += 1;
        let r = d.sync_image(&path).unwrap();
        assert_eq!(r.lines_synced, expect_lines);
        assert_eq!(r.bytes_written, expect_lines * CACHE_LINE);
        let d2 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        for line in (128..192).chain(318..323) {
            assert_eq!(d2.read_u64(line * CACHE_LINE), line as u64);
        }
        assert_eq!(d2.read_u64(last * CACHE_LINE), 777);
        // Everything synced: the next delta is empty.
        assert_eq!(d.sync_image(&path).unwrap().bytes_written, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_unsynced_recaptures_abandoned_lines() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-rest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(4096);
        d.sync_image(&path).unwrap();
        d.write_u64(256, 9);
        d.persist(256, 8);
        let snap = d.snapshot_sync(&path);
        // Abandon the apply (simulated crash of the sync worker).
        d.restore_unsynced(&snap);
        drop(snap);
        let r = d.sync_image(&path).unwrap();
        assert_eq!(r.lines_synced, 1, "restored line syncs on the retry");
        let d2 = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(d2.read_u64(256), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_apply_refuses_a_replaced_image() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-repl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.img");
        let d = dev(4096);
        d.sync_image(&path).unwrap();
        d.write_u64(0, 1);
        d.persist(0, 8);
        let snap = d.snapshot_sync(&path);
        std::fs::write(&path, [0u8; 16]).unwrap();
        assert!(matches!(
            snap.apply(&path),
            Err(NvmError::ImageSizeMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_image_rejects_bad_size() {
        let dir = std::env::temp_dir().join(format!("espresso-nvm-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.img");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(
            NvmDevice::load_image(&path, LatencyModel::zero()),
            Err(NvmError::ImageSizeMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_read_panics() {
        dev(64).read_u64(60);
    }

    #[test]
    fn clones_share_state() {
        let d = dev(1024);
        let d2 = d.clone();
        d.write_u64(0, 5);
        assert_eq!(d2.read_u64(0), 5);
    }
}
