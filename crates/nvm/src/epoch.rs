//! Epoch clock for lock-free read-side reclamation.
//!
//! The commit pipeline already orders durability with a monotone epoch
//! counter; this module turns that counter into a *reclamation* clock.
//! Readers [`pin`](EpochClock::pin) the current epoch into a per-thread
//! slot before touching shared state and unpin on drop; reclaimers
//! (allocators, GC) ask for the [`min_pinned`](EpochClock::min_pinned)
//! epoch and defer reuse of anything freed at or after it. The protocol
//! is the classic hazard-era scheme (store the epoch, re-validate the
//! clock, retry if it moved), so a successful pin is guaranteed to be
//! visible to every advance that happens after it:
//!
//! ```text
//! reader                         reclaimer
//! e = now            (1)
//! slot = e           (2)
//! now == e? yes      (3)         now += 1          (4)  // after (2) in SeqCst order
//!                                scan sees slot=e  (5)  // so freed@now-1 stays deferred
//! ```
//!
//! Slots are registered in a shared table and cached per thread (keyed by
//! a process-unique clock id, so a recycled allocation can never alias a
//! dead clock's cache entry). Nested or cross-thread pins fall back to
//! fresh overflow slots; unpinned slots nobody references any more are
//! pruned during scans.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use espresso_nvm::EpochClock;
//!
//! let clock = Arc::new(EpochClock::new());
//! let pin = clock.pin();
//! let freed_at = clock.now();
//! clock.advance();
//! assert!(!clock.drained(freed_at), "a reader still pinned at freed_at");
//! drop(pin);
//! assert!(clock.drained(freed_at), "no pins left at or before freed_at");
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Process-wide source of unique clock ids (thread-local cache keys).
static NEXT_CLOCK_ID: AtomicU64 = AtomicU64::new(1);

/// One reader's pinned epoch; `0` means unpinned.
#[derive(Debug, Default)]
struct Slot {
    pinned: AtomicU64,
}

/// A monotone epoch counter plus the table of reader pin slots.
///
/// Cheap to share (`Arc`); all operations are thread-safe. The clock
/// starts at epoch `1` and only ever moves forward.
#[derive(Debug)]
pub struct EpochClock {
    id: u64,
    now: AtomicU64,
    slots: Mutex<Vec<Arc<Slot>>>,
}

impl Default for EpochClock {
    fn default() -> Self {
        EpochClock::new()
    }
}

thread_local! {
    /// Per-thread slot cache: `(clock id, slot)` pairs. Keeping the `Arc`
    /// here holds the slot's strong count above 1, which is exactly the
    /// signal [`EpochClock::min_pinned`] uses not to prune it.
    static SLOT_CACHE: RefCell<Vec<(u64, Arc<Slot>)>> = const { RefCell::new(Vec::new()) };
}

/// How many `(clock, slot)` pairs one thread caches before evicting.
const SLOT_CACHE_CAP: usize = 8;

impl EpochClock {
    /// A fresh clock at epoch `1` with no pinned readers.
    pub fn new() -> EpochClock {
        EpochClock {
            id: NEXT_CLOCK_ID.fetch_add(1, SeqCst),
            now: AtomicU64::new(1),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch.
    pub fn now(&self) -> u64 {
        self.now.load(SeqCst)
    }

    /// Moves the clock one epoch forward and returns the new epoch.
    pub fn advance(&self) -> u64 {
        self.now.fetch_add(1, SeqCst) + 1
    }

    /// Moves the clock forward to at least `epoch` (never backwards).
    /// Lets an external epoch stream — the commit pipeline's sealed
    /// epochs — drive the same clock readers pin against.
    pub fn advance_to(&self, epoch: u64) {
        self.now.fetch_max(epoch, SeqCst);
    }

    /// Pins the current epoch for the calling reader. Until the returned
    /// guard drops, [`min_pinned`](Self::min_pinned) reports at most this
    /// epoch, so anything freed at or after it stays un-reclaimed.
    ///
    /// Lock-free on the hot path: one cached slot per `(thread, clock)`
    /// pair is reused with two atomic stores and two loads. Nested pins
    /// on the same thread (or a cache miss) take the slot-table mutex
    /// once to register a fresh slot.
    pub fn pin(&self) -> EpochPin {
        let slot = self.thread_slot();
        loop {
            let epoch = self.now.load(SeqCst);
            slot.pinned.store(epoch, SeqCst);
            // Re-validate: if the clock already moved, a reclaimer may
            // have scanned before our store landed — retry at the new
            // epoch rather than claim one we cannot prove visible.
            if self.now.load(SeqCst) == epoch {
                return EpochPin { slot, epoch };
            }
            slot.pinned.store(0, SeqCst);
        }
    }

    /// The oldest epoch any live reader holds, or `None` when no reader
    /// is pinned. Reuse of a region freed at epoch `e` is safe only when
    /// `min_pinned() > e` (or no pins remain) — see
    /// [`drained`](Self::drained). Also prunes dead unpinned slots.
    pub fn min_pinned(&self) -> Option<u64> {
        let mut slots = self.slots.lock().unwrap();
        slots.retain(|s| Arc::strong_count(s) > 1 || s.pinned.load(SeqCst) != 0);
        slots
            .iter()
            .map(|s| s.pinned.load(SeqCst))
            .filter(|&e| e != 0)
            .min()
    }

    /// Whether every reader pinned at or before `epoch` is gone: memory
    /// freed at `epoch` may be reused only once this returns `true`.
    pub fn drained(&self, epoch: u64) -> bool {
        self.min_pinned().is_none_or(|min| min > epoch)
    }

    /// The cached slot for this `(thread, clock)` pair if it is free, or
    /// a freshly registered one (nested pin / cache miss / eviction).
    fn thread_slot(&self) -> Arc<Slot> {
        SLOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, slot)) = cache.iter().find(|(id, _)| *id == self.id) {
                if slot.pinned.load(SeqCst) == 0 {
                    return Arc::clone(slot);
                }
                // Nested pin on this thread: the cached slot is busy.
                return self.register_slot();
            }
            let slot = self.register_slot();
            if cache.len() >= SLOT_CACHE_CAP {
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&slot)));
            slot
        })
    }

    fn register_slot(&self) -> Arc<Slot> {
        let slot = Arc::new(Slot::default());
        self.slots.lock().unwrap().push(Arc::clone(&slot));
        slot
    }
}

/// An active reader pin; dropping it releases the epoch. Safe to move to
/// (and drop on) another thread.
#[derive(Debug)]
pub struct EpochPin {
    slot: Arc<Slot>,
    epoch: u64,
}

impl EpochPin {
    /// The epoch this pin holds.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.slot.pinned.store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_clock_is_always_drained() {
        let c = EpochClock::new();
        assert_eq!(c.now(), 1);
        assert!(c.drained(0));
        assert!(c.drained(c.now()));
        assert_eq!(c.min_pinned(), None);
    }

    #[test]
    fn pin_blocks_reuse_until_dropped() {
        let c = EpochClock::new();
        let pin = c.pin();
        assert_eq!(pin.epoch(), 1);
        let freed_at = c.now();
        c.advance();
        assert!(!c.drained(freed_at));
        drop(pin);
        assert!(c.drained(freed_at));
    }

    #[test]
    fn nested_pins_use_distinct_slots() {
        let c = EpochClock::new();
        let outer = c.pin();
        c.advance();
        let inner = c.pin();
        assert_eq!(outer.epoch(), 1);
        assert_eq!(inner.epoch(), 2);
        assert_eq!(c.min_pinned(), Some(1));
        drop(outer);
        assert_eq!(c.min_pinned(), Some(2), "inner pin survives outer drop");
        drop(inner);
        assert_eq!(c.min_pinned(), None);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let c = EpochClock::new();
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(4);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn pins_from_many_threads_report_the_oldest() {
        let c = Arc::new(EpochClock::new());
        let barrier = Arc::new(std::sync::Barrier::new(5));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            let b = Arc::clone(&barrier);
            joins.push(std::thread::spawn(move || {
                let pin = c.pin();
                let e = pin.epoch();
                b.wait(); // all pinned
                b.wait(); // main observed min
                drop(pin);
                e
            }));
        }
        barrier.wait();
        let min = c.min_pinned().expect("four readers pinned");
        barrier.wait();
        let epochs: Vec<u64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(min, *epochs.iter().min().unwrap());
        // Readers dropped their pins after the second barrier; their
        // threads are joined, so every slot is unpinned now.
        assert_eq!(c.min_pinned(), None);
    }

    #[test]
    fn cross_thread_guard_drop_releases_the_pin() {
        let c = Arc::new(EpochClock::new());
        let pin = c.pin();
        std::thread::spawn(move || drop(pin)).join().unwrap();
        assert_eq!(c.min_pinned(), None);
    }

    #[test]
    fn dead_slots_are_pruned_but_cached_ones_survive() {
        let c = EpochClock::new();
        // Nested pins leave overflow slots behind.
        let a = c.pin();
        let b = c.pin();
        drop(b);
        drop(a);
        assert_eq!(c.min_pinned(), None);
        let after_prune = c.slots.lock().unwrap().len();
        // The thread-cached slot is retained (strong count 2); the
        // overflow slot from the nested pin is pruned.
        assert_eq!(after_prune, 1);
    }
}
