//! Cost model for simulated NVM time accounting.

/// Per-operation latency parameters, in (simulated) nanoseconds.
///
/// Defaults follow the read-fast / write-slow asymmetry reported for
/// emerging NVM (§5 cites HiKV: write latency several times DRAM, read
/// latency rivaling DRAM). The absolute values only matter relative to each
/// other; benchmarks report ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Cost of reading one cache line.
    pub read_line_ns: f64,
    /// Cost of writing one cache line (into the volatile buffer).
    pub write_line_ns: f64,
    /// Cost of flushing one dirty cache line to the persistence domain.
    pub flush_line_ns: f64,
    /// Cost of a store fence.
    pub fence_ns: f64,
}

impl LatencyModel {
    /// Model with every cost set to zero; useful when only crash semantics
    /// matter (most tests).
    pub fn zero() -> Self {
        LatencyModel {
            read_line_ns: 0.0,
            write_line_ns: 0.0,
            flush_line_ns: 0.0,
            fence_ns: 0.0,
        }
    }

    /// A DRAM-like model: symmetric, no flush penalty beyond the write.
    pub fn dram() -> Self {
        LatencyModel {
            read_line_ns: 15.0,
            write_line_ns: 15.0,
            flush_line_ns: 0.0,
            fence_ns: 0.0,
        }
    }

    /// An NVM-like model: reads near DRAM, writes ~4x slower, flushes
    /// costly (queue drain + media write), fences moderate.
    pub fn nvm() -> Self {
        LatencyModel {
            read_line_ns: 20.0,
            write_line_ns: 60.0,
            flush_line_ns: 120.0,
            fence_ns: 30.0,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::nvm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.read_line_ns, 0.0);
        assert_eq!(m.flush_line_ns, 0.0);
    }

    #[test]
    fn nvm_writes_slower_than_reads() {
        let m = LatencyModel::nvm();
        assert!(m.write_line_ns > m.read_line_ns);
        assert!(m.flush_line_ns > m.write_line_ns);
    }

    #[test]
    fn default_is_nvm() {
        assert_eq!(LatencyModel::default(), LatencyModel::nvm());
    }
}
