//! Simulated byte-addressable non-volatile memory (NVM).
//!
//! The paper evaluates Espresso on a Viking NVDIMM; this crate substitutes a
//! software model that is *stronger* for testing crash consistency than real
//! hardware: every store lands in a volatile cache-line buffer and only
//! reaches the durable image through explicit [`NvmDevice::flush`] +
//! [`NvmDevice::fence`] calls (the `clflush`/`sfence` pair of §3.5). A test
//! can therefore [`crash`](NvmDevice::crash) the device at any point — or
//! schedule a crash at the *n*-th flush — and observe exactly the bytes a
//! power failure would have left behind.
//!
//! The device also keeps an instruction-level cost model
//! ([`LatencyModel`]) so benchmarks can report simulated NVM time (writes
//! several times slower than reads, flushes costlier still), reproducing the
//! asymmetry that motivates the paper's field-level tracking (§5).
//!
//! # Example
//!
//! ```
//! use espresso_nvm::{NvmDevice, NvmConfig};
//!
//! let dev = NvmDevice::new(NvmConfig::with_size(4096));
//! dev.write_u64(0, 0xdead_beef);
//! dev.crash();                       // unflushed -> lost
//! assert_eq!(dev.read_u64(0), 0);
//!
//! dev.write_u64(0, 0xdead_beef);
//! dev.persist(0, 8);                 // flush + fence
//! dev.crash();
//! assert_eq!(dev.read_u64(0), 0xdead_beef);
//! ```

mod device;
mod epoch;
mod latency;
mod pipeline;
mod stats;

pub use device::{CrashPlan, ImageSyncReport, NvmConfig, NvmDevice, NvmError, SyncSnapshot};
pub use epoch::{EpochClock, EpochPin};
pub use latency::LatencyModel;
pub use pipeline::{EpochState, FlushPipeline};
pub use stats::NvmStats;

/// Size of a simulated cache line in bytes.
///
/// Flushes operate at this granularity, exactly like `clflush`.
pub const CACHE_LINE: usize = 64;

/// Result alias for fallible NVM operations.
pub type Result<T> = std::result::Result<T, NvmError>;
