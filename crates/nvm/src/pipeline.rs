//! Background image-sync pipeline: the apply half of a commit runs off
//! the caller's thread.
//!
//! A commit point is two steps (see [`NvmDevice::snapshot_sync`] /
//! [`SyncSnapshot::apply`]): *snapshot* the delta under the device lock,
//! then *apply* it to the image file with no lock held. A
//! [`FlushPipeline`] owns one worker thread and a FIFO queue of apply
//! jobs; submitting a snapshot seals an **epoch** (monotonically
//! increasing per pipeline) and returns immediately, and
//! [`wait_durable`](FlushPipeline::wait_durable) is the durability
//! barrier for any sealed epoch. Mutations — including re-persists of the
//! very lines being synced — proceed while the apply runs, because the
//! snapshot copied its bytes at seal time.
//!
//! Jobs apply strictly in submission order, so the image file always
//! steps from one sealed epoch to the next. When an apply fails, the
//! failed job's lines are handed back to the device
//! ([`NvmDevice::restore_unsynced`]) and every job already queued behind
//! it is discarded the same way — those snapshots assumed the failed
//! epoch's lines had reached the file. The next snapshot re-captures
//! everything restored, so one successful later commit heals the image.
//!
//! One race needs an explicit handshake: a snapshot taken *before* a
//! restore but submitted *after* it is missing the restored lines, and
//! applying it would punch a cross-epoch hole into the image. Every
//! restore therefore bumps a **generation**
//! ([`seal_generation`](FlushPipeline::seal_generation)); callers read it
//! before snapshotting and pass it to
//! [`submit_sealed`](FlushPipeline::submit_sealed), which refuses (and
//! restores) a snapshot from an older generation.
//!
//! For crash testing, [`set_paused`](FlushPipeline::set_paused) holds
//! applies in the queue and [`abort_pending`](FlushPipeline::abort_pending)
//! discards them (restoring their lines), simulating a process that died
//! between seal and apply. Dropping the pipeline is graceful: it drains
//! the queue, then joins the worker.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::{EpochClock, NvmDevice, NvmError, SyncSnapshot};

/// The non-consuming answer to "where is my sealed epoch?" — see
/// [`FlushPipeline::epoch_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochState {
    /// Sealed, apply not yet completed: queued, paused, or mid-apply.
    InFlight,
    /// The epoch's content is durably in the image file — its own apply
    /// landed, or a later generation-checked apply covered it.
    Durable,
    /// The apply failed or was aborted and no later apply has covered it;
    /// the reason is what [`wait_durable`](FlushPipeline::wait_durable)
    /// would report. The epoch's lines were restored to the device, so a
    /// fresh commit heals.
    Failed(String),
}

struct Job {
    epoch: u64,
    dev: NvmDevice,
    path: PathBuf,
    snapshot: SyncSnapshot,
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    /// Highest epoch handed out by `submit`.
    sealed: u64,
    /// Highest epoch whose apply reached the image file.
    durable: u64,
    /// The worker popped a job and is applying it (no state lock held).
    in_flight: bool,
    /// Bumped every time lines are restored to a device (failed apply or
    /// abort). A snapshot taken before a restore is missing the restored
    /// lines, so `submit_sealed` refuses snapshots from an older
    /// generation — see the module docs.
    restore_gen: u64,
    /// Epochs whose apply failed or was aborted (lines restored), with
    /// the reason. Waiters on these epochs get an error. Entries at or
    /// below `durable` are pruned: once a later snapshot (which, by the
    /// generation check, re-captured the restored lines) has applied,
    /// the failed epoch's content *is* durably in the image.
    failed: Vec<(u64, String)>,
    paused: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled on submit / unpause / shutdown (wakes the worker).
    work: Condvar,
    /// Signaled when a job completes, fails, or is aborted (wakes waiters).
    done: Condvar,
}

/// A background worker that applies [`SyncSnapshot`]s to image files in
/// submission order. See the module docs for the epoch protocol.
pub struct FlushPipeline {
    shared: Arc<Shared>,
    /// The reclamation clock readers pin against: sealed epochs tick it
    /// forward, so "freed at epoch e" and "sealed epoch e" share one
    /// timeline. See [`epoch_clock`](Self::epoch_clock).
    clock: Arc<EpochClock>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FlushPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().unwrap();
        f.debug_struct("FlushPipeline")
            .field("sealed", &state.sealed)
            .field("durable", &state.durable)
            .field("pending", &state.queue.len())
            .finish()
    }
}

impl Default for FlushPipeline {
    fn default() -> Self {
        FlushPipeline::new()
    }
}

impl FlushPipeline {
    /// Spawns the worker thread.
    pub fn new() -> FlushPipeline {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let for_worker = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("espresso-flush".to_string())
            .spawn(move || worker_loop(&for_worker))
            .expect("spawn flush worker");
        FlushPipeline {
            shared,
            clock: Arc::new(EpochClock::new()),
            worker: Some(worker),
        }
    }

    /// The epoch clock this pipeline ticks: every sealed epoch advances
    /// it, so readers that [`pin`](EpochClock::pin) the clock and
    /// reclaimers that check [`drained`](EpochClock::drained) speak the
    /// same epoch stream as [`wait_durable`](Self::wait_durable).
    pub fn epoch_clock(&self) -> Arc<EpochClock> {
        Arc::clone(&self.clock)
    }

    /// The restore generation to read **before** taking a snapshot that
    /// will be handed to [`submit_sealed`](Self::submit_sealed). If a
    /// failed apply (or an abort) restores lines between the snapshot and
    /// the submit, the generation moves on and the stale snapshot —
    /// which is missing the restored lines — is refused instead of
    /// punching a cross-epoch hole into the image.
    pub fn seal_generation(&self) -> u64 {
        self.shared.state.lock().unwrap().restore_gen
    }

    /// Seals the next epoch: enqueues `snapshot` for a background apply to
    /// `path` and returns the epoch to pass to
    /// [`wait_durable`](Self::wait_durable). The snapshot must come from
    /// `dev` (its lines are restored to `dev` if the apply fails), and
    /// `seal_gen` must be a [`seal_generation`](Self::seal_generation)
    /// read before the snapshot was taken: if a restore happened in
    /// between, the epoch is sealed as failed (lines restored) rather
    /// than queued, and the caller's retry commit heals.
    pub fn submit_sealed(
        &self,
        seal_gen: u64,
        dev: &NvmDevice,
        path: PathBuf,
        snapshot: SyncSnapshot,
    ) -> u64 {
        let mut state = self.shared.state.lock().unwrap();
        state.sealed += 1;
        let epoch = state.sealed;
        self.clock.advance_to(epoch);
        if state.restore_gen != seal_gen {
            dev.restore_unsynced(&snapshot);
            state.restore_gen += 1;
            state.failed.push((
                epoch,
                "discarded: lines were restored while this epoch was sealing".to_string(),
            ));
            drop(state);
            self.shared.done.notify_all();
            return epoch;
        }
        state.queue.push_back(Job {
            epoch,
            dev: dev.clone(),
            path,
            snapshot,
        });
        self.shared.work.notify_one();
        epoch
    }

    /// [`submit_sealed`](Self::submit_sealed) for callers whose snapshot
    /// was taken with no concurrent applies in flight (tests, one-shot
    /// syncs): reads the generation at enqueue time.
    pub fn submit(&self, dev: &NvmDevice, path: PathBuf, snapshot: SyncSnapshot) -> u64 {
        let seal_gen = self.seal_generation();
        self.submit_sealed(seal_gen, dev, path, snapshot)
    }

    /// Blocks until `epoch`'s content is durable in the image file. This
    /// is the durability barrier: on `Ok`, the file holds at least that
    /// sealed epoch's state — either its own apply landed, or (after a
    /// failure) a later snapshot that re-captured its restored lines did.
    ///
    /// Epochs from before this pipeline existed (`0`) return immediately.
    ///
    /// # Errors
    ///
    /// [`NvmError::Io`] when the epoch's apply failed or was aborted and
    /// no later apply has covered it; its lines were restored, so a fresh
    /// commit re-captures them.
    pub fn wait_durable(&self, epoch: u64) -> crate::Result<()> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.durable >= epoch {
                return Ok(());
            }
            if let Some((_, reason)) = state.failed.iter().find(|(e, _)| *e == epoch) {
                return Err(NvmError::Io(std::io::Error::other(reason.clone())));
            }
            state = self.shared.done.wait(state).unwrap();
        }
    }

    /// Blocks until the queue is empty and no apply is in flight. Pair
    /// with [`abort_pending`](Self::abort_pending) before retargeting or
    /// deleting an image file: an apply that already left the queue
    /// cannot be aborted, only waited out. (While paused, queued jobs
    /// never start — abort them first or this blocks until resume.)
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while state.in_flight || !state.queue.is_empty() {
            state = self.shared.done.wait(state).unwrap();
        }
    }

    /// Where a sealed epoch stands, without blocking and without
    /// consuming anything: [`EpochState::Durable`] once `durable` has
    /// passed it (covering applies count, exactly as in
    /// [`wait_durable`](Self::wait_durable)), [`EpochState::Failed`] with
    /// the failure reason while it sits in the failure cascade uncovered,
    /// [`EpochState::InFlight`] otherwise. Epoch `0` (from before this
    /// pipeline existed) is trivially durable.
    pub fn epoch_state(&self, epoch: u64) -> EpochState {
        let state = self.shared.state.lock().unwrap();
        if state.durable >= epoch {
            return EpochState::Durable;
        }
        if let Some((_, reason)) = state.failed.iter().find(|(e, _)| *e == epoch) {
            return EpochState::Failed(reason.clone());
        }
        EpochState::InFlight
    }

    /// Highest epoch handed out by [`submit`](Self::submit).
    pub fn sealed_epoch(&self) -> u64 {
        self.shared.state.lock().unwrap().sealed
    }

    /// Highest epoch whose apply has completed.
    pub fn durable_epoch(&self) -> u64 {
        self.shared.state.lock().unwrap().durable
    }

    /// Queued applies not yet started.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty and no apply is in flight right now —
    /// the non-blocking counterpart of [`wait_idle`](Self::wait_idle).
    pub fn is_idle(&self) -> bool {
        let state = self.shared.state.lock().unwrap();
        !state.in_flight && state.queue.is_empty()
    }

    /// Whether the worker is currently paused ([`set_paused`](Self::set_paused)).
    /// Serving layers use this together with [`pending`](Self::pending) to
    /// observe a lagging pipeline and shed load instead of queueing
    /// unboundedly.
    pub fn is_paused(&self) -> bool {
        self.shared.state.lock().unwrap().paused
    }

    /// Pauses (or resumes) the worker. While paused, submits queue up and
    /// `wait_durable` on them blocks — pair with
    /// [`abort_pending`](Self::abort_pending) to test crash windows
    /// deterministically.
    pub fn set_paused(&self, paused: bool) {
        let mut state = self.shared.state.lock().unwrap();
        state.paused = paused;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Discards every queued apply — the crash-injection hook: each
    /// discarded snapshot's lines are restored to its device (so a later
    /// commit re-captures them) and its epoch reports as failed to
    /// waiters. Returns how many jobs were discarded. A job already being
    /// applied is not affected.
    pub fn abort_pending(&self) -> usize {
        let mut state = self.shared.state.lock().unwrap();
        let n = state.queue.len();
        while let Some(job) = state.queue.pop_front() {
            job.dev.restore_unsynced(&job.snapshot);
            state
                .failed
                .push((job.epoch, "apply aborted before it ran".to_string()));
        }
        if n > 0 {
            state.restore_gen += 1;
        }
        drop(state);
        self.shared.done.notify_all();
        n
    }
}

impl Drop for FlushPipeline {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().unwrap();
    loop {
        // Shutdown overrides pause: a dropped pipeline drains its queue so
        // every sealed epoch still reaches the image.
        while !state.shutdown && (state.queue.is_empty() || state.paused) {
            state = shared.work.wait(state).unwrap();
        }
        let Some(job) = state.queue.pop_front() else {
            debug_assert!(state.shutdown);
            return;
        };
        state.in_flight = true;
        drop(state);
        let result = job.snapshot.apply(&job.path);
        state = shared.state.lock().unwrap();
        state.in_flight = false;
        match result {
            Ok(_) => {
                state.durable = job.epoch;
                // Anything that failed below this epoch is covered now:
                // this snapshot was generation-checked, so it carried the
                // restored lines of every earlier failure.
                let durable = state.durable;
                state.failed.retain(|(e, _)| *e > durable);
            }
            Err(e) => {
                job.dev.restore_unsynced(&job.snapshot);
                state.restore_gen += 1;
                state.failed.push((job.epoch, e.to_string()));
                // Later queued snapshots assumed this epoch's lines were in
                // the file; discard them (restoring their lines) so the
                // image never mixes epochs around a hole.
                while let Some(next) = state.queue.pop_front() {
                    next.dev.restore_unsynced(&next.snapshot);
                    state.failed.push((
                        next.epoch,
                        format!("discarded: epoch {} failed to apply ({e})", job.epoch),
                    ));
                }
            }
        }
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatencyModel, NvmConfig};

    fn dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("espresso-pipe-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn dev(size: usize) -> NvmDevice {
        NvmDevice::new(NvmConfig::with_size(size))
    }

    #[test]
    fn async_epochs_reach_the_image_in_order() {
        let d = dir("order");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        let mut last = 0;
        for i in 0..5u64 {
            device.write_u64(64 * i as usize, i + 1);
            device.persist(64 * i as usize, 8);
            let snap = device.snapshot_sync(&path);
            last = pipe.submit(&device, path.clone(), snap);
        }
        pipe.wait_durable(last).unwrap();
        assert_eq!(pipe.durable_epoch(), 5);
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        for i in 0..5u64 {
            assert_eq!(loaded.read_u64(64 * i as usize), i + 1);
        }
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn abort_restores_lines_for_the_next_commit() {
        let d = dir("abort");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        // Epoch 1: durable baseline.
        device.write_u64(0, 7);
        device.persist(0, 8);
        let e1 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(e1).unwrap();
        // Epoch 2: sealed but never applied (the crash window).
        pipe.set_paused(true);
        device.write_u64(128, 8);
        device.persist(128, 8);
        let e2 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        assert_eq!(pipe.abort_pending(), 1);
        assert!(pipe.wait_durable(e2).is_err(), "aborted epoch errors");
        // The image still holds epoch 1 exactly.
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(loaded.read_u64(0), 7);
        assert_eq!(loaded.read_u64(128), 0);
        // A fresh commit re-captures the restored lines and heals.
        pipe.set_paused(false);
        let e3 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(e3).unwrap();
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(loaded.read_u64(128), 8);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn epoch_state_tracks_the_failure_cascade() {
        let d = dir("state");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        assert_eq!(
            pipe.epoch_state(0),
            EpochState::Durable,
            "pre-pipeline epoch"
        );
        let e1 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(e1).unwrap();
        assert_eq!(pipe.epoch_state(e1), EpochState::Durable);
        // A sealed-but-unapplied epoch is in flight, then fails on abort.
        pipe.set_paused(true);
        device.write_u64(0, 9);
        device.persist(0, 8);
        let e2 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        assert_eq!(pipe.epoch_state(e2), EpochState::InFlight);
        pipe.abort_pending();
        match pipe.epoch_state(e2) {
            EpochState::Failed(reason) => assert!(reason.contains("aborted"), "{reason}"),
            other => panic!("aborted epoch must report Failed, got {other:?}"),
        }
        // The state is re-askable (non-consuming) and heals once a later
        // apply covers the restored lines.
        assert!(matches!(pipe.epoch_state(e2), EpochState::Failed(_)));
        pipe.set_paused(false);
        let e3 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(e3).unwrap();
        assert_eq!(pipe.epoch_state(e2), EpochState::Durable, "covered by e3");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn sealed_epochs_tick_the_reclamation_clock() {
        let d = dir("clock");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        let clock = pipe.epoch_clock();
        let before = clock.now();
        let e = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        assert!(clock.now() >= e, "seal advanced the clock past the epoch");
        assert!(clock.now() >= before);
        pipe.wait_durable(e).unwrap();
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn failed_apply_discards_the_jobs_behind_it() {
        let d = dir("fail");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        let e1 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(e1).unwrap();
        pipe.set_paused(true);
        device.write_u64(0, 1);
        device.persist(0, 8);
        let e2 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        device.write_u64(64, 2);
        device.persist(64, 8);
        let e3 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        // Replace the image with a wrong-sized file: partial applies must
        // refuse it rather than write a torn image.
        std::fs::write(&path, [0u8; 32]).unwrap();
        pipe.set_paused(false);
        assert!(pipe.wait_durable(e2).is_err());
        assert!(pipe.wait_durable(e3).is_err(), "queued behind the failure");
        // Both epochs' lines were restored: one sync rebuilds a complete
        // (full-rewrite) image.
        device.sync_image(&path).unwrap();
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(loaded.read_u64(0), 1);
        assert_eq!(loaded.read_u64(64), 2);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn stale_seal_generation_is_refused_and_heals() {
        let d = dir("gen");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        let e1 = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(e1).unwrap();
        // A queued epoch that will be aborted (= a restore).
        pipe.set_paused(true);
        device.write_u64(0, 1);
        device.persist(0, 8);
        pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        // Concurrent committer: reads the generation, snapshots ...
        let gen = pipe.seal_generation();
        device.write_u64(128, 2);
        device.persist(128, 8);
        let snap = device.snapshot_sync(&path);
        // ... and an abort restores lines before the submit lands.
        pipe.abort_pending();
        let stale = pipe.submit_sealed(gen, &device, path.clone(), snap);
        assert!(
            pipe.wait_durable(stale).is_err(),
            "stale-generation snapshot must be refused, not applied over the hole"
        );
        // Both epochs' lines were restored: one fresh commit heals all.
        pipe.set_paused(false);
        let heal = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        pipe.wait_durable(heal).unwrap();
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(loaded.read_u64(0), 1);
        assert_eq!(loaded.read_u64(128), 2);
        // The healing apply covers the earlier failures: waiting on them
        // now reports durable.
        pipe.wait_durable(stale).unwrap();
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn wait_idle_outlasts_an_in_flight_apply() {
        let d = dir("idle");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        for i in 0..4u64 {
            device.write_u64(64 * i as usize, i + 1);
            device.persist(64 * i as usize, 8);
            pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        }
        pipe.wait_idle();
        assert_eq!(pipe.pending(), 0);
        assert_eq!(pipe.durable_epoch(), 4);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn drop_drains_sealed_epochs() {
        let d = dir("drain");
        let path = d.join("img");
        let device = dev(4096);
        {
            let pipe = FlushPipeline::new();
            pipe.set_paused(true);
            device.write_u64(0, 42);
            device.persist(0, 8);
            pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
            // Dropped while paused with a queued job: drop drains it.
        }
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(loaded.read_u64(0), 42);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn mutations_after_seal_stay_out_of_the_epoch() {
        let d = dir("seal");
        let path = d.join("img");
        let device = dev(4096);
        let pipe = FlushPipeline::new();
        device.write_u64(0, 1);
        device.persist(0, 8);
        pipe.set_paused(true);
        let epoch = pipe.submit(&device, path.clone(), device.snapshot_sync(&path));
        // Dirty the same line again while the apply is pending: the
        // snapshot's copy pins the sealed value.
        device.write_u64(0, 999);
        device.persist(0, 8);
        pipe.set_paused(false);
        pipe.wait_durable(epoch).unwrap();
        let loaded = NvmDevice::load_image(&path, LatencyModel::zero()).unwrap();
        assert_eq!(loaded.read_u64(0), 1, "sealed epoch, not the later store");
        std::fs::remove_dir_all(&d).unwrap();
    }
}
