//! Operation counters for the simulated device.

/// Counters accumulated by an [`NvmDevice`](crate::NvmDevice).
///
/// `simulated_ns` integrates the [`LatencyModel`](crate::LatencyModel) over
/// every operation; the remaining fields count raw events, which the
/// crash-consistency tests use to sweep "crash after the n-th flush".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmStats {
    /// Number of read operations (any width).
    pub reads: u64,
    /// Number of write operations (any width).
    pub writes: u64,
    /// Bytes written (into the volatile buffer).
    pub bytes_written: u64,
    /// Number of `flush` calls (one per line actually flushed).
    pub line_flushes: u64,
    /// Number of `fence` calls.
    pub fences: u64,
    /// Total simulated time in nanoseconds (integer-truncated).
    pub simulated_ns: u64,
}

impl NvmStats {
    /// Difference `self - earlier`, for measuring a phase.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counters.
    #[must_use]
    pub fn since(&self, earlier: &NvmStats) -> NvmStats {
        NvmStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_written: self.bytes_written - earlier.bytes_written,
            line_flushes: self.line_flushes - earlier.line_flushes,
            fences: self.fences - earlier.fences,
            simulated_ns: self.simulated_ns - earlier.simulated_ns,
        }
    }
}

impl std::fmt::Display for NvmStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} bytes={} flushes={} fences={} sim_ns={}",
            self.reads,
            self.writes,
            self.bytes_written,
            self.line_flushes,
            self.fences,
            self.simulated_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = NvmStats {
            reads: 10,
            writes: 5,
            bytes_written: 40,
            line_flushes: 2,
            fences: 1,
            simulated_ns: 100,
        };
        let b = NvmStats {
            reads: 4,
            writes: 1,
            bytes_written: 8,
            line_flushes: 1,
            fences: 0,
            simulated_ns: 30,
        };
        let d = a.since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.writes, 4);
        assert_eq!(d.bytes_written, 32);
        assert_eq!(d.line_flushes, 1);
        assert_eq!(d.fences, 1);
        assert_eq!(d.simulated_ns, 70);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", NvmStats::default());
        assert!(s.contains("flushes=0"));
    }
}
