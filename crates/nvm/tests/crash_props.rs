//! Property tests for the device's crash semantics: the durable image
//! after a crash is exactly the set of flushed lines, regardless of the
//! write/flush interleaving.

use espresso_nvm::{NvmConfig, NvmDevice, CACHE_LINE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(u16, u64),
    Flush(u16),
    Fence,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u16..512, any::<u64>()).prop_map(|(w, v)| Op::Write(w, v)),
        3 => (0u16..512).prop_map(Op::Flush),
        1 => Just(Op::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn crash_preserves_exactly_the_flushed_state(ops in proptest::collection::vec(op(), 1..120)) {
        let size = 512 * 8;
        let dev = NvmDevice::new(NvmConfig::with_size(size));
        // A model of what must be durable: the last flushed value per word.
        let mut volatile_model = vec![0u64; 512];
        let mut durable_model = vec![0u64; 512];
        for op in &ops {
            match op {
                Op::Write(w, v) => {
                    dev.write_u64(*w as usize * 8, *v);
                    volatile_model[*w as usize] = *v;
                }
                Op::Flush(w) => {
                    let addr = *w as usize * 8;
                    dev.flush(addr, 8);
                    // Flushing one word makes its whole line durable.
                    let line_start = addr / CACHE_LINE * CACHE_LINE / 8;
                    let line = line_start..line_start + CACHE_LINE / 8;
                    durable_model[line.clone()].copy_from_slice(&volatile_model[line]);
                }
                Op::Fence => dev.fence(),
            }
        }
        dev.crash();
        for (w, want) in durable_model.iter().enumerate() {
            prop_assert_eq!(dev.read_u64(w * 8), *want, "word {}", w);
        }
    }

    #[test]
    fn scheduled_crash_is_a_prefix_of_flushes(n_writes in 1usize..40, cut in 0u64..40) {
        let dev = NvmDevice::new(NvmConfig::with_size(64 * 64));
        dev.schedule_crash_after_line_flushes(cut);
        for i in 0..n_writes {
            let addr = (i % 64) * 64;
            dev.write_u64(addr, i as u64 + 1);
            dev.persist(addr, 8);
        }
        dev.recover();
        // Exactly the first `cut` flushed lines survive (each write goes
        // to a distinct line per round-robin slot, overwritten later).
        let mut survivors = 0;
        for slot in 0..64usize {
            if dev.read_u64(slot * 64) != 0 {
                survivors += 1;
            }
        }
        prop_assert!(survivors as u64 <= cut.min(n_writes as u64));
    }

    #[test]
    fn image_roundtrip_is_identity(writes in proptest::collection::vec((0usize..256, any::<u64>()), 1..40)) {
        let dev = NvmDevice::new(NvmConfig::with_size(256 * 8));
        for (w, v) in &writes {
            dev.write_u64(w * 8, *v);
        }
        dev.persist(0, 256 * 8);
        let image = dev.snapshot_persisted();
        let dev2 = NvmDevice::new(NvmConfig::with_size(256 * 8));
        dev2.write_bytes(0, &image);
        for w in 0..256 {
            prop_assert_eq!(dev2.read_u64(w * 8), dev.read_u64(w * 8));
        }
    }
}
