//! Object header layout and mark-word bit twiddling.

/// Word index of the mark word within an object.
pub const MARK_WORD: usize = 0;
/// Word index of the class word within an object.
pub const KLASS_WORD: usize = 1;
/// Word index of the length word within an array object.
pub const ARRAY_LENGTH_WORD: usize = 2;
/// Header size of a plain instance, in words.
pub const HEADER_WORDS: usize = 2;
/// Header size of an array, in words.
pub const ARRAY_HEADER_WORDS: usize = 3;

/// Mark-word field accessors.
///
/// Layout (least significant first):
///
/// ```text
/// bits  0..32  GC timestamp   (§4.2: reused promotion bits; an object is
///                              "processed" when its stamp equals the
///                              heap's persisted global timestamp)
/// bits 32..40  GC age         (volatile young-gen survival count)
/// bit  62      mark bit       (transient mark for the volatile old GC)
/// bit  63      forwarded bit  (mark word holds a forwarding address)
/// ```
///
/// When the forwarded bit is set the low 62 bits hold the destination
/// address (used only inside a volatile collection; never persisted).
pub mod mark {
    const TS_MASK: u64 = 0xFFFF_FFFF;
    const AGE_SHIFT: u32 = 32;
    const AGE_MASK: u64 = 0xFF;
    const MARK_BIT: u64 = 1 << 62;
    const FWD_BIT: u64 = 1 << 63;
    const FWD_ADDR_MASK: u64 = (1 << 62) - 1;

    /// A fresh mark word with the given timestamp and age zero.
    pub fn new(timestamp: u32) -> u64 {
        timestamp as u64
    }

    /// Extracts the GC timestamp.
    pub fn timestamp(word: u64) -> u32 {
        (word & TS_MASK) as u32
    }

    /// Replaces the GC timestamp.
    #[must_use]
    pub fn with_timestamp(word: u64, ts: u32) -> u64 {
        (word & !TS_MASK) | ts as u64
    }

    /// Extracts the survival age.
    pub fn age(word: u64) -> u8 {
        ((word >> AGE_SHIFT) & AGE_MASK) as u8
    }

    /// Replaces the survival age.
    #[must_use]
    pub fn with_age(word: u64, age: u8) -> u64 {
        (word & !(AGE_MASK << AGE_SHIFT)) | ((age as u64) << AGE_SHIFT)
    }

    /// Whether the transient mark bit is set.
    pub fn is_marked(word: u64) -> bool {
        word & MARK_BIT != 0
    }

    /// Sets the transient mark bit.
    #[must_use]
    pub fn marked(word: u64) -> u64 {
        word | MARK_BIT
    }

    /// Clears the transient mark bit.
    #[must_use]
    pub fn unmarked(word: u64) -> u64 {
        word & !MARK_BIT
    }

    /// Whether the word is a forwarding pointer.
    pub fn is_forwarded(word: u64) -> bool {
        word & FWD_BIT != 0
    }

    /// Builds a forwarding pointer to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not fit in 62 bits.
    pub fn forwarding(addr: u64) -> u64 {
        assert_eq!(
            addr & !FWD_ADDR_MASK,
            0,
            "forwarding address {addr:#x} too large"
        );
        FWD_BIT | addr
    }

    /// Extracts the forwarding destination address.
    pub fn forwarded_addr(word: u64) -> u64 {
        word & FWD_ADDR_MASK
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn timestamp_roundtrip() {
            let w = new(7);
            assert_eq!(timestamp(w), 7);
            let w = with_timestamp(w, u32::MAX);
            assert_eq!(timestamp(w), u32::MAX);
            assert_eq!(age(w), 0);
        }

        #[test]
        fn age_roundtrip_preserves_timestamp() {
            let w = with_age(new(123), 5);
            assert_eq!(age(w), 5);
            assert_eq!(timestamp(w), 123);
            let w = with_age(w, 255);
            assert_eq!(age(w), 255);
            assert_eq!(timestamp(w), 123);
        }

        #[test]
        fn mark_bit_toggles() {
            let w = new(1);
            assert!(!is_marked(w));
            let m = marked(w);
            assert!(is_marked(m));
            assert_eq!(timestamp(m), 1);
            assert_eq!(unmarked(m), w);
        }

        #[test]
        fn forwarding_roundtrip() {
            let f = forwarding(0xabcd);
            assert!(is_forwarded(f));
            assert_eq!(forwarded_addr(f), 0xabcd);
            assert!(!is_forwarded(new(9)));
        }

        #[test]
        #[should_panic(expected = "too large")]
        fn forwarding_rejects_huge_addr() {
            let _ = forwarding(1 << 62);
        }
    }
}
