//! Class metadata (`Klass` in HotSpot terms, §3.1).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{ARRAY_HEADER_WORDS, HEADER_WORDS};

/// Identifier of a registered class, stable within one registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KlassId(pub u32);

impl fmt::Display for KlassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "klass#{}", self.0)
    }
}

/// Whether a field holds a primitive word or an object reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// A 64-bit primitive payload (long, double bits, packed chars, ...).
    Prim,
    /// A tagged [`Ref`](crate::Ref); the GC traces it.
    Reference,
}

/// One declared field of an instance class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldDesc {
    /// Field name, unique within its class.
    pub name: String,
    /// Primitive or reference.
    pub kind: FieldKind,
}

impl FieldDesc {
    /// A primitive field.
    pub fn prim(name: &str) -> FieldDesc {
        FieldDesc {
            name: name.to_string(),
            kind: FieldKind::Prim,
        }
    }

    /// A reference field.
    pub fn reference(name: &str) -> FieldDesc {
        FieldDesc {
            name: name.to_string(),
            kind: FieldKind::Reference,
        }
    }
}

/// The shape a class describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A plain instance with a fixed field list.
    Instance,
    /// An array of references (`panewarray` objects, §3.2).
    ObjArray,
    /// An array of 64-bit primitives (`pnewarray` objects, §3.2).
    PrimArray,
}

/// Class metadata: name, shape, and field layout.
///
/// Both heaps interpret objects through a `Klass`; the persistent heap
/// additionally serializes klass records into its NVM Klass segment so
/// objects stay interpretable across restarts (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Klass {
    id: KlassId,
    name: String,
    kind: ObjKind,
    fields: Vec<FieldDesc>,
}

impl Klass {
    /// Builds an instance klass. Prefer [`KlassRegistry::register_instance`].
    pub fn instance(id: KlassId, name: &str, fields: Vec<FieldDesc>) -> Klass {
        Klass {
            id,
            name: name.to_string(),
            kind: ObjKind::Instance,
            fields,
        }
    }

    /// Builds an array klass. Prefer the registry's array helpers.
    pub fn array(id: KlassId, name: &str, kind: ObjKind) -> Klass {
        assert!(
            kind != ObjKind::Instance,
            "use Klass::instance for instances"
        );
        Klass {
            id,
            name: name.to_string(),
            kind,
            fields: Vec::new(),
        }
    }

    /// The registry-assigned id.
    pub fn id(&self) -> KlassId {
        self.id
    }

    /// The fully qualified class name (arrays use JVM-style `[L...;`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The object shape.
    pub fn kind(&self) -> ObjKind {
        self.kind
    }

    /// Declared fields (empty for arrays).
    pub fn fields(&self) -> &[FieldDesc] {
        &self.fields
    }

    /// Whether this klass describes an array.
    pub fn is_array(&self) -> bool {
        self.kind != ObjKind::Instance
    }

    /// Footprint of an instance in words (header + one word per field).
    ///
    /// # Panics
    ///
    /// Panics if called on an array klass.
    pub fn instance_words(&self) -> usize {
        assert_eq!(
            self.kind,
            ObjKind::Instance,
            "{} is an array klass",
            self.name
        );
        HEADER_WORDS + self.fields.len()
    }

    /// Footprint of an array of `len` elements in words.
    ///
    /// # Panics
    ///
    /// Panics if called on an instance klass.
    pub fn array_words(&self, len: usize) -> usize {
        assert_ne!(
            self.kind,
            ObjKind::Instance,
            "{} is not an array klass",
            self.name
        );
        ARRAY_HEADER_WORDS + len
    }

    /// Word offset of field `index` from the object start.
    pub fn field_offset(&self, index: usize) -> usize {
        assert!(
            index < self.fields.len(),
            "field index {index} out of range for {}",
            self.name
        );
        HEADER_WORDS + index
    }

    /// Looks up a field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Indices of the reference-kind fields.
    pub fn ref_field_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind == FieldKind::Reference)
            .map(|(i, _)| i)
    }

    /// Reference bitmap: bit *i* set iff field *i* is a reference.
    ///
    /// This is what the persistent Klass segment stores so that recovery
    /// and the zeroing-safety scan can trace objects without loaded code
    /// (§3.4).
    pub fn ref_bitmap(&self) -> Vec<u64> {
        let mut bm = vec![0u64; self.fields.len().div_ceil(64).max(1)];
        for i in self.ref_field_indices() {
            bm[i / 64] |= 1 << (i % 64);
        }
        bm
    }
}

/// The in-memory class table: name → [`Klass`], with id assignment.
///
/// One registry models one JVM's Meta Space. Alias Klasses (§3.2) — the
/// volatile/persistent pairing of one logical class — are handled a level
/// up, in `espresso-vm`, because aliasing is a property of *resolution*,
/// not of the metadata itself.
///
/// # Example
///
/// ```
/// use espresso_object::{FieldDesc, KlassRegistry};
/// let mut reg = KlassRegistry::new();
/// let id = reg.register_instance("Point", vec![FieldDesc::prim("x"), FieldDesc::prim("y")]);
/// assert_eq!(reg.by_id(id).unwrap().name(), "Point");
/// assert_eq!(reg.by_name("Point").unwrap().id(), id);
/// ```
#[derive(Debug, Default, Clone)]
pub struct KlassRegistry {
    klasses: Vec<Arc<Klass>>,
    by_name: HashMap<String, KlassId>,
    /// Memoized object-array ids keyed by element-class name, so repeated
    /// `[L<elem>;` registrations skip the mangled-name formatting.
    obj_array_by_elem: HashMap<String, KlassId>,
}

impl KlassRegistry {
    /// An empty registry.
    pub fn new() -> KlassRegistry {
        KlassRegistry::default()
    }

    fn insert(&mut self, name: &str, build: impl FnOnce(KlassId) -> Klass) -> KlassId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = KlassId(self.klasses.len() as u32);
        let klass = build(id);
        assert_eq!(klass.name(), name);
        self.klasses.push(Arc::new(klass));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Registers (or finds) an instance class.
    ///
    /// Re-registering an existing name returns the existing id; the field
    /// list is *not* compared (class redefinition is out of scope).
    pub fn register_instance(&mut self, name: &str, fields: Vec<FieldDesc>) -> KlassId {
        self.insert(name, |id| Klass::instance(id, name, fields))
    }

    /// Registers (or finds) the object-array class for element class `elem`.
    pub fn register_obj_array(&mut self, elem_name: &str) -> KlassId {
        if let Some(&id) = self.obj_array_by_elem.get(elem_name) {
            return id;
        }
        let name = format!("[L{elem_name};");
        let id = self.insert(&name, |id| Klass::array(id, &name, ObjKind::ObjArray));
        self.obj_array_by_elem.insert(elem_name.to_string(), id);
        id
    }

    /// Registers (or finds) the primitive (long) array class.
    pub fn register_prim_array(&mut self) -> KlassId {
        self.insert("[J", |id| Klass::array(id, "[J", ObjKind::PrimArray))
    }

    /// Replaces the field list of an instance klass in place.
    ///
    /// This models the paper's class *reinitialization in place* (§3.3):
    /// after a heap reload the Klass segment yields placeholder field
    /// metadata (layout only), and the first real class registration fills
    /// in the authoritative definition without changing the klass identity.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or not an instance klass, or if the new
    /// field list changes the object layout (count or reference bitmap).
    pub fn redefine_instance(&mut self, id: KlassId, fields: Vec<FieldDesc>) {
        let k = self.klasses.get_mut(id.0 as usize).expect("unknown klass");
        assert_eq!(
            k.kind(),
            ObjKind::Instance,
            "cannot redefine array klass {}",
            k.name()
        );
        assert_eq!(
            k.fields().len(),
            fields.len(),
            "layout change for {}: field count",
            k.name()
        );
        let replacement = Klass::instance(id, k.name(), fields);
        assert_eq!(
            k.ref_bitmap(),
            replacement.ref_bitmap(),
            "layout change for {}: ref bitmap",
            k.name()
        );
        *k = Arc::new(replacement);
    }

    /// Looks up by id.
    pub fn by_id(&self, id: KlassId) -> Option<&Arc<Klass>> {
        self.klasses.get(id.0 as usize)
    }

    /// Looks up by name.
    pub fn by_name(&self, name: &str) -> Option<&Arc<Klass>> {
        self.by_name.get(name).and_then(|&id| self.by_id(id))
    }

    /// Number of registered klasses.
    pub fn len(&self) -> usize {
        self.klasses.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.klasses.is_empty()
    }

    /// Iterates over all klasses in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Klass>> {
        self.klasses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person(reg: &mut KlassRegistry) -> KlassId {
        reg.register_instance(
            "Person",
            vec![FieldDesc::prim("id"), FieldDesc::reference("name")],
        )
    }

    #[test]
    fn instance_layout() {
        let mut reg = KlassRegistry::new();
        let id = person(&mut reg);
        let k = reg.by_id(id).unwrap();
        assert_eq!(k.instance_words(), HEADER_WORDS + 2);
        assert_eq!(k.field_offset(0), HEADER_WORDS);
        assert_eq!(k.field_offset(1), HEADER_WORDS + 1);
        assert_eq!(k.field_index("name"), Some(1));
        assert_eq!(k.field_index("nope"), None);
        assert!(!k.is_array());
    }

    #[test]
    fn ref_bitmap_marks_reference_fields() {
        let mut reg = KlassRegistry::new();
        let id = person(&mut reg);
        let k = reg.by_id(id).unwrap();
        assert_eq!(k.ref_bitmap(), vec![0b10]);
        assert_eq!(k.ref_field_indices().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn ref_bitmap_for_wide_classes() {
        let mut reg = KlassRegistry::new();
        let fields: Vec<FieldDesc> = (0..70)
            .map(|i| {
                if i % 2 == 0 {
                    FieldDesc::prim(&format!("p{i}"))
                } else {
                    FieldDesc::reference(&format!("r{i}"))
                }
            })
            .collect();
        let id = reg.register_instance("Wide", fields);
        let k = reg.by_id(id).unwrap();
        let bm = k.ref_bitmap();
        assert_eq!(bm.len(), 2);
        for i in 0..70 {
            let set = bm[i / 64] & (1 << (i % 64)) != 0;
            assert_eq!(set, i % 2 == 1, "field {i}");
        }
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut reg = KlassRegistry::new();
        let a = person(&mut reg);
        let b = person(&mut reg);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn array_klasses() {
        let mut reg = KlassRegistry::new();
        let oa = reg.register_obj_array("Person");
        let pa = reg.register_prim_array();
        let oak = reg.by_id(oa).unwrap();
        let pak = reg.by_id(pa).unwrap();
        assert_eq!(oak.name(), "[LPerson;");
        assert_eq!(pak.name(), "[J");
        assert!(oak.is_array());
        assert_eq!(oak.array_words(10), ARRAY_HEADER_WORDS + 10);
        assert_eq!(reg.register_obj_array("Person"), oa);
    }

    #[test]
    #[should_panic(expected = "is an array klass")]
    fn instance_words_rejects_arrays() {
        let mut reg = KlassRegistry::new();
        let pa = reg.register_prim_array();
        let _ = reg.by_id(pa).unwrap().instance_words();
    }

    #[test]
    #[should_panic(expected = "is not an array klass")]
    fn array_words_rejects_instances() {
        let mut reg = KlassRegistry::new();
        let id = person(&mut reg);
        let _ = reg.by_id(id).unwrap().array_words(3);
    }

    #[test]
    fn redefine_replaces_names_keeps_layout() {
        let mut reg = KlassRegistry::new();
        let id =
            reg.register_instance("P", vec![FieldDesc::prim("f0"), FieldDesc::reference("f1")]);
        reg.redefine_instance(
            id,
            vec![FieldDesc::prim("id"), FieldDesc::reference("name")],
        );
        let k = reg.by_id(id).unwrap();
        assert_eq!(k.field_index("name"), Some(1));
        assert_eq!(k.id(), id);
    }

    #[test]
    #[should_panic(expected = "ref bitmap")]
    fn redefine_rejects_layout_change() {
        let mut reg = KlassRegistry::new();
        let id = reg.register_instance("P", vec![FieldDesc::prim("a"), FieldDesc::reference("b")]);
        reg.redefine_instance(id, vec![FieldDesc::reference("a"), FieldDesc::prim("b")]);
    }

    #[test]
    fn iter_in_id_order() {
        let mut reg = KlassRegistry::new();
        person(&mut reg);
        reg.register_prim_array();
        let names: Vec<_> = reg.iter().map(|k| k.name().to_string()).collect();
        assert_eq!(names, vec!["Person", "[J"]);
    }
}
