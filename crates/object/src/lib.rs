//! Object model shared by the volatile heap and the Persistent Java Heap.
//!
//! Mirrors the HotSpot layout the paper builds on (§3.1): every object
//! carries a two-word header — a *mark word* (GC age, mark bit, and the
//! GC timestamp Espresso repurposes for its crash-consistent collector,
//! §4.2) and a *class word* pointing at the object's [`Klass`] metadata.
//! Arrays add a length word. Data fields follow, one 64-bit word each.
//!
//! References ([`Ref`]) are tagged with the space they point into
//! ([`Space::Volatile`] vs [`Space::Persistent`]), because Espresso
//! deliberately decouples the persistence of an object from the persistence
//! of its fields (§3.4): an NVM object may hold a DRAM pointer.
//!
//! # Example
//!
//! ```
//! use espresso_object::{FieldDesc, FieldKind, KlassRegistry, Ref, Space};
//!
//! let mut reg = KlassRegistry::new();
//! let person = reg.register_instance(
//!     "Person",
//!     vec![FieldDesc::prim("id"), FieldDesc::reference("name")],
//! );
//! let k = reg.by_id(person).unwrap();
//! assert_eq!(k.instance_words(), 4); // 2 header words + 2 fields
//! let r = Ref::new(Space::Persistent, 4096);
//! assert_eq!(r.space(), Space::Persistent);
//! assert_eq!(r.addr(), 4096);
//! ```

mod header;
mod klass;
mod refs;
mod schema;

pub use header::{
    mark, ARRAY_HEADER_WORDS, ARRAY_LENGTH_WORD, HEADER_WORDS, KLASS_WORD, MARK_WORD,
};
pub use klass::{FieldDesc, FieldKind, Klass, KlassId, KlassRegistry, ObjKind};
pub use refs::{Ref, Space};
pub use schema::{
    ArrFld, FieldType, Fld, PArr, PClass, PClassBuilder, PObject, PRef, PValue, RefFld, Schema,
    SchemaError, SchemaField, StrFld,
};

/// Size of one heap word in bytes. Every field occupies one word.
pub const WORD: usize = 8;

/// Minimum object footprint in words (a field-less instance).
pub const MIN_OBJECT_WORDS: usize = HEADER_WORDS;
