//! Tagged heap references.

use std::fmt;

/// Which heap a reference points into.
///
/// Espresso allows the same logical class to have instances in both spaces
/// (§3.2), and allows persistent objects to reference volatile ones (§3.4),
/// so every reference carries its space in its top bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// The ordinary DRAM-backed heap (young + old generations).
    Volatile,
    /// The NVM-backed Persistent Java Heap.
    Persistent,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Volatile => write!(f, "volatile"),
            Space::Persistent => write!(f, "persistent"),
        }
    }
}

const PERSISTENT_TAG: u64 = 1 << 63;
const ADDR_MASK: u64 = PERSISTENT_TAG - 1;

/// A tagged object reference: a byte address within one of the two spaces.
///
/// The all-zero value is the null reference. Address 0 in the volatile
/// space is therefore unaddressable; both heaps reserve it.
///
/// # Example
///
/// ```
/// use espresso_object::{Ref, Space};
/// assert!(Ref::NULL.is_null());
/// let r = Ref::new(Space::Volatile, 128);
/// assert!(!r.is_null());
/// assert_eq!(r.addr(), 128);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ref(u64);

impl Ref {
    /// The null reference.
    pub const NULL: Ref = Ref(0);

    /// Creates a reference to `addr` in `space`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has its top bit set (addresses are 63-bit).
    pub fn new(space: Space, addr: u64) -> Ref {
        assert_eq!(
            addr & PERSISTENT_TAG,
            0,
            "address {addr:#x} overflows the 63-bit space"
        );
        match space {
            Space::Volatile => Ref(addr),
            Space::Persistent => Ref(addr | PERSISTENT_TAG),
        }
    }

    /// Whether this is the null reference.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The space this non-null reference points into.
    ///
    /// Null is reported as [`Space::Volatile`]; callers should test
    /// [`is_null`](Self::is_null) first.
    pub fn space(self) -> Space {
        if self.0 & PERSISTENT_TAG != 0 {
            Space::Persistent
        } else {
            Space::Volatile
        }
    }

    /// Whether the reference is non-null and persistent.
    pub fn is_persistent(self) -> bool {
        !self.is_null() && self.space() == Space::Persistent
    }

    /// Whether the reference is non-null and volatile.
    pub fn is_volatile(self) -> bool {
        !self.is_null() && self.space() == Space::Volatile
    }

    /// The byte address within the space.
    pub fn addr(self) -> u64 {
        self.0 & ADDR_MASK
    }

    /// The raw tagged word as stored in heap fields.
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a reference from a raw field word.
    pub fn from_raw(raw: u64) -> Ref {
        Ref(raw)
    }

    /// Returns a reference with the same space but a different address.
    #[must_use]
    pub fn with_addr(self, addr: u64) -> Ref {
        Ref::new(self.space(), addr)
    }
}

impl fmt::Debug for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Ref(null)")
        } else {
            write!(f, "Ref({}:{:#x})", self.space(), self.addr())
        }
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(Ref::NULL.is_null());
        assert!(!Ref::NULL.is_persistent());
        assert!(!Ref::NULL.is_volatile());
        assert_eq!(Ref::default(), Ref::NULL);
    }

    #[test]
    fn roundtrips_space_and_addr() {
        for space in [Space::Volatile, Space::Persistent] {
            for addr in [8u64, 0x10, 0xdead_beef, (1 << 62)] {
                let r = Ref::new(space, addr);
                assert_eq!(r.space(), space);
                assert_eq!(r.addr(), addr);
                assert_eq!(Ref::from_raw(r.to_raw()), r);
            }
        }
    }

    #[test]
    fn persistent_tag_is_top_bit() {
        let r = Ref::new(Space::Persistent, 16);
        assert_eq!(r.to_raw(), 16 | (1 << 63));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn rejects_tagged_addresses() {
        let _ = Ref::new(Space::Volatile, 1 << 63);
    }

    #[test]
    fn with_addr_keeps_space() {
        let r = Ref::new(Space::Persistent, 8).with_addr(64);
        assert_eq!(r.space(), Space::Persistent);
        assert_eq!(r.addr(), 64);
    }

    #[test]
    fn debug_shows_space() {
        let r = Ref::new(Space::Persistent, 0x40);
        assert_eq!(format!("{r:?}"), "Ref(persistent:0x40)");
        assert_eq!(format!("{:?}", Ref::NULL), "Ref(null)");
    }

    #[test]
    fn ordering_is_total() {
        let a = Ref::new(Space::Volatile, 8);
        let b = Ref::new(Space::Volatile, 16);
        assert!(a < b);
    }
}
