//! Declared schemas and typed object handles — the metadata half of the
//! typed persistence layer.
//!
//! The raw heap API is word-granular: callers juggle klass ids, untyped
//! [`Ref`]s, and positional `field(r, index)` accessors. This module is
//! the declarative layer above it, the same move JPA-style ORMs and PCJ's
//! typed collections make over raw NVM:
//!
//! * [`Schema`] / [`PClassBuilder`] declare named, typed fields
//!   (`u64` / `i64` / `bool` / `f64` / `ref<T>` / strings / arrays).
//! * [`PObject`] binds a Rust marker type to a schema, giving the typed
//!   APIs a compile-time anchor.
//! * [`PRef<T>`] is a typed handle: the same word as a [`Ref`] at runtime,
//!   but parameterized by the class it points at, so a `PRef<Employee>`
//!   cannot be stored into a field declared `ref<Department>`.
//! * [`PClass<T>`] resolves field names to offsets **once**, yielding
//!   [`Fld`] / [`RefFld`] / [`StrFld`] / [`ArrFld`] handles whose value
//!   types are checked at compile time.
//!
//! Registration and validation against a live heap (including the
//! schema-evolution check that rejects incompatible persisted layouts)
//! live in `espresso-core`; this module is pure metadata and has no
//! device dependency.
//!
//! # Example
//!
//! ```
//! use espresso_object::{PObject, PRef, Schema};
//!
//! struct Person;
//! impl PObject for Person {
//!     const CLASS_NAME: &'static str = "Person";
//!     fn schema() -> Schema {
//!         Schema::builder("Person")
//!             .u64_field("id")
//!             .f64_field("score")
//!             .bool_field("active")
//!             .str_field("name")
//!             .ref_field::<Person>("friend")
//!             .build()
//!     }
//! }
//!
//! let schema = Person::schema();
//! assert_eq!(schema.len(), 5);
//! assert!(schema.field("friend").is_some());
//! assert!(PRef::<Person>::null().is_null());
//! ```

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::Arc;

use crate::{FieldDesc, FieldKind, KlassId, Ref};

/// The declared type of one schema field.
///
/// Every field still occupies one 64-bit heap word — the type governs how
/// that word is interpreted, which accessors the typed layer offers for
/// it, and whether the GC traces it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// An unsigned 64-bit integer.
    U64,
    /// A signed 64-bit integer (stored as its two's-complement bits).
    I64,
    /// A boolean (stored as 0 / 1).
    Bool,
    /// A double-precision float (stored as its IEEE-754 bits).
    F64,
    /// A reference to an instance of the named class (`ref<T>`).
    Ref {
        /// Class name of the referent.
        target: String,
    },
    /// A reference to a length-prefixed byte string stored in a primitive
    /// array (see `Pjh::alloc_string` in `espresso-core`).
    Str,
    /// A reference to a primitive (`u64`) array.
    Array,
    /// A reference to an object array whose elements are instances of the
    /// named class.
    RefArray {
        /// Element class name.
        target: String,
    },
}

impl FieldType {
    /// Whether the GC must trace this field.
    pub fn kind(&self) -> FieldKind {
        match self {
            FieldType::U64 | FieldType::I64 | FieldType::Bool | FieldType::F64 => FieldKind::Prim,
            _ => FieldKind::Reference,
        }
    }

    /// Stable tag mixed into the schema fingerprint. Changing a field's
    /// declared type — even between two primitive interpretations of the
    /// same word, like `u64` → `f64` — changes the fingerprint.
    fn fingerprint_tag(&self) -> u64 {
        match self {
            FieldType::U64 => 1,
            FieldType::I64 => 2,
            FieldType::Bool => 3,
            FieldType::F64 => 4,
            FieldType::Ref { .. } => 5,
            FieldType::Str => 6,
            FieldType::Array => 7,
            FieldType::RefArray { .. } => 8,
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::U64 => write!(f, "u64"),
            FieldType::I64 => write!(f, "i64"),
            FieldType::Bool => write!(f, "bool"),
            FieldType::F64 => write!(f, "f64"),
            FieldType::Ref { target } => write!(f, "ref<{target}>"),
            FieldType::Str => write!(f, "str"),
            FieldType::Array => write!(f, "array<u64>"),
            FieldType::RefArray { target } => write!(f, "array<ref<{target}>>"),
        }
    }
}

/// One declared field: a name and a [`FieldType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaField {
    /// Field name, unique within its schema.
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
}

/// A declared class layout: an ordered list of named, typed fields.
///
/// Built with [`Schema::builder`]; registered and validated against a
/// heap's persisted Klass table by `Pjh::register_schema` in
/// `espresso-core`. Two schemas are layout-compatible iff their
/// [`fingerprint`](Self::fingerprint)s match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    fields: Vec<SchemaField>,
}

impl Schema {
    /// Starts declaring a schema for class `name`.
    pub fn builder(name: &str) -> PClassBuilder {
        PClassBuilder {
            name: name.to_string(),
            fields: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared fields, in layout order.
    pub fn fields(&self) -> &[SchemaField] {
        &self.fields
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema declares no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolves a field name to `(index, type)`.
    pub fn field(&self, name: &str) -> Option<(usize, &FieldType)> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| (i, &self.fields[i].ty))
    }

    /// The untyped field list the raw Klass layer stores.
    pub fn field_descs(&self) -> Vec<FieldDesc> {
        self.fields
            .iter()
            .map(|f| FieldDesc {
                name: f.name.clone(),
                kind: f.ty.kind(),
            })
            .collect()
    }

    /// A stable 64-bit digest of the full declared layout: class name,
    /// field order, field names, and field types (including `ref` targets).
    ///
    /// The heap persists this fingerprint alongside the Klass record;
    /// re-registering a class whose fingerprint disagrees is the
    /// schema-evolution error the typed layer turns into a real
    /// `SchemaMismatch` instead of silent reinterpretation.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.name.as_bytes());
        for f in &self.fields {
            h.write(f.name.as_bytes());
            h.write(&f.ty.fingerprint_tag().to_le_bytes());
            match &f.ty {
                FieldType::Ref { target } | FieldType::RefArray { target } => {
                    h.write(target.as_bytes());
                }
                _ => {}
            }
        }
        // Fingerprints are persisted in name-table value slots where 0
        // means "absent"; keep the digest non-zero.
        h.finish().max(1)
    }
}

/// FNV-1a, the same cheap stable hash the shard router uses.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separator so ("ab","c") and ("a","bc") digest differently.
        self.0 ^= 0xFF;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Builder for a [`Schema`]: declare fields in layout order, then
/// [`build`](Self::build).
///
/// # Panics
///
/// Field-declaring methods panic on duplicate field names — a schema is a
/// static declaration, so a duplicate is a programming error, not a
/// runtime condition.
#[derive(Debug)]
pub struct PClassBuilder {
    name: String,
    fields: Vec<SchemaField>,
    seen: HashSet<String>,
}

impl PClassBuilder {
    fn push(mut self, name: &str, ty: FieldType) -> PClassBuilder {
        assert!(
            self.seen.insert(name.to_string()),
            "duplicate field {name:?} in schema {}",
            self.name
        );
        self.fields.push(SchemaField {
            name: name.to_string(),
            ty,
        });
        self
    }

    /// Declares a `u64` field.
    pub fn u64_field(self, name: &str) -> PClassBuilder {
        self.push(name, FieldType::U64)
    }

    /// Declares an `i64` field.
    pub fn i64_field(self, name: &str) -> PClassBuilder {
        self.push(name, FieldType::I64)
    }

    /// Declares a `bool` field.
    pub fn bool_field(self, name: &str) -> PClassBuilder {
        self.push(name, FieldType::Bool)
    }

    /// Declares an `f64` field.
    pub fn f64_field(self, name: &str) -> PClassBuilder {
        self.push(name, FieldType::F64)
    }

    /// Declares a reference field targeting the class of `T` (`ref<T>`).
    pub fn ref_field<T: PObject>(self, name: &str) -> PClassBuilder {
        self.ref_named(name, T::CLASS_NAME)
    }

    /// Declares a reference field targeting a class known only by name
    /// (for dynamic schemas, e.g. ones derived from entity metadata).
    pub fn ref_named(self, name: &str, target: &str) -> PClassBuilder {
        self.push(
            name,
            FieldType::Ref {
                target: target.to_string(),
            },
        )
    }

    /// Declares a string field (a traced reference to a length-prefixed
    /// byte array).
    pub fn str_field(self, name: &str) -> PClassBuilder {
        self.push(name, FieldType::Str)
    }

    /// Declares a primitive-array field (a traced reference to a `u64`
    /// array).
    pub fn array_field(self, name: &str) -> PClassBuilder {
        self.push(name, FieldType::Array)
    }

    /// Declares an object-array field whose elements are instances of `T`.
    pub fn ref_array_field<T: PObject>(self, name: &str) -> PClassBuilder {
        self.ref_array_named(name, T::CLASS_NAME)
    }

    /// Declares an object-array field with a by-name element class.
    pub fn ref_array_named(self, name: &str, target: &str) -> PClassBuilder {
        self.push(
            name,
            FieldType::RefArray {
                target: target.to_string(),
            },
        )
    }

    /// Finishes the declaration.
    pub fn build(self) -> Schema {
        Schema {
            name: self.name,
            fields: self.fields,
        }
    }
}

/// A Rust marker type bound to a persistent class declaration.
///
/// Implementing `PObject` for a zero-sized marker gives the typed heap
/// APIs (`register::<T>()`, `alloc::<T>()`, `root::<T>(name)`,
/// [`PRef<T>`]) their compile-time anchor. [`Self::schema`] must be pure:
/// it is re-evaluated on every registration and its
/// [`fingerprint`](Schema::fingerprint) is what the heap validates
/// against the persisted layout.
pub trait PObject {
    /// The persistent class name (must equal `schema().name()`).
    const CLASS_NAME: &'static str;

    /// The declared layout.
    fn schema() -> Schema;
}

/// Typed-layer errors: unknown fields, type mismatches, wrong referents.
///
/// `espresso-core` wraps this into its `PjhError::SchemaMismatch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// The class whose schema was violated.
    pub class: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema violation on {}: {}", self.class, self.detail)
    }
}

impl std::error::Error for SchemaError {}

/// A typed reference to an instance of `T` in the persistent heap.
///
/// The runtime representation is exactly a [`Ref`]; the type parameter
/// exists only at compile time, so `PRef` is free to copy and store.
/// Typed handles are produced by the typed allocation and root APIs in
/// `espresso-core`, which guarantee the referent's class; re-wrapping an
/// arbitrary raw reference is possible through
/// [`from_raw_unchecked`](Self::from_raw_unchecked) as the documented
/// low-level escape hatch.
pub struct PRef<T> {
    raw: Ref,
    _t: PhantomData<fn() -> T>,
}

// Manual impls: derives would bound them on `T`, but the phantom carries
// no `T` value.
impl<T> Clone for PRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PRef<T> {}
impl<T> PartialEq for PRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for PRef<T> {}
impl<T> Hash for PRef<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T: PObject> fmt::Debug for PRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PRef<{}>({:?})", T::CLASS_NAME, self.raw)
    }
}

impl<T> PRef<T> {
    /// The null typed reference.
    pub fn null() -> PRef<T> {
        PRef {
            raw: Ref::NULL,
            _t: PhantomData,
        }
    }

    /// Whether this is the null reference.
    pub fn is_null(self) -> bool {
        self.raw.is_null()
    }

    /// The untyped reference (the raw escape hatch, e.g. for `set_root`
    /// or the positional accessors).
    pub fn raw(self) -> Ref {
        self.raw
    }

    /// Wraps a raw reference **without checking** that it points at an
    /// instance of `T`. This is the low-level escape hatch for code that
    /// has established the class some other way; prefer the typed roots
    /// and typed allocation, or `Pjh::cast`, which verify it.
    pub fn from_raw_unchecked(raw: Ref) -> PRef<T> {
        PRef {
            raw,
            _t: PhantomData,
        }
    }
}

/// A typed handle to a `u64` array in the persistent heap (the referent
/// of a [`FieldType::Array`] field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PArr {
    raw: Ref,
}

impl PArr {
    /// The untyped reference.
    pub fn raw(self) -> Ref {
        self.raw
    }

    /// Whether this is the null array.
    pub fn is_null(self) -> bool {
        self.raw.is_null()
    }

    /// Wraps a raw reference without checking that it is a primitive
    /// array (escape hatch; the typed allocation APIs verify it).
    pub fn from_raw_unchecked(raw: Ref) -> PArr {
        PArr { raw }
    }
}

/// A primitive-valued field of `T`, resolved once from a name to an
/// offset. The value type `V` was checked against the declaration when
/// the handle was created, so accessors taking a `Fld<T, V>` are
/// type-safe at compile time.
pub struct Fld<T, V> {
    index: usize,
    _m: PhantomData<fn(T) -> V>,
}

impl<T, V> Clone for Fld<T, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, V> Copy for Fld<T, V> {}
impl<T, V> fmt::Debug for Fld<T, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fld(#{})", self.index)
    }
}

impl<T, V> Fld<T, V> {
    /// The resolved field index.
    pub fn index(self) -> usize {
        self.index
    }
}

/// A reference-valued field of `T` targeting instances of `U`.
pub struct RefFld<T, U> {
    index: usize,
    _m: PhantomData<fn(T) -> U>,
}

impl<T, U> Clone for RefFld<T, U> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, U> Copy for RefFld<T, U> {}
impl<T, U> fmt::Debug for RefFld<T, U> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RefFld(#{})", self.index)
    }
}

impl<T, U> RefFld<T, U> {
    /// The resolved field index.
    pub fn index(self) -> usize {
        self.index
    }
}

/// A string-valued field of `T`.
pub struct StrFld<T> {
    index: usize,
    _m: PhantomData<fn(T)>,
}

impl<T> Clone for StrFld<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for StrFld<T> {}
impl<T> fmt::Debug for StrFld<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StrFld(#{})", self.index)
    }
}

impl<T> StrFld<T> {
    /// The resolved field index.
    pub fn index(self) -> usize {
        self.index
    }
}

/// A primitive-array-valued field of `T`.
pub struct ArrFld<T> {
    index: usize,
    _m: PhantomData<fn(T)>,
}

impl<T> Clone for ArrFld<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArrFld<T> {}
impl<T> fmt::Debug for ArrFld<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArrFld(#{})", self.index)
    }
}

impl<T> ArrFld<T> {
    /// The resolved field index.
    pub fn index(self) -> usize {
        self.index
    }
}

/// A primitive value that fits one heap word under a declared
/// [`FieldType`]: `u64`, `i64`, `bool`, or `f64`.
pub trait PValue: Copy + private::Sealed {
    /// Whether `ty` declares this value type.
    fn matches(ty: &FieldType) -> bool;

    /// Human-readable type name for error messages.
    fn type_name() -> &'static str;

    /// Encodes the value into its heap word.
    fn to_word(self) -> u64;

    /// Decodes a heap word.
    fn from_word(w: u64) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for i64 {}
    impl Sealed for bool {}
    impl Sealed for f64 {}
}

impl PValue for u64 {
    fn matches(ty: &FieldType) -> bool {
        *ty == FieldType::U64
    }
    fn type_name() -> &'static str {
        "u64"
    }
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(w: u64) -> Self {
        w
    }
}

impl PValue for i64 {
    fn matches(ty: &FieldType) -> bool {
        *ty == FieldType::I64
    }
    fn type_name() -> &'static str {
        "i64"
    }
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

impl PValue for bool {
    fn matches(ty: &FieldType) -> bool {
        *ty == FieldType::Bool
    }
    fn type_name() -> &'static str {
        "bool"
    }
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

impl PValue for f64 {
    fn matches(ty: &FieldType) -> bool {
        *ty == FieldType::F64
    }
    fn type_name() -> &'static str {
        "f64"
    }
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
}

/// A registered, validated class of `T` on some heap: the klass id plus
/// the schema, with field-name resolution done **once** per handle.
///
/// Produced by `Pjh::register::<T>()` (or `HeapHandle::register::<T>()`)
/// in `espresso-core` after the schema passed the persisted-layout and
/// fingerprint checks; cheap to clone (the schema is shared).
pub struct PClass<T: PObject> {
    id: KlassId,
    schema: Arc<Schema>,
    _t: PhantomData<fn() -> T>,
}

impl<T: PObject> fmt::Debug for PClass<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PClass")
            .field("class", &T::CLASS_NAME)
            .field("id", &self.id)
            .finish()
    }
}

impl<T: PObject> Clone for PClass<T> {
    fn clone(&self) -> Self {
        PClass {
            id: self.id,
            schema: self.schema.clone(),
            _t: PhantomData,
        }
    }
}

impl<T: PObject> PClass<T> {
    /// Binds a validated klass id to `T`'s schema. Called by the heap's
    /// registration path; the id must come from registering this very
    /// schema.
    ///
    /// # Panics
    ///
    /// Panics if `schema`'s class name is not `T::CLASS_NAME`.
    pub fn new(id: KlassId, schema: Schema) -> PClass<T> {
        assert_eq!(
            schema.name(),
            T::CLASS_NAME,
            "schema {} bound to marker type {}",
            schema.name(),
            T::CLASS_NAME
        );
        PClass {
            id,
            schema: Arc::new(schema),
            _t: PhantomData,
        }
    }

    /// The heap-assigned klass id.
    pub fn id(&self) -> KlassId {
        self.id
    }

    /// The declared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn resolve(&self, name: &str) -> Result<(usize, &FieldType), SchemaError> {
        self.schema.field(name).ok_or_else(|| SchemaError {
            class: T::CLASS_NAME.to_string(),
            detail: format!("no field named {name:?}"),
        })
    }

    /// Resolves a primitive field, checking the requested value type `V`
    /// against the declaration.
    ///
    /// # Errors
    ///
    /// Unknown field name, or a declared type other than `V`.
    pub fn field<V: PValue>(&self, name: &str) -> Result<Fld<T, V>, SchemaError> {
        let (index, ty) = self.resolve(name)?;
        if !V::matches(ty) {
            return Err(SchemaError {
                class: T::CLASS_NAME.to_string(),
                detail: format!(
                    "field {name:?} is declared {ty}, accessed as {}",
                    V::type_name()
                ),
            });
        }
        Ok(Fld {
            index,
            _m: PhantomData,
        })
    }

    /// Resolves a reference field, checking that its declared target is
    /// `U`'s class.
    ///
    /// # Errors
    ///
    /// Unknown field name, a non-`ref` declaration, or a different target
    /// class.
    pub fn ref_field<U: PObject>(&self, name: &str) -> Result<RefFld<T, U>, SchemaError> {
        let (index, ty) = self.resolve(name)?;
        match ty {
            FieldType::Ref { target } if target == U::CLASS_NAME => Ok(RefFld {
                index,
                _m: PhantomData,
            }),
            other => Err(SchemaError {
                class: T::CLASS_NAME.to_string(),
                detail: format!(
                    "field {name:?} is declared {other}, accessed as ref<{}>",
                    U::CLASS_NAME
                ),
            }),
        }
    }

    /// Resolves a string field.
    ///
    /// # Errors
    ///
    /// Unknown field name or a non-`str` declaration.
    pub fn str_field(&self, name: &str) -> Result<StrFld<T>, SchemaError> {
        let (index, ty) = self.resolve(name)?;
        if *ty != FieldType::Str {
            return Err(SchemaError {
                class: T::CLASS_NAME.to_string(),
                detail: format!("field {name:?} is declared {ty}, accessed as str"),
            });
        }
        Ok(StrFld {
            index,
            _m: PhantomData,
        })
    }

    /// Resolves a primitive-array field.
    ///
    /// # Errors
    ///
    /// Unknown field name or a non-`array<u64>` declaration.
    pub fn arr_field(&self, name: &str) -> Result<ArrFld<T>, SchemaError> {
        let (index, ty) = self.resolve(name)?;
        if *ty != FieldType::Array {
            return Err(SchemaError {
                class: T::CLASS_NAME.to_string(),
                detail: format!("field {name:?} is declared {ty}, accessed as array<u64>"),
            });
        }
        Ok(ArrFld {
            index,
            _m: PhantomData,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Person;
    impl PObject for Person {
        const CLASS_NAME: &'static str = "Person";
        fn schema() -> Schema {
            Schema::builder("Person")
                .u64_field("id")
                .i64_field("balance")
                .bool_field("active")
                .f64_field("score")
                .ref_field::<Person>("friend")
                .str_field("name")
                .array_field("history")
                .build()
        }
    }

    struct Dept;
    impl PObject for Dept {
        const CLASS_NAME: &'static str = "Dept";
        fn schema() -> Schema {
            Schema::builder("Dept").u64_field("id").build()
        }
    }

    #[test]
    fn builder_declares_in_order() {
        let s = Person::schema();
        assert_eq!(s.name(), "Person");
        assert_eq!(s.len(), 7);
        assert_eq!(s.field("id"), Some((0, &FieldType::U64)));
        assert_eq!(s.field("name"), Some((5, &FieldType::Str)));
        assert_eq!(s.field("nope"), None);
        let descs = s.field_descs();
        assert_eq!(descs[0].kind, FieldKind::Prim);
        assert_eq!(descs[4].kind, FieldKind::Reference);
        assert_eq!(descs[5].kind, FieldKind::Reference);
        assert_eq!(descs[6].kind, FieldKind::Reference);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_field_panics() {
        let _ = Schema::builder("X").u64_field("a").f64_field("a");
    }

    #[test]
    fn fingerprint_tracks_every_declared_aspect() {
        let base = Schema::builder("P").u64_field("a").build().fingerprint();
        // Same layout, same fingerprint.
        assert_eq!(
            base,
            Schema::builder("P").u64_field("a").build().fingerprint()
        );
        // Renamed field.
        assert_ne!(
            base,
            Schema::builder("P").u64_field("b").build().fingerprint()
        );
        // Same word, different interpretation.
        assert_ne!(
            base,
            Schema::builder("P").f64_field("a").build().fingerprint()
        );
        assert_ne!(
            base,
            Schema::builder("P").i64_field("a").build().fingerprint()
        );
        // Different class name.
        assert_ne!(
            base,
            Schema::builder("Q").u64_field("a").build().fingerprint()
        );
        // Ref target changes the digest.
        let r1 = Schema::builder("P")
            .ref_named("x", "A")
            .build()
            .fingerprint();
        let r2 = Schema::builder("P")
            .ref_named("x", "B")
            .build()
            .fingerprint();
        assert_ne!(r1, r2);
        // Field-boundary ambiguity resolved by the separator.
        let s1 = Schema::builder("P")
            .u64_field("ab")
            .u64_field("c")
            .build()
            .fingerprint();
        let s2 = Schema::builder("P")
            .u64_field("a")
            .u64_field("bc")
            .build()
            .fingerprint();
        assert_ne!(s1, s2);
        assert_ne!(base, 0, "fingerprints are non-zero");
    }

    #[test]
    fn pclass_resolves_typed_fields_once() {
        let c: PClass<Person> = PClass::new(KlassId(3), Person::schema());
        assert_eq!(c.id(), KlassId(3));
        let id = c.field::<u64>("id").unwrap();
        assert_eq!(id.index(), 0);
        let score = c.field::<f64>("score").unwrap();
        assert_eq!(score.index(), 3);
        let friend = c.ref_field::<Person>("friend").unwrap();
        assert_eq!(friend.index(), 4);
        assert_eq!(c.str_field("name").unwrap().index(), 5);
        assert_eq!(c.arr_field("history").unwrap().index(), 6);
    }

    #[test]
    fn pclass_rejects_wrong_types_at_resolution() {
        let c: PClass<Person> = PClass::new(KlassId(0), Person::schema());
        let e = c.field::<f64>("id").unwrap_err();
        assert!(e.detail.contains("declared u64"), "{e}");
        assert!(c.field::<u64>("ghost").is_err());
        let e = c.ref_field::<Dept>("friend").unwrap_err();
        assert!(e.detail.contains("ref<Dept>"), "{e}");
        assert!(c.str_field("id").is_err());
        assert!(c.arr_field("name").is_err());
        // bool/i64 mismatches too.
        assert!(c.field::<bool>("balance").is_err());
        assert!(c.field::<i64>("active").is_err());
    }

    #[test]
    fn pvalue_roundtrips() {
        assert_eq!(u64::from_word(7u64.to_word()), 7);
        assert_eq!(i64::from_word((-9i64).to_word()), -9);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
        let f = -1234.5678f64;
        assert_eq!(f64::from_word(f.to_word()), f);
    }

    #[test]
    fn pref_is_a_transparent_typed_word() {
        let n: PRef<Person> = PRef::null();
        assert!(n.is_null());
        let raw = Ref::new(crate::Space::Persistent, 4096);
        let p: PRef<Person> = PRef::from_raw_unchecked(raw);
        assert_eq!(p.raw(), raw);
        assert_ne!(p, PRef::null());
        let q = p; // Copy without T: Copy
        assert_eq!(q, p);
        assert_eq!(format!("{p:?}"), format!("PRef<Person>({raw:?})"));
    }
}
