//! The PCJ collection types used by the Figure 15 microbenchmarks.
//!
//! Everything is built from boxed `PersistentObject`s: tuples, arrays,
//! lists and maps hold *references to boxes*, never raw words — the
//! separated-type-system design §2.2 criticizes. A `set` therefore costs
//! a box allocation plus two refcount updates on top of the store write.

use crate::store::{PcjRef, PcjStore};

/// `PersistentLong`: a boxed 64-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcjLong {
    obj: PcjRef,
}

impl PcjLong {
    /// Boxes a value off-heap.
    ///
    /// # Errors
    ///
    /// Store-space errors.
    pub fn create(store: &mut PcjStore, value: u64) -> crate::Result<PcjLong> {
        let obj = store.create("PersistentLong", 1, false)?;
        store.set_word(obj, 0, value)?;
        Ok(PcjLong { obj })
    }

    /// Re-wraps a raw handle.
    pub fn from_ref(obj: PcjRef) -> PcjLong {
        PcjLong { obj }
    }

    /// The raw handle.
    pub fn as_ref(&self) -> PcjRef {
        self.obj
    }

    /// Reads the boxed value.
    pub fn value(&self, store: &mut PcjStore) -> u64 {
        store.get_word(self.obj, 0)
    }

    /// Replaces the boxed value.
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn set(&self, store: &mut PcjStore, value: u64) -> crate::Result<()> {
        store.set_word(self.obj, 0, value)
    }
}

/// `PersistentString`: length-prefixed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcjString {
    obj: PcjRef,
}

impl PcjString {
    /// Stores a string off-heap.
    ///
    /// # Errors
    ///
    /// Store-space errors.
    pub fn create(store: &mut PcjStore, s: &str) -> crate::Result<PcjString> {
        let words = 1 + s.len().div_ceil(8);
        let obj = store.create("PersistentString", words, false)?;
        store.set_word(obj, 0, s.len() as u64)?;
        for (i, chunk) in s.as_bytes().chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            store.set_word(obj, 1 + i, u64::from_le_bytes(w))?;
        }
        Ok(PcjString { obj })
    }

    /// Re-wraps a raw handle.
    pub fn from_ref(obj: PcjRef) -> PcjString {
        PcjString { obj }
    }

    /// The raw handle.
    pub fn as_ref(&self) -> PcjRef {
        self.obj
    }

    /// Reads the string back.
    pub fn value(&self, store: &mut PcjStore) -> String {
        let len = store.get_word(self.obj, 0) as usize;
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len.div_ceil(8) {
            let w = store.get_word(self.obj, 1 + i).to_le_bytes();
            bytes.extend_from_slice(&w);
        }
        bytes.truncate(len);
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// `PersistentTuple`: fixed arity, slots hold boxed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcjTuple {
    obj: PcjRef,
}

impl PcjTuple {
    /// Allocates a tuple of null slots.
    ///
    /// # Errors
    ///
    /// Store-space errors.
    pub fn create(store: &mut PcjStore, arity: usize) -> crate::Result<PcjTuple> {
        let obj = store.create(&format!("PersistentTuple{arity}"), arity, true)?;
        Ok(PcjTuple { obj })
    }

    /// Re-wraps a raw handle.
    pub fn from_ref(obj: PcjRef) -> PcjTuple {
        PcjTuple { obj }
    }

    /// The raw handle.
    pub fn as_ref(&self) -> PcjRef {
        self.obj
    }

    /// Number of slots.
    pub fn arity(&self, store: &PcjStore) -> usize {
        store.payload_words(self.obj)
    }

    /// Writes slot `i`: boxes the value, swaps references, maintains
    /// refcounts — PCJ's expensive path.
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn set(&self, store: &mut PcjStore, i: usize, value: u64) -> crate::Result<()> {
        let boxed = PcjLong::create(store, value)?;
        store.set_ref(self.obj, i, boxed.as_ref())?;
        // Drop the creation reference; the tuple now owns the box.
        store.dec_rc(boxed.as_ref())?;
        Ok(())
    }

    /// Reads slot `i` through its box; `None` for null slots.
    pub fn get(&self, store: &mut PcjStore, i: usize) -> Option<u64> {
        let b = store.get_ref(self.obj, i);
        (!b.is_null()).then(|| PcjLong::from_ref(b).value(store))
    }
}

/// `PersistentArray<PersistentLong>`: a generic array of boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcjArray {
    obj: PcjRef,
}

impl PcjArray {
    /// Allocates a null-filled array.
    ///
    /// # Errors
    ///
    /// Store-space errors.
    pub fn create(store: &mut PcjStore, len: usize) -> crate::Result<PcjArray> {
        let obj = store.create("PersistentArray", len, true)?;
        Ok(PcjArray { obj })
    }

    /// Re-wraps a raw handle.
    pub fn from_ref(obj: PcjRef) -> PcjArray {
        PcjArray { obj }
    }

    /// The raw handle.
    pub fn as_ref(&self) -> PcjRef {
        self.obj
    }

    /// Element count.
    pub fn len(&self, store: &PcjStore) -> usize {
        store.payload_words(self.obj)
    }

    /// Whether the array is zero-length.
    pub fn is_empty(&self, store: &PcjStore) -> bool {
        self.len(store) == 0
    }

    /// Boxes and stores a value at `i`.
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn set(&self, store: &mut PcjStore, i: usize, value: u64) -> crate::Result<()> {
        let boxed = PcjLong::create(store, value)?;
        store.set_ref(self.obj, i, boxed.as_ref())?;
        store.dec_rc(boxed.as_ref())?;
        Ok(())
    }

    /// Reads element `i` through its box.
    pub fn get(&self, store: &mut PcjStore, i: usize) -> Option<u64> {
        let b = store.get_ref(self.obj, i);
        (!b.is_null()).then(|| PcjLong::from_ref(b).value(store))
    }
}

/// `PersistentArrayList`: growable list of boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcjArrayList {
    obj: PcjRef, // payload: [size, elems]
}

impl PcjArrayList {
    /// Allocates an empty list.
    ///
    /// # Errors
    ///
    /// Store-space errors.
    pub fn create(store: &mut PcjStore, capacity: usize) -> crate::Result<PcjArrayList> {
        let obj = store.create("PersistentArrayList", 2, true)?;
        let elems = store.create("PersistentArrayList$Elems", capacity.max(1), true)?;
        store.set_word(obj, 0, 0)?;
        store.set_ref(obj, 1, elems)?;
        store.dec_rc(elems)?;
        Ok(PcjArrayList { obj })
    }

    /// Re-wraps a raw handle.
    pub fn from_ref(obj: PcjRef) -> PcjArrayList {
        PcjArrayList { obj }
    }

    /// The raw handle.
    pub fn as_ref(&self) -> PcjRef {
        self.obj
    }

    /// Element count.
    pub fn len(&self, store: &mut PcjStore) -> usize {
        store.get_word(self.obj, 0) as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self, store: &mut PcjStore) -> bool {
        self.len(store) == 0
    }

    /// Appends a boxed value, growing the element block when full.
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn push(&self, store: &mut PcjStore, value: u64) -> crate::Result<()> {
        let size = self.len(store);
        let mut elems = store.get_ref(self.obj, 1);
        let cap = store.payload_words(elems);
        if size == cap {
            let bigger = store.create("PersistentArrayList$Elems", cap * 2, true)?;
            for i in 0..size {
                let b = store.get_ref(elems, i);
                store.set_ref(bigger, i, b)?;
            }
            store.set_ref(self.obj, 1, bigger)?;
            store.dec_rc(bigger)?;
            elems = bigger;
        }
        let boxed = PcjLong::create(store, value)?;
        store.set_ref(elems, size, boxed.as_ref())?;
        store.dec_rc(boxed.as_ref())?;
        store.set_word(self.obj, 0, (size + 1) as u64)?;
        Ok(())
    }

    /// Reads element `i` through its box.
    pub fn get(&self, store: &mut PcjStore, i: usize) -> Option<u64> {
        if i >= self.len(store) {
            return None;
        }
        let elems = store.get_ref(self.obj, 1);
        let b = store.get_ref(elems, i);
        (!b.is_null()).then(|| PcjLong::from_ref(b).value(store))
    }

    /// Overwrites element `i` with a fresh box.
    ///
    /// # Errors
    ///
    /// Store errors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&self, store: &mut PcjStore, i: usize, value: u64) -> crate::Result<()> {
        let len = self.len(store);
        assert!(i < len, "index {i} out of bounds (len {len})");
        let elems = store.get_ref(self.obj, 1);
        let boxed = PcjLong::create(store, value)?;
        store.set_ref(elems, i, boxed.as_ref())?;
        store.dec_rc(boxed.as_ref())?;
        Ok(())
    }
}

/// `PersistentHashMap`: chained buckets of entry objects with boxed
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcjHashMap {
    obj: PcjRef, // payload: [size, buckets]
}

const E_KEY: usize = 0;
const E_VALUE: usize = 1;
const E_NEXT: usize = 2;

impl PcjHashMap {
    /// Allocates an empty map with a fixed bucket count.
    ///
    /// # Errors
    ///
    /// Store-space errors.
    pub fn create(store: &mut PcjStore, buckets: usize) -> crate::Result<PcjHashMap> {
        let obj = store.create("PersistentHashMap", 2, true)?;
        let arr = store.create("PersistentHashMap$Buckets", buckets.max(1), true)?;
        store.set_word(obj, 0, 0)?;
        store.set_ref(obj, 1, arr)?;
        store.dec_rc(arr)?;
        Ok(PcjHashMap { obj })
    }

    /// Re-wraps a raw handle.
    pub fn from_ref(obj: PcjRef) -> PcjHashMap {
        PcjHashMap { obj }
    }

    /// The raw handle.
    pub fn as_ref(&self) -> PcjRef {
        self.obj
    }

    /// Entry count.
    pub fn len(&self, store: &mut PcjStore) -> usize {
        store.get_word(self.obj, 0) as usize
    }

    /// Whether the map is empty.
    pub fn is_empty(&self, store: &mut PcjStore) -> bool {
        self.len(store) == 0
    }

    fn bucket_of(key: u64, buckets: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % buckets
    }

    /// Inserts or updates; returns the previous value.
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn put(&self, store: &mut PcjStore, key: u64, value: u64) -> crate::Result<Option<u64>> {
        let buckets = store.get_ref(self.obj, 1);
        let b = Self::bucket_of(key, store.payload_words(buckets));
        let head = store.get_ref(buckets, b);
        let mut cur = head;
        while !cur.is_null() {
            // Entry keys are boxed too (PCJ maps box their keys).
            let kbox = store.get_ref(cur, E_KEY);
            if PcjLong::from_ref(kbox).value(store) == key {
                let vbox = store.get_ref(cur, E_VALUE);
                let old = PcjLong::from_ref(vbox).value(store);
                let newbox = PcjLong::create(store, value)?;
                store.set_ref(cur, E_VALUE, newbox.as_ref())?;
                store.dec_rc(newbox.as_ref())?;
                return Ok(Some(old));
            }
            cur = store.get_ref(cur, E_NEXT);
        }
        let entry = store.create("PersistentHashMap$Entry", 3, true)?;
        let kbox = PcjLong::create(store, key)?;
        let vbox = PcjLong::create(store, value)?;
        store.set_ref(entry, E_KEY, kbox.as_ref())?;
        store.set_ref(entry, E_VALUE, vbox.as_ref())?;
        store.dec_rc(kbox.as_ref())?;
        store.dec_rc(vbox.as_ref())?;
        store.set_ref(entry, E_NEXT, head)?;
        store.set_ref(buckets, b, entry)?;
        store.dec_rc(entry)?;
        let size = store.get_word(self.obj, 0);
        store.set_word(self.obj, 0, size + 1)?;
        Ok(None)
    }

    /// Looks up `key`.
    pub fn get(&self, store: &mut PcjStore, key: u64) -> Option<u64> {
        let buckets = store.get_ref(self.obj, 1);
        let b = Self::bucket_of(key, store.payload_words(buckets));
        let mut cur = store.get_ref(buckets, b);
        while !cur.is_null() {
            let kbox = store.get_ref(cur, E_KEY);
            if PcjLong::from_ref(kbox).value(store) == key {
                let vbox = store.get_ref(cur, E_VALUE);
                return Some(PcjLong::from_ref(vbox).value(store));
            }
            cur = store.get_ref(cur, E_NEXT);
        }
        None
    }

    /// Removes `key`; returns the removed value.
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn remove(&self, store: &mut PcjStore, key: u64) -> crate::Result<Option<u64>> {
        let buckets = store.get_ref(self.obj, 1);
        let b = Self::bucket_of(key, store.payload_words(buckets));
        let mut prev = PcjRef::NULL;
        let mut cur = store.get_ref(buckets, b);
        while !cur.is_null() {
            let kbox = store.get_ref(cur, E_KEY);
            if PcjLong::from_ref(kbox).value(store) == key {
                let vbox = store.get_ref(cur, E_VALUE);
                let old = PcjLong::from_ref(vbox).value(store);
                let next = store.get_ref(cur, E_NEXT);
                if prev.is_null() {
                    store.set_ref(buckets, b, next)?;
                } else {
                    store.set_ref(prev, E_NEXT, next)?;
                }
                let size = store.get_word(self.obj, 0);
                store.set_word(self.obj, 0, size - 1)?;
                return Ok(Some(old));
            }
            prev = cur;
            cur = store.get_ref(cur, E_NEXT);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn store() -> PcjStore {
        PcjStore::format(NvmDevice::new(NvmConfig::with_size(16 << 20))).unwrap()
    }

    #[test]
    fn long_box_roundtrip() {
        let mut s = store();
        let b = PcjLong::create(&mut s, 7).unwrap();
        assert_eq!(b.value(&mut s), 7);
        b.set(&mut s, 8).unwrap();
        assert_eq!(b.value(&mut s), 8);
    }

    #[test]
    fn string_roundtrip() {
        let mut s = store();
        for text in ["", "hi", "exactly8", "longer than eight bytes"] {
            let ps = PcjString::create(&mut s, text).unwrap();
            assert_eq!(ps.value(&mut s), text);
        }
    }

    #[test]
    fn tuple_set_get_boxes() {
        let mut s = store();
        let t = PcjTuple::create(&mut s, 3).unwrap();
        assert_eq!(t.arity(&s), 3);
        assert_eq!(t.get(&mut s, 0), None);
        t.set(&mut s, 0, 100).unwrap();
        t.set(&mut s, 0, 200).unwrap(); // old box dropped, rc-freed
        assert_eq!(t.get(&mut s, 0), Some(200));
    }

    #[test]
    fn array_roundtrip() {
        let mut s = store();
        let a = PcjArray::create(&mut s, 10).unwrap();
        for i in 0..10 {
            a.set(&mut s, i, (i * i) as u64).unwrap();
        }
        for i in 0..10 {
            assert_eq!(a.get(&mut s, i), Some((i * i) as u64));
        }
    }

    #[test]
    fn arraylist_grows() {
        let mut s = store();
        let l = PcjArrayList::create(&mut s, 2).unwrap();
        for i in 0..20 {
            l.push(&mut s, i).unwrap();
        }
        assert_eq!(l.len(&mut s), 20);
        for i in 0..20 {
            assert_eq!(l.get(&mut s, i as usize), Some(i));
        }
        l.set(&mut s, 3, 999).unwrap();
        assert_eq!(l.get(&mut s, 3), Some(999));
        assert_eq!(l.get(&mut s, 20), None);
    }

    #[test]
    fn hashmap_matches_model() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut s = store();
        let m = PcjHashMap::create(&mut s, 8).unwrap();
        let mut model = std::collections::HashMap::new();
        for _ in 0..300 {
            let k = rng.gen_range(0..30);
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen_range(0..100);
                    assert_eq!(m.put(&mut s, k, v).unwrap(), model.insert(k, v));
                }
                1 => assert_eq!(m.remove(&mut s, k).unwrap(), model.remove(&k)),
                _ => assert_eq!(m.get(&mut s, k), model.get(&k).copied()),
            }
            assert_eq!(m.len(&mut s), model.len());
        }
    }

    #[test]
    fn map_survives_crash_via_root() {
        let dev = NvmDevice::new(NvmConfig::with_size(16 << 20));
        let mut s = PcjStore::format(dev.clone()).unwrap();
        let m = PcjHashMap::create(&mut s, 4).unwrap();
        for k in 0..20 {
            m.put(&mut s, k, k + 100).unwrap();
        }
        s.set_root(m.as_ref()).unwrap();
        dev.crash();
        let mut s2 = PcjStore::attach(dev).unwrap();
        let m2 = PcjHashMap::from_ref(s2.root());
        for k in 0..20 {
            assert_eq!(m2.get(&mut s2, k), Some(k + 100));
        }
    }
}
