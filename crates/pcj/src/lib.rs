//! PCJ-style baseline: off-heap persistent collections for a managed
//! runtime (§2.2, §6.2).
//!
//! Intel's Persistent Collections for Java stores persistent data as
//! *native off-heap objects* managed outside the garbage-collected heap,
//! with its own type system rooted at `PersistentObject`. The paper's
//! Figure 6 breakdown attributes PCJ's cost to exactly the mechanisms this
//! crate reproduces, each instrumented with a phase timer:
//!
//! * **Metadata** — type information memorization: every object creation
//!   resolves its type *by string* against an NVM-resident type table and
//!   persists a type record reference (a normal Java heap stores one
//!   class pointer instead).
//! * **GC** — reference-counting: every create and every reference store
//!   updates persisted refcounts, freeing (recursively) at zero.
//! * **Allocation** — a native free-list allocator with per-object headers
//!   (size, refcount, type), walked first-fit on NVM.
//! * **Transaction** — every operation takes a lock and runs under an
//!   NVM undo log with per-entry flushes, NVML-style.
//! * **Data** — the payload bytes actually written.
//!
//! The separated type system is visible in the API: you cannot store a raw
//! word into a [`PcjTuple`] slot — you store a boxed [`PcjLong`], which is
//! why `set` on tuples is the paper's worst case (256.3x, Figure 15).
//!
//! # Example
//!
//! ```
//! use espresso_pcj::{PcjStore, PcjLong};
//! use espresso_nvm::{NvmConfig, NvmDevice};
//!
//! # fn main() -> Result<(), espresso_pcj::PcjError> {
//! let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
//! let mut store = PcjStore::format(dev)?;
//! let n = PcjLong::create(&mut store, 42)?;
//! assert_eq!(n.value(&mut store), 42);
//! # Ok(())
//! # }
//! ```

mod collections;
mod store;
mod timers;

pub use collections::{PcjArray, PcjArrayList, PcjHashMap, PcjLong, PcjString, PcjTuple};
pub use store::{PcjError, PcjRef, PcjStore};
pub use timers::{Phase, PhaseBreakdown};

/// Result alias for PCJ-baseline operations.
pub type Result<T> = std::result::Result<T, PcjError>;
